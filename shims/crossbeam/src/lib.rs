//! Offline stand-in for `crossbeam`, providing the MPMC unbounded
//! channel used by `par-runtime`'s worker pool. Backed by a
//! `Mutex<VecDeque>` + `Condvar` — less scalable than the real lock-free
//! channel, but semantically identical for this workload (a handful of
//! long-lived workers pulling coarse task grains).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(value);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they
                // can observe disconnection.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = queue.pop_front() {
                Ok(v)
            } else if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_fan_out_fan_in() {
        let (tx, rx) = channel::unbounded::<usize>();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0usize;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        for i in 1..=100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: usize = consumers.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn recv_errors_when_all_senders_dropped() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }
}
