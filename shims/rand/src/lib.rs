//! Offline stand-in for `rand` 0.9, providing the subset this workspace
//! uses: `StdRng::seed_from_u64`, the `Rng` extension methods
//! `random`/`random_range`/`random_bool`, and `rand::random`. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a fixed seed, which is all the graph generators require (they
//! promise reproducibility, not any particular stream).

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable from the "standard" distribution (`rng.random()`).
pub trait StandardDist: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardDist for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl StandardDist for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDist for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly samplable over a half-open or inclusive range.
pub trait SampleUniform: Sized {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Widened arithmetic so `0..u64::MAX`-style spans can't
                // overflow; modulo bias is irrelevant at test scale.
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128
                    + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from an empty range");
                let offset = (rng.next_u64() as u128 % span) as $wide;
                ((lo as $wide).wrapping_add(offset)) as $t
            }
        }
    )*};
}
uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let u: $t = StandardDist::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty_range(&self) -> bool;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
    // NaN endpoints make the range empty, which `!(a < b)` captures and
    // `a >= b` would not.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn is_empty_range(&self) -> bool {
        !(self.start < self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn is_empty_range(&self) -> bool {
        !(self.start() <= self.end())
    }
}

/// Extension methods, blanket-implemented for every `RngCore` (matching
/// rand's `impl<R: RngCore + ?Sized> Rng for R`). Generic methods carry
/// `Self: Sized`; `R: Rng + ?Sized` callers go through the `&mut R`
/// `RngCore` impl exactly as with the real crate.
pub trait Rng: RngCore {
    fn random<T: StandardDist>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        assert!(!range.is_empty_range(), "cannot sample from empty range");
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and deterministic. Not the real
    /// StdRng algorithm (ChaCha12), which is fine: the workspace only
    /// relies on determinism per seed, not on stream compatibility.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::random()` — thread-local generator, seeded once per thread.
pub fn random<T: StandardDist>() -> T {
    use std::cell::RefCell;
    thread_local! {
        static TLS_RNG: RefCell<rngs::StdRng> = RefCell::new(
            SeedableRng::seed_from_u64(0x8C5F_A5C1_D34E_77A1 ^ {
                // Distinguish threads without needing OS entropy.
                let addr = &() as *const () as u64;
                addr.rotate_left(17)
            })
        );
    }
    TLS_RNG.with(|rng| T::sample_standard(&mut *rng.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(0u32..=4);
            assert!(w <= 4);
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn sample_through_unsized_bound() {
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>() + rng.random_range(0.0f64..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = takes_dyn(&mut rng);
        assert!((0.0..2.0).contains(&v));
    }
}
