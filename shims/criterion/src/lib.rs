//! Offline stand-in for `criterion`. Provides enough of the API for the
//! repo's benches to build and run: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`/`bench_with_input`,
//! `Bencher::iter`, `Throughput`, and `BenchmarkId`.
//!
//! Measurement is deliberately simple — a short warmup followed by an
//! adaptively sized timed loop, reporting mean wall-clock per iteration
//! (and derived throughput when declared). No statistical analysis,
//! HTML reports, or baselines; the numbers are for quick trend checks,
//! not publication.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Bencher {
    /// Mean seconds per iteration of the most recent `iter` call.
    last_mean_s: f64,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + pilot measurement to size the timed loop.
        let pilot_start = Instant::now();
        black_box(routine());
        let pilot = pilot_start.elapsed().max(Duration::from_nanos(1));

        // Aim for ~200ms of total measurement, clamped by sample_size.
        let target = Duration::from_millis(200);
        let iters = (target.as_secs_f64() / pilot.as_secs_f64()).clamp(1.0, self.sample_size as f64)
            as usize;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.last_mean_s = total.as_secs_f64() / iters as f64;
    }
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 100,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.run_one(name.to_string(), f);
        group.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run_one(id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.id;
        self.run_one(id, |b| f(b, input));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            last_mean_s: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mean = bencher.last_mean_s;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if mean > 0.0 => {
                format!("  {:.3} MiB/s", b as f64 / mean / (1 << 20) as f64)
            }
            Some(Throughput::Elements(e)) if mean > 0.0 => {
                format!("  {:.3} Melem/s", e as f64 / mean / 1e6)
            }
            _ => String::new(),
        };
        println!("{label}: {:.3} us/iter{rate}", mean * 1e6);
    }

    pub fn finish(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        let input = vec![1u64, 2, 3];
        g.bench_with_input(BenchmarkId::new("sum", 3), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        g.finish();
        assert!(count > 0);
    }
}
