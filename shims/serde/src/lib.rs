//! Offline stand-in for `serde`. Instead of the visitor-based
//! serializer architecture, `Serialize` lowers values into a small
//! JSON-like [`Value`] tree; `serde_json` (the sibling shim) renders
//! that tree. `Deserialize` is a marker trait — nothing in this
//! workspace deserializes, but the derives must compile.
//!
//! The derive macros are re-exported from `serde_derive` under the same
//! names as the traits, matching serde's `derive` feature layout.

// Let the derive-generated `::serde::...` paths resolve when deriving
// inside this crate itself (e.g. in the tests below).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Intermediate representation produced by [`Serialize::to_value`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker: the workspace derives it but never drives a deserializer.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::U64(3));
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::U64(1), Value::U64(2)])
        );
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn derive_struct_and_enum_round_trip() {
        #[derive(Serialize, Deserialize)]
        struct Point {
            x: u32,
            y: f64,
        }

        #[derive(Serialize, Deserialize)]
        enum Kind {
            Alpha,
            Beta,
        }

        #[derive(Serialize, Deserialize)]
        struct Generic<T> {
            items: Vec<T>,
            label: &'static str,
        }

        let p = Point { x: 1, y: 2.5 };
        assert_eq!(
            p.to_value(),
            Value::Object(vec![
                ("x".into(), Value::U64(1)),
                ("y".into(), Value::F64(2.5)),
            ])
        );
        assert_eq!(Kind::Alpha.to_value(), Value::Str("Alpha".into()));
        assert_eq!(Kind::Beta.to_value(), Value::Str("Beta".into()));
        let g = Generic {
            items: vec![1u32, 2],
            label: "g",
        };
        assert_eq!(
            g.to_value(),
            Value::Object(vec![
                (
                    "items".into(),
                    Value::Array(vec![Value::U64(1), Value::U64(2)])
                ),
                ("label".into(), Value::Str("g".into())),
            ])
        );
    }
}
