//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace serde shim. Supports exactly the shapes this repo derives
//! on: structs with named fields (optionally generic) and enums whose
//! variants are all unit variants. Anything else produces a
//! `compile_error!` naming the limitation.
//!
//! No `syn`/`quote`: the item is parsed directly from the
//! `proc_macro::TokenStream` and the impl is emitted as source text.
//! Token runs lifted verbatim from the input (generics headers, where
//! clauses) are re-rendered via `TokenStream::to_string`, which
//! preserves joint spacing (so `'a` stays `'a`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Body {
    NamedStruct(Vec<String>),
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    /// Generics header for the `impl<...>` position, defaults stripped.
    impl_generics: String,
    /// Parameter names for the type position, e.g. `'a, T, N`.
    param_uses: Vec<String>,
    /// Names of *type* parameters only (these get `Serialize` bounds).
    type_params: Vec<String>,
    /// Original where-clause predicates (without the `where` keyword).
    where_preds: String,
    body: Body,
}

fn stream_of(tokens: &[TokenTree]) -> String {
    let ts: TokenStream = tokens.iter().cloned().collect();
    ts.to_string()
}

fn is_attr_start(tok: &TokenTree) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == '#')
}

/// Advance past `#[...]` attribute(s) starting at `i`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() && is_attr_start(&toks[i]) {
        i += 2; // '#' + bracket group
    }
    i
}

/// Advance past attributes, reporting whether one of them was
/// `#[serde(skip)]` (the only serde field attribute this shim honors).
fn skip_attrs_noting_serde_skip(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip_field = false;
    while i + 1 < toks.len() && is_attr_start(&toks[i]) {
        if let TokenTree::Group(attr) = &toks[i + 1] {
            let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    if args
                        .stream()
                        .into_iter()
                        .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
                    {
                        skip_field = true;
                    }
                }
            }
        }
        i += 2;
    }
    (i, skip_field)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Preamble: attributes, visibility, `struct`/`enum` keyword.
    let is_enum = loop {
        if i >= toks.len() {
            return Err("expected `struct` or `enum`".into());
        }
        match &toks[i] {
            t if is_attr_start(t) => i = skip_attrs(&toks, i),
            TokenTree::Ident(id) => {
                let s = id.to_string();
                i += 1;
                match s.as_str() {
                    "struct" => break false,
                    "enum" => break true,
                    "union" => return Err("unions are not supported".into()),
                    _ => {} // pub / crate / etc.
                }
            }
            TokenTree::Group(_) => i += 1, // the `(crate)` of `pub(crate)`
            _ => return Err("unexpected token before item keyword".into()),
        }
    };

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    i += 1;

    // Generics header.
    let mut header: Vec<TokenTree> = Vec::new();
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        while depth > 0 {
            let t = toks
                .get(i)
                .ok_or_else(|| "unterminated generics".to_string())?;
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    header.push(t.clone());
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth > 0 {
                        header.push(t.clone());
                    }
                }
                _ => header.push(t.clone()),
            }
            i += 1;
        }
    }

    // Split the header into top-level comma-separated parameter
    // segments; strip defaults (`= ...`) so the header is reusable in
    // impl position.
    let mut param_uses = Vec::new();
    let mut type_params = Vec::new();
    let mut impl_segments: Vec<String> = Vec::new();
    {
        let mut depth = 0usize;
        let mut seg: Vec<TokenTree> = Vec::new();
        let mut flush = |seg: &mut Vec<TokenTree>| {
            if seg.is_empty() {
                return;
            }
            // Truncate at a top-level `=` (parameter default).
            let mut d = 0usize;
            let mut cut = seg.len();
            for (k, t) in seg.iter().enumerate() {
                match t {
                    TokenTree::Punct(p) if p.as_char() == '<' => d += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => d -= 1,
                    TokenTree::Punct(p) if p.as_char() == '=' && d == 0 => {
                        cut = k;
                        break;
                    }
                    _ => {}
                }
            }
            let seg = &seg[..cut];
            // Identify the parameter name.
            match seg.first() {
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    if let Some(TokenTree::Ident(id)) = seg.get(1) {
                        param_uses.push(format!("'{id}"));
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "const" => {
                    if let Some(TokenTree::Ident(n)) = seg.get(1) {
                        param_uses.push(n.to_string());
                    }
                }
                Some(TokenTree::Ident(id)) => {
                    param_uses.push(id.to_string());
                    type_params.push(id.to_string());
                }
                _ => {}
            }
            impl_segments.push(stream_of(seg));
        };
        for t in header.iter() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    seg.push(t.clone());
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    seg.push(t.clone());
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    flush(&mut seg);
                    seg.clear();
                }
                _ => seg.push(t.clone()),
            }
        }
        flush(&mut seg);
    }
    let impl_generics = impl_segments.join(", ");

    // Optional where clause, then the body group.
    let mut where_toks: Vec<TokenTree> = Vec::new();
    let body_group = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("tuple structs are not supported; use named fields".into());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err("unit structs are not supported".into());
            }
            Some(t) => {
                where_toks.push(t.clone());
                i += 1;
            }
            None => return Err("expected item body".into()),
        }
    };
    let where_preds = {
        let s = stream_of(&where_toks);
        s.trim().strip_prefix("where").unwrap_or(&s).to_string()
    };

    let body_toks: Vec<TokenTree> = body_group.into_iter().collect();
    let body = if is_enum {
        let mut variants = Vec::new();
        let mut j = 0;
        while j < body_toks.len() {
            j = skip_attrs(&body_toks, j);
            match body_toks.get(j) {
                Some(TokenTree::Ident(id)) => {
                    variants.push(id.to_string());
                    j += 1;
                    if matches!(body_toks.get(j), Some(TokenTree::Group(_))) {
                        return Err(format!(
                            "enum variant `{id}` carries data; only unit variants are supported"
                        ));
                    }
                    // Skip a possible discriminant up to the comma.
                    while j < body_toks.len()
                        && !matches!(&body_toks[j], TokenTree::Punct(p) if p.as_char() == ',')
                    {
                        j += 1;
                    }
                    j += 1; // the comma
                }
                None => break,
                _ => return Err("unexpected token in enum body".into()),
            }
        }
        Body::UnitEnum(variants)
    } else {
        let mut fields = Vec::new();
        let mut j = 0;
        while j < body_toks.len() {
            let (next, skip_field) = skip_attrs_noting_serde_skip(&body_toks, j);
            j = next;
            // Visibility.
            if matches!(body_toks.get(j), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
                j += 1;
                if matches!(body_toks.get(j), Some(TokenTree::Group(_))) {
                    j += 1;
                }
            }
            match body_toks.get(j) {
                Some(TokenTree::Ident(id)) => {
                    if !skip_field {
                        fields.push(id.to_string());
                    }
                    j += 1;
                    if !matches!(body_toks.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ':')
                    {
                        return Err(format!("expected `:` after field `{id}`"));
                    }
                    // Skip the type up to a top-level comma. Generic
                    // angle brackets are the only depth we must track;
                    // groups arrive as single trees.
                    let mut depth = 0usize;
                    loop {
                        match body_toks.get(j) {
                            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                                j += 1;
                                break;
                            }
                            None => break,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                None => break,
                _ => return Err("unexpected token in struct body".into()),
            }
        }
        Body::NamedStruct(fields)
    };

    Ok(Item {
        name,
        impl_generics,
        param_uses,
        type_params,
        where_preds,
        body,
    })
}

fn impl_header(item: &Item, trait_path: &str, extra_bounds: bool) -> String {
    let generics = if item.impl_generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.impl_generics)
    };
    let ty_args = if item.param_uses.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.param_uses.join(", "))
    };
    let mut preds: Vec<String> = Vec::new();
    if !item.where_preds.trim().is_empty() {
        preds.push(item.where_preds.trim().to_string());
    }
    if extra_bounds {
        for p in &item.type_params {
            preds.push(format!("{p}: ::serde::Serialize"));
        }
    }
    let where_clause = if preds.is_empty() {
        String::new()
    } else {
        format!(" where {}", preds.join(", "))
    };
    format!(
        "impl{generics} {trait_path} for {name}{ty_args}{where_clause}",
        name = item.name
    )
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return error(&format!("#[derive(Serialize)] shim: {e}")),
    };
    let header = impl_header(&item, "::serde::Serialize", true);
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Body::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{}::{v} => {v:?}", item.name))
                .collect();
            format!(
                "::serde::Value::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(", ")
            )
        }
    };
    format!("{header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return error(&format!("#[derive(Deserialize)] shim: {e}")),
    };
    let header = impl_header(&item, "::serde::Deserialize", false);
    format!("{header} {{}}").parse().unwrap()
}
