//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! This workspace vendors minimal API-compatible shims for its external
//! dependencies so it builds hermetically (no registry access). Only the
//! surface the repo actually uses is provided: `Mutex`, `MutexGuard`,
//! `Condvar`, and `RwLock`. Unlike `std`, poisoning is unwrapped away —
//! matching parking_lot's panic-propagation-free semantics closely
//! enough for this codebase (a poisoned lock here means a worker already
//! panicked, and the test harness will surface that panic anyway).

use std::sync::TryLockError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(poison) => MutexGuard {
                inner: poison.into_inner(),
            },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: poison.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the std guard out to satisfy the std condvar
        // signature, then put the re-acquired guard back.
        replace_with(&mut guard.inner, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        });
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Move-out/move-in helper for `Condvar::wait`: std's `Condvar::wait`
/// consumes the guard by value while parking_lot's borrows it mutably.
fn replace_with<G>(slot: &mut G, f: impl FnOnce(G) -> G) {
    unsafe {
        let old = std::ptr::read(slot);
        // If `f` panics we must not drop the moved-out guard twice;
        // abort-on-double-panic is acceptable for a lock shim, but we
        // still write a valid value back before unwinding continues.
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old))).unwrap_or_else(
            |payload| {
                // Re-acquiring is impossible here; propagate the panic.
                std::panic::resume_unwind(payload)
            },
        );
        std::ptr::write(slot, new);
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(poison) => RwLockReadGuard {
                inner: poison.into_inner(),
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(poison) => RwLockWriteGuard {
                inner: poison.into_inner(),
            },
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3usize);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
