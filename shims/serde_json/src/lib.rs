//! Offline stand-in for `serde_json`: renders the serde shim's
//! [`serde::Value`] tree as JSON text. Only serialization is provided —
//! nothing in this workspace parses JSON back.

use serde::{Serialize, Value};
use std::fmt::Write as _;

#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn render(value: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if v.is_finite() {
                // `{:?}` keeps a decimal point or exponent, so the
                // output round-trips as a float (1.0, 1e-6, ...).
                let _ = write!(out, "{v:?}");
            } else {
                // serde_json emits null for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact form: no space
                    }
                }
                newline_indent(indent, level + 1, out);
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        name: String,
        nnz: u64,
        gflops: f64,
        tags: Vec<&'static str>,
    }

    #[test]
    fn pretty_renders_nested_structs() {
        let row = Row {
            name: "web-Google".into(),
            nnz: 5_105_039,
            gflops: 12.5,
            tags: vec!["graph", "paper"],
        };
        let s = super::to_string_pretty(&vec![row]).unwrap();
        assert!(s.contains("\"name\": \"web-Google\""));
        assert!(s.contains("\"nnz\": 5105039"));
        assert!(s.contains("\"gflops\": 12.5"));
        assert!(s.starts_with("[\n"));
        assert!(s.ends_with("]"));
    }

    #[test]
    fn compact_and_escape() {
        let s = super::to_string(&"a\"b\\c\n").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
        assert_eq!(super::to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(super::to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(super::to_string(&Option::<u8>::None).unwrap(), "null");
    }
}
