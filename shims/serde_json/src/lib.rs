//! Offline stand-in for `serde_json`: renders the serde shim's
//! [`serde::Value`] tree as JSON text. Serialization plus a syntax
//! checker ([`validate`]) are provided — nothing in this workspace needs
//! JSON deserialized back into values.

use serde::{Serialize, Value};
use std::fmt::Write as _;

#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn render(value: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if v.is_finite() {
                // `{:?}` keeps a decimal point or exponent, so the
                // output round-trips as a float (1.0, 1e-6, ...).
                let _ = write!(out, "{v:?}");
            } else {
                // serde_json emits null for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact form: no space
                    }
                }
                newline_indent(indent, level + 1, out);
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

/// Parse one JSON value into the serde shim's [`Value`] tree.
/// Integers without fraction/exponent parse as `I64` (or `U64` when
/// they only fit unsigned); everything else numeric parses as `F64`.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing data at byte {pos}")));
    }
    Ok(value)
}

/// Check that `s` is one syntactically valid JSON value. Used to
/// verify emitted artifacts like the chrome-trace export.
pub fn validate(s: &str) -> Result<(), Error> {
    from_str(s).map(|_| ())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected '{}' at byte {}", ch as char, *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            let mut entries = Vec::new();
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {}", *pos))),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            let mut items = Vec::new();
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {}", *pos))),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null").map(|()| Value::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(Error(format!(
            "unexpected '{}' at byte {}",
            *c as char, *pos
        ))),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(c @ (b'"' | b'\\' | b'/')) => {
                        out.push(*c as char);
                        *pos += 1;
                    }
                    Some(b'b') => {
                        out.push('\u{8}');
                        *pos += 1;
                    }
                    Some(b'f') => {
                        out.push('\u{c}');
                        *pos += 1;
                    }
                    Some(b'n') => {
                        out.push('\n');
                        *pos += 1;
                    }
                    Some(b'r') => {
                        out.push('\r');
                        *pos += 1;
                    }
                    Some(b't') => {
                        out.push('\t');
                        *pos += 1;
                    }
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(Error(format!("bad \\u escape at byte {}", *pos)));
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5]).expect("hex ascii");
                        let code = u32::from_str_radix(hex, 16).expect("validated hex");
                        // Surrogate halves (the exporter never emits
                        // them) degrade to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 5;
                    }
                    _ => return Err(Error(format!("bad escape at byte {}", *pos))),
                }
            }
            c if c < 0x20 => {
                return Err(Error(format!("raw control char at byte {}", *pos)));
            }
            _ => {
                // multi-byte UTF-8 sequences pass through untouched
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && b[*pos] & 0xc0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos])
                        .map_err(|_| Error(format!("invalid utf-8 at byte {start}")))?,
                );
            }
        }
    }
    Err(Error("unterminated string".into()))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    let negative = b.get(*pos) == Some(&b'-');
    if negative {
        *pos += 1;
    }
    let int_start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(Error(format!("digit expected at byte {}", *pos)));
    }
    // no leading zeros: "0" alone or a nonzero first digit
    if b[int_start] == b'0' && *pos - int_start > 1 {
        return Err(Error(format!("leading zero at byte {int_start}")));
    }
    let mut integral = true;
    if b.get(*pos) == Some(&b'.') {
        integral = false;
        *pos += 1;
        let frac_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(Error(format!("fraction digit expected at byte {}", *pos)));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        integral = false;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(Error(format!("exponent digit expected at byte {}", *pos)));
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number");
    if integral {
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::I64(v));
        }
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::U64(v));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error(format!("unparseable number at byte {start}")))
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        name: String,
        nnz: u64,
        gflops: f64,
        tags: Vec<&'static str>,
    }

    #[test]
    fn pretty_renders_nested_structs() {
        let row = Row {
            name: "web-Google".into(),
            nnz: 5_105_039,
            gflops: 12.5,
            tags: vec!["graph", "paper"],
        };
        let s = super::to_string_pretty(&vec![row]).unwrap();
        assert!(s.contains("\"name\": \"web-Google\""));
        assert!(s.contains("\"nnz\": 5105039"));
        assert!(s.contains("\"gflops\": 12.5"));
        assert!(s.starts_with("[\n"));
        assert!(s.ends_with("]"));
    }

    #[test]
    fn compact_and_escape() {
        let s = super::to_string(&"a\"b\\c\n").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\n\"");
        assert_eq!(super::to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(super::to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(super::to_string(&Option::<u8>::None).unwrap(), "null");
    }

    #[test]
    fn validate_accepts_valid_json() {
        for ok in [
            "null",
            "true",
            " [1, 2.5, -3e-6, \"x\\u0041\", {\"a\": []}] ",
            "{\"traceEvents\":[{\"ts\":0.0,\"dur\":1e-6}],\"unit\":\"ms\"}",
            "0",
            "-0.5",
            "\"\"",
            "{}",
        ] {
            super::validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn validate_rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"bad\\q\"",
            "[1] trailing",
            "{'single': 1}",
        ] {
            assert!(super::validate(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn from_str_builds_value_trees() {
        use serde::Value;
        let v = super::from_str("{\"a\": [1, -2, 2.5, true, null], \"b\": \"x\\ny\"}").unwrap();
        let Value::Object(entries) = &v else {
            panic!("expected object, got {v:?}");
        };
        assert_eq!(entries[0].0, "a");
        let Value::Array(items) = &entries[0].1 else {
            panic!("expected array");
        };
        assert_eq!(items[0], Value::I64(1));
        assert_eq!(items[1], Value::I64(-2));
        assert_eq!(items[2], Value::F64(2.5));
        assert_eq!(items[3], Value::Bool(true));
        assert_eq!(items[4], Value::Null);
        assert_eq!(entries[1].1, Value::Str("x\ny".into()));
        // u64 beyond i64 range falls back to U64; exponents to F64.
        assert_eq!(
            super::from_str("18446744073709551615").unwrap(),
            Value::U64(u64::MAX)
        );
        assert_eq!(super::from_str("1e3").unwrap(), Value::F64(1000.0));
        // escapes round-trip through our own renderer
        let v = super::from_str("\"\\u0041\\\\\\\"\\t\"").unwrap();
        assert_eq!(v, Value::Str("A\\\"\t".into()));
    }

    #[test]
    fn from_str_roundtrips_renderer_output() {
        use serde::Value;
        let row = Row {
            name: "a\"b\\c\nd — π".into(),
            nnz: u64::MAX,
            gflops: 1e-9,
            tags: vec!["x"],
        };
        let text = super::to_string_pretty(&vec![row]).unwrap();
        let v = super::from_str(&text).unwrap();
        let Value::Array(items) = &v else {
            panic!("expected array");
        };
        let Value::Object(entries) = &items[0] else {
            panic!("expected object");
        };
        assert_eq!(entries[0].1, Value::Str("a\"b\\c\nd — π".into()));
        assert_eq!(entries[1].1, Value::U64(u64::MAX));
        assert_eq!(entries[2].1, Value::F64(1e-9));
    }

    #[test]
    fn validate_roundtrips_own_output() {
        let row = Row {
            name: "a\"b\\c\nd".into(),
            nnz: 1,
            gflops: 1e-9,
            tags: vec![],
        };
        super::validate(&super::to_string(&vec![row]).unwrap()).unwrap();
    }
}
