//! Offline stand-in for `proptest`, implementing the subset this
//! workspace's property tests use: the `proptest!` macro, `Strategy`
//! with `prop_map`/`prop_flat_map`/`prop_perturb`, numeric range and
//! tuple strategies, `Just`, `any`, `collection::{vec, btree_set}`,
//! `sample::{select, subsequence}`, and the `prop_assert*`/`prop_assume`
//! macros.
//!
//! Differences from the real crate, deliberately accepted:
//! - no shrinking — a failing case panics with the generated values'
//!   `Debug` output left to the assertion message;
//! - generation is driven by a fixed per-test seed (derived from the
//!   test's module path and name), so runs are deterministic;
//! - `prop_assume!` skips the case rather than drawing a replacement.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub use rand;

/// Deterministic RNG handed to strategies and `prop_perturb` closures.
/// Implements the (shimmed) `rand::RngCore`, so rand's `Rng` extension
/// methods work on it.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        seed ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            inner: rand::SeedableRng::seed_from_u64(seed),
        }
    }

    /// Split off an independent generator (for `prop_perturb`).
    pub fn fork(&mut self) -> TestRng {
        let seed = rand::RngCore::next_u64(&mut self.inner);
        TestRng {
            inner: rand::SeedableRng::seed_from_u64(seed),
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Case-level failure signal. `Fail` aborts the test with a panic;
/// `Reject` (from `prop_assume!`) skips the case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        (self.f)(value, rng.fork())
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                <$t as rand::SampleUniform>::sample_between(
                    rng, self.start, self.end, false)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                <$t as rand::SampleUniform>::sample_between(
                    rng, *self.start(), *self.end(), true)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// A vector of strategies generates element-wise (mirrors proptest's
/// `Strategy for Vec<S>`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary but always finite: tests here never want NaN/inf.
        let unit: f64 = rand::StandardDist::sample_standard(rng);
        (unit - 0.5) * 2e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Size specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        <usize as rand::SampleUniform>::sample_between(rng, self.lo, self.hi_inclusive, true)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.end() >= r.start(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Bounded retries: with narrow element domains the target
            // size may be unreachable; returning fewer elements is fine
            // for "pick some distinct keys" usage.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(10) + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    use super::{SizeRange, Strategy, TestRng};

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i =
                <usize as rand::SampleUniform>::sample_between(rng, 0, self.options.len(), false);
            self.options[i].clone()
        }
    }

    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        size: SizeRange,
    }

    /// Order-preserving random subsequence of `items`.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            items,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.sample(rng).min(self.items.len());
            // Reservoir-style index pick: choose `want` distinct
            // positions, then emit in original order.
            let n = self.items.len();
            let mut picked = vec![false; n];
            let mut chosen = 0usize;
            while chosen < want {
                let i = <usize as rand::SampleUniform>::sample_between(rng, 0, n, false);
                if !picked[i] {
                    picked[i] = true;
                    chosen += 1;
                }
            }
            self.items
                .iter()
                .zip(picked.iter())
                .filter(|(_, &p)| p)
                .map(|(v, _)| v.clone())
                .collect()
        }
    }
}

pub mod strategy {
    pub use super::{FlatMap, Just, Map, Perturb, Strategy};
}

pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
    // `prop::sample::select(...)`-style paths.
    pub use crate as prop;
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ( $($pat,)+ ) = (
                        $( $crate::Strategy::generate(&($strat), &mut __rng), )+
                    );
                    // The body may use `?` with `TestCaseError` (and
                    // `prop_assume!` returns a Reject) — run it in an
                    // immediately-invoked closure to give it a `Result`
                    // return type.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("proptest case {} failed: {}", __case, __msg)
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when the assumption fails. Only valid inside a
/// `proptest!` body (the surrounding runner treats a Reject as a skip).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(usize, f64)>> {
        (1usize..20).prop_flat_map(|n| crate::collection::vec((0..n, -1.0f64..1.0), 0..50))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 0u32..=4, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn flat_map_respects_inner_bounds(pairs in arb_pairs()) {
            for (i, v) in pairs {
                prop_assert!(i < 20);
                prop_assert!((-1.0..1.0).contains(&v));
            }
        }

        #[test]
        fn select_and_subsequence((k, sub) in (prop::sample::select(vec![2usize, 4, 8]),
            prop::sample::subsequence(vec![1u32, 2, 3, 4, 5], 0..=5))) {
            prop_assert!(k == 2 || k == 4 || k == 8);
            let mut sorted = sub.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &sub, "subsequence preserves order");
        }

        #[test]
        fn btree_set_sizes(s in crate::collection::btree_set(0u32..100, 0..8)) {
            prop_assert!(s.len() < 8);
        }

        #[test]
        fn assume_skips(v in 0usize..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }

        #[test]
        fn perturb_gets_usable_rng(v in (0usize..5).prop_perturb(|v, mut rng| {
            use rand::Rng;
            (v, rng.random_range(10usize..20))
        })) {
            prop_assert!(v.0 < 5 && (10..20).contains(&v.1));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("x", 0);
        let mut b = crate::TestRng::for_case("x", 0);
        let s = (0usize..100).prop_map(|v| v * 2);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
