//! Quickstart: build a power-law matrix, plan ACSR SpMV on a simulated
//! GTX Titan through the pipeline registry, and compare against the
//! CSR-vector baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use acsr_repro::gpu_sim::{presets, Device};
use acsr_repro::graphgen::{generate_power_law, PowerLawConfig};
use acsr_repro::spmv_kernels::GpuSpmv;
use acsr_repro::spmv_pipeline::{FormatRegistry, PlanBudget};

fn main() {
    // 1. A power-law matrix like the paper's suite: most rows tiny, a
    //    long tail of huge rows.
    let m = generate_power_law::<f64>(&PowerLawConfig {
        rows: 60_000,
        cols: 60_000,
        mean_degree: 12.0,
        max_degree: 8_000,
        pinned_max_rows: 2,
        col_skew: 0.6,
        seed: 42,
        ..Default::default()
    });
    let stats = m.row_stats();
    println!(
        "matrix: {} rows, {} nnz, mu {:.1}, sigma {:.1}, max row {}",
        stats.rows, stats.nnz, stats.mean, stats.std_dev, stats.max_row
    );

    // 2. A simulated GTX Titan (compute 3.5 — dynamic parallelism on).
    let dev = Device::new(presets::gtx_titan());
    let x = dev.alloc(vec![1.0f64; m.cols()]);
    let flops = 2 * m.nnz() as u64;

    // 3. Plan both formats through the registry: one call folds each
    //    format's conversion, tuning and upload into an executable plan.
    let reg = FormatRegistry::<f64>::with_all();
    let budget = PlanBudget::for_device(dev.config());
    let acsr = reg.plan("ACSR", &dev, &m, &budget).unwrap();
    println!(
        "ACSR plan: {} device bytes, preprocessing class {:?}",
        acsr.device_bytes(),
        acsr.class()
    );
    let y = dev.alloc_zeroed::<f64>(m.rows());
    let r_acsr = acsr.spmv(&dev, &x, &y);

    // 4. The cuSPARSE-style CSR-vector baseline on the same matrix.
    let baseline = reg.plan("CSR-vector", &dev, &m, &budget).unwrap();
    let y2 = dev.alloc_zeroed::<f64>(m.rows());
    let r_csr = baseline.spmv(&dev, &x, &y2);

    // 5. Same answer, different speed.
    let diff = acsr_repro::sparse_formats::scalar::rel_l2_distance(y.as_slice(), y2.as_slice());
    println!("results agree to rel L2 {diff:.2e}");
    println!(
        "ACSR      : {:7.1} us  ({:5.1} GFLOP/s)",
        r_acsr.time_s * 1e6,
        r_acsr.gflops(flops)
    );
    println!(
        "CSR-vector: {:7.1} us  ({:5.1} GFLOP/s)",
        r_csr.time_s * 1e6,
        r_csr.gflops(flops)
    );
    println!(
        "speedup: {:.2}x (the long-tail rows no longer serialize one warp)",
        r_csr.time_s / r_acsr.time_s
    );
}
