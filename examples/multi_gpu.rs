//! Multi-GPU SpMV on the dual-GPU Tesla K10 (paper §VIII): each ACSR bin
//! is split half/half across the two simulated GK104 devices.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use acsr_repro::acsr::AcsrConfig;
use acsr_repro::gpu_sim::presets;
use acsr_repro::graphgen::MatrixSpec;
use acsr_repro::multi_gpu::MultiGpuAcsr;

fn main() {
    let k10 = presets::tesla_k10_single();
    println!(
        "device: 2x {} (no dynamic parallelism — §VIII static long-tail ACSR)\n",
        k10.name
    );
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>9}",
        "matrix", "nnz", "1 GPU GF/s", "2 GPU GF/s", "speedup"
    );
    // A big web graph that scales vs a small one that can't saturate two
    // GPUs — the paper's EU2-vs-INT contrast.
    for (abbrev, scale) in [
        ("LJ2", 64usize),
        ("EU2", 64),
        ("HOL", 64),
        ("INT", 64),
        ("ENR", 64),
    ] {
        let spec = MatrixSpec::by_abbrev(abbrev).unwrap();
        let m = spec.generate::<f64>(scale, 5).csr;
        let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 5) as f64 * 0.2).collect();
        let mut y = vec![0.0; m.rows()];
        let flops = 2 * m.nnz() as u64;

        let single = MultiGpuAcsr::new(&m, &k10, 1, AcsrConfig::static_long_tail());
        let t1 = single.spmv(&x, &mut y).seconds();
        let dual = MultiGpuAcsr::new(&m, &k10, 2, AcsrConfig::static_long_tail());
        let rep = dual.spmv(&x, &mut y).seconds();
        println!(
            "{:<6} {:>10} {:>12.1} {:>12.1} {:>8.2}x",
            abbrev,
            m.nnz(),
            flops as f64 / t1 / 1e9,
            flops as f64 / rep / 1e9,
            t1 / rep
        );
    }
    println!(
        "\nBig matrices approach 2x; small ones can't cover the second GPU's\n\
         launch/sync floors — exactly the paper's 'insufficient workload' cases."
    );
}
