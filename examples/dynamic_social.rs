//! Dynamic social-network analysis (paper §VII): a flickr-like graph
//! evolves over 10 epochs; PageRank re-converges warm-started after each
//! change. Compares ACSR's incremental device-side updates against full
//! re-upload (CSR) and re-upload + re-transformation (HYB).
//!
//! ```text
//! cargo run --release --example dynamic_social
//! ```

use acsr_repro::gpu_sim::{presets, Device};
use acsr_repro::graph_apps::dynamic::{dynamic_pagerank, DynamicConfig, Strategy};
use acsr_repro::graph_apps::pagerank::pagerank_operator;
use acsr_repro::graph_apps::IterParams;
use acsr_repro::graphgen::MatrixSpec;
use acsr_repro::sparse_formats::HostModel;

fn main() {
    let spec = MatrixSpec::by_abbrev("FLI").unwrap();
    let graph = spec.generate::<f64>(128, 3).csr;
    println!(
        "social graph analog '{}': {} users, {} edges; 10% of rows churn per epoch",
        spec.name,
        graph.rows(),
        graph.nnz()
    );
    let op = pagerank_operator(&graph);
    let dev = Device::new(presets::gtx_titan());
    let host = HostModel::default();
    let cfg = DynamicConfig {
        epochs: 10,
        params: IterParams {
            epsilon: 1e-6,
            max_iters: 500,
        },
        ..Default::default()
    };

    let acsr = dynamic_pagerank(&dev, &op, Strategy::AcsrIncremental, &cfg, &host);
    let csr = dynamic_pagerank(&dev, &op, Strategy::CsrReupload, &cfg, &host);
    let hyb = dynamic_pagerank(&dev, &op, Strategy::HybReupload, &cfg, &host);

    println!("\nepoch  iters  ACSR total  vs CSR  vs HYB   (epoch 0 = cold start)");
    for e in 0..acsr.len() {
        println!(
            "{:>5}  {:>5}  {:>9.2}ms  {:>5.2}x  {:>5.2}x",
            e,
            acsr[e].iterations,
            acsr[e].total_seconds() * 1e3,
            csr[e].total_seconds() / acsr[e].total_seconds(),
            hyb[e].total_seconds() / acsr[e].total_seconds(),
        );
    }
    let sum = |v: &[acsr_repro::graph_apps::dynamic::EpochStats]| {
        v[1..].iter().map(|e| e.total_seconds()).sum::<f64>()
    };
    println!(
        "\nupdate epochs total: ACSR {:.2}ms | CSR {:.2}ms ({:.2}x) | HYB {:.2}ms ({:.2}x)",
        sum(&acsr) * 1e3,
        sum(&csr) * 1e3,
        sum(&csr) / sum(&acsr),
        sum(&hyb) * 1e3,
        sum(&hyb) / sum(&acsr),
    );
    println!(
        "per-epoch matrix maintenance: ACSR ships {:.1} KB deltas; CSR re-ships the whole matrix",
        acsr[1].copy_seconds * host.pcie_bandwidth_bytes_s / 1e3
    );
}
