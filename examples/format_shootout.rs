//! Format shootout: every storage format in the repository on one
//! power-law matrix — preprocessing cost, single-SpMV time, storage, and
//! the break-even iteration count of the paper's Eq. 4.
//!
//! ```text
//! cargo run --release --example format_shootout
//! ```

use acsr_repro::acsr::{AcsrConfig, AcsrEngine};
use acsr_repro::gpu_sim::{presets, Device};
use acsr_repro::graphgen::MatrixSpec;
use acsr_repro::sparse_formats::{BrcMatrix, CooMatrix, DiaMatrix, HostModel, HybMatrix};
use acsr_repro::spmv_kernels::bccoo_kernel::BccooKernel;
use acsr_repro::spmv_kernels::brc_kernel::BrcKernel;
use acsr_repro::spmv_kernels::coo_kernel::CooKernel;
use acsr_repro::spmv_kernels::csr_scalar::CsrScalar;
use acsr_repro::spmv_kernels::csr_vector::CsrVector;
use acsr_repro::spmv_kernels::hyb_kernel::HybKernel;
use acsr_repro::spmv_kernels::tcoo_kernel::TcooKernel;
use acsr_repro::spmv_kernels::tuning::{autotune_bccoo, tune_tcoo};
use acsr_repro::spmv_kernels::{DevBccoo, DevBrc, DevCoo, DevCsr, DevHyb, DevTcoo, GpuSpmv};

fn main() {
    let spec = MatrixSpec::by_abbrev("CNR").unwrap();
    let m = spec.generate::<f32>(64, 11).csr;
    let host = HostModel::default();
    let dev = Device::new(presets::gtx_titan());
    println!(
        "matrix '{}' analog: {} rows, {} nnz (f32, simulated GTX Titan)\n",
        spec.name,
        m.rows(),
        m.nnz()
    );
    let x = dev.alloc(
        (0..m.cols())
            .map(|i| 1.0f32 + (i % 7) as f32 * 0.1)
            .collect::<Vec<_>>(),
    );
    let spmv = |e: &dyn GpuSpmv<f32>| {
        let y = dev.alloc_zeroed::<f32>(e.rows());
        e.spmv(&dev, &x, &y).time_s
    };

    struct Row {
        name: &'static str,
        pre_s: f64,
        spmv_s: f64,
        bytes: u64,
    }
    let mut rows: Vec<Row> = Vec::new();

    // CSR variants: no preprocessing at all.
    let e = CsrScalar::new(DevCsr::upload(&dev, &m));
    rows.push(Row {
        name: "CSR-scalar",
        pre_s: 0.0,
        spmv_s: spmv(&e),
        bytes: e.device_bytes(),
    });
    let e = CsrVector::new(DevCsr::upload(&dev, &m));
    rows.push(Row {
        name: "CSR-vector",
        pre_s: 0.0,
        spmv_s: spmv(&e),
        bytes: e.device_bytes(),
    });

    // COO.
    let (coo, c) = CooMatrix::from_csr(&m);
    let e = CooKernel::new(DevCoo::upload(&dev, &coo));
    rows.push(Row {
        name: "COO",
        pre_s: c.modeled_host_seconds(&host),
        spmv_s: spmv(&e),
        bytes: e.device_bytes(),
    });

    // HYB.
    let (hyb, c) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
    let e = HybKernel::new(DevHyb::upload(&dev, &hyb));
    rows.push(Row {
        name: "HYB",
        pre_s: c.modeled_host_seconds(&host),
        spmv_s: spmv(&e),
        bytes: e.device_bytes(),
    });

    // BRC.
    let (brc, c) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
    let e = BrcKernel::new(DevBrc::upload(&dev, &brc));
    rows.push(Row {
        name: "BRC",
        pre_s: c.modeled_host_seconds(&host),
        spmv_s: spmv(&e),
        bytes: e.device_bytes(),
    });

    // TCOO with its exhaustive tile search.
    let t = tune_tcoo(&dev, &m, usize::MAX).unwrap();
    let e = TcooKernel::new(DevTcoo::upload(&dev, &t.matrix));
    rows.push(Row {
        name: "TCOO(tuned)",
        pre_s: t.cost.modeled_host_seconds(&host),
        spmv_s: spmv(&e),
        bytes: e.device_bytes(),
    });

    // BCCOO with its >300-configuration auto-tuner (sampled trials).
    let t = autotune_bccoo(&dev, &m, 4096, usize::MAX).unwrap();
    let e = BccooKernel::new(DevBccoo::upload(&dev, &t.matrix));
    rows.push(Row {
        name: "BCCOO(tuned)",
        pre_s: t.cost.modeled_host_seconds(&host),
        spmv_s: spmv(&e),
        bytes: e.device_bytes(),
    });

    // ACSR.
    let e = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
    rows.push(Row {
        name: "ACSR",
        pre_s: e.preprocess_cost().modeled_host_seconds(&host),
        spmv_s: spmv(&e),
        bytes: e.device_bytes(),
    });

    // DIA: demonstrates why structured formats fail on graphs.
    match DiaMatrix::from_csr(&m, 4096) {
        Ok(_) => println!("DIA unexpectedly feasible?!"),
        Err(e) => println!("DIA: {e} (structured formats don't survive power-law graphs)\n"),
    }

    let acsr_total = rows.last().map(|r| r.pre_s + r.spmv_s).unwrap();
    let acsr_spmv = rows.last().map(|r| r.spmv_s).unwrap();
    println!(
        "{:<13} {:>12} {:>12} {:>10} {:>11} {:>10}",
        "format", "preproc", "1 SpMV", "pre/spmv", "cold-run", "MB"
    );
    for r in &rows {
        println!(
            "{:<13} {:>10.1}us {:>10.1}us {:>10.1} {:>10.2}x {:>10.2}",
            r.name,
            r.pre_s * 1e6,
            r.spmv_s * 1e6,
            r.pre_s / r.spmv_s,
            (r.pre_s + r.spmv_s) / acsr_total,
            r.bytes as f64 / 1e6,
        );
    }
    println!("\n(cold-run = preprocessing + one SpMV, relative to ACSR; Eq. 4 break-even:");
    for r in &rows {
        if r.spmv_s < acsr_spmv {
            let n = (r.pre_s - rows.last().unwrap().pre_s) / (acsr_spmv - r.spmv_s);
            println!(
                "  {} overtakes ACSR after ~{:.0} iterations",
                r.name,
                n.max(1.0)
            );
        }
    }
    println!(")");
}
