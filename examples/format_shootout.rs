//! Format shootout: every registry format on one power-law matrix —
//! preprocessing cost, single-SpMV time, storage, and the break-even
//! iteration count of the paper's Eq. 4 — followed by the adaptive
//! selector's own pick at an app-like horizon.
//!
//! ```text
//! cargo run --release --example format_shootout
//! ```

use acsr_repro::gpu_sim::{presets, Device};
use acsr_repro::graphgen::MatrixSpec;
use acsr_repro::sparse_formats::{DiaMatrix, HostModel};
use acsr_repro::spmv_kernels::GpuSpmv;
use acsr_repro::spmv_pipeline::{AdaptiveSelector, FormatRegistry, PlanBudget};

fn main() {
    let spec = MatrixSpec::by_abbrev("CNR").unwrap();
    let m = spec.generate::<f32>(64, 11).csr;
    let host = HostModel::default();
    let dev = Device::new(presets::gtx_titan());
    println!(
        "matrix '{}' analog: {} rows, {} nnz (f32, simulated GTX Titan)\n",
        spec.name,
        m.rows(),
        m.nnz()
    );
    let x = dev.alloc(
        (0..m.cols())
            .map(|i| 1.0f32 + (i % 7) as f32 * 0.1)
            .collect::<Vec<_>>(),
    );

    // One plan per registered format: the registry folds conversion,
    // auto-tuning and upload behind a single call each.
    let reg = FormatRegistry::<f32>::with_all();
    let budget = PlanBudget::for_device(dev.config());

    struct Row {
        name: &'static str,
        pre_s: f64,
        spmv_s: f64,
        bytes: u64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for name in reg.names() {
        let plan = reg.plan(name, &dev, &m, &budget).expect(name);
        let y = dev.alloc_zeroed::<f32>(plan.rows());
        rows.push(Row {
            name,
            pre_s: plan.preprocess_seconds(&host),
            spmv_s: plan.spmv(&dev, &x, &y).time_s,
            bytes: plan.device_bytes(),
        });
    }

    // DIA: demonstrates why structured formats fail on graphs (and why
    // it is not in the registry).
    match DiaMatrix::from_csr(&m, 4096) {
        Ok(_) => println!("DIA unexpectedly feasible?!"),
        Err(e) => println!("DIA: {e} (structured formats don't survive power-law graphs)\n"),
    }

    let acsr = rows.iter().find(|r| r.name == "ACSR").unwrap();
    let acsr_total = acsr.pre_s + acsr.spmv_s;
    let acsr_pre = acsr.pre_s;
    let acsr_spmv = acsr.spmv_s;
    println!(
        "{:<13} {:>12} {:>12} {:>10} {:>11} {:>10}",
        "format", "preproc", "1 SpMV", "pre/spmv", "cold-run", "MB"
    );
    for r in &rows {
        println!(
            "{:<13} {:>10.1}us {:>10.1}us {:>10.1} {:>10.2}x {:>10.2}",
            r.name,
            r.pre_s * 1e6,
            r.spmv_s * 1e6,
            r.pre_s / r.spmv_s.max(f64::MIN_POSITIVE),
            (r.pre_s + r.spmv_s) / acsr_total,
            r.bytes as f64 / 1e6,
        );
    }
    println!("\n(cold-run = preprocessing + one SpMV, relative to ACSR; Eq. 4 break-even:");
    for r in &rows {
        if r.spmv_s < acsr_spmv {
            let n = (r.pre_s - acsr_pre) / (acsr_spmv - r.spmv_s);
            println!(
                "  {} overtakes ACSR after ~{:.0} iterations",
                r.name,
                n.max(1.0)
            );
        }
    }
    println!(")");

    // The selector runs the same tradeoff automatically: analyze the row
    // structure, plan the shortlist, probe, and rank at the horizon.
    let sel = AdaptiveSelector.select(&reg, &dev, &m, &budget.with_iterations(30));
    println!(
        "\nAdaptiveSelector @ horizon 30: picks {} (over {})",
        sel.winner,
        sel.candidates
            .iter()
            .filter(|c| c.feasible && c.format != sel.winner)
            .map(|c| c.format.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
