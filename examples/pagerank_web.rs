//! PageRank on a synthetic web graph (paper §VI-A), comparing the three
//! SpMV engines the paper evaluates: CSR, HYB and ACSR.
//!
//! ```text
//! cargo run --release --example pagerank_web
//! ```

use acsr_repro::gpu_sim::{presets, Device};
use acsr_repro::graph_apps::pagerank::{pagerank_gpu, pagerank_operator};
use acsr_repro::graph_apps::IterParams;
use acsr_repro::graphgen::MatrixSpec;
use acsr_repro::sparse_formats::HostModel;
use acsr_repro::spmv_pipeline::{FormatRegistry, PlanBudget};

fn main() {
    // The youtube social-graph analog at 1/32 scale: tiny mean degree,
    // heavy in-degree tail — the regime the paper targets.
    let spec = MatrixSpec::by_abbrev("YOT").unwrap();
    let graph = spec.generate::<f64>(32, 7).csr;
    println!(
        "graph analog '{}': {} vertices, {} links",
        spec.name,
        graph.rows(),
        graph.nnz()
    );

    // PageRank operator: transpose of the row-normalized adjacency.
    let op = pagerank_operator(&graph);
    let dev = Device::new(presets::gtx_titan());
    let params = IterParams::default(); // eps 1e-6, as in the paper

    let reg = FormatRegistry::<f64>::with_all();
    let budget = PlanBudget::for_device(dev.config());
    let csr = reg.plan("CSR-vector", &dev, &op, &budget).unwrap();
    let hyb = reg.plan("HYB", &dev, &op, &budget).unwrap();
    let acsr = reg.plan("ACSR", &dev, &op, &budget).unwrap();
    println!(
        "(HYB conversion alone cost {:.2} ms of host work — ACSR's binning is a scan)",
        hyb.preprocess_seconds(&HostModel::default()) * 1e3
    );

    let plans = vec![("CSR", &csr), ("HYB", &hyb), ("ACSR", &acsr)];
    let mut acsr_time = 0.0;
    let mut results = Vec::new();
    for (name, plan) in plans {
        let res = pagerank_gpu(&dev, plan, 0.85, &params);
        println!(
            "{name:>5}: converged in {} iterations, modeled {:.2} ms",
            res.iterations,
            res.seconds() * 1e3
        );
        if name == "ACSR" {
            acsr_time = res.seconds();
        }
        results.push((name, res));
    }
    for (name, res) in &results {
        if *name != "ACSR" {
            println!(
                "ACSR speedup over {name}: {:.2}x",
                res.seconds() / acsr_time
            );
        }
    }

    // Show the top pages.
    let (_, acsr_res) = results.last().unwrap();
    let mut ranked: Vec<(usize, f64)> = acsr_res.scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 5 pages by rank:");
    for (page, score) in ranked.iter().take(5) {
        println!("  page {page:>7}  rank {score:.3e}  in-degree {}", {
            // in-degree of `page` = its row length in the operator
            op.row_nnz(*page)
        });
    }
}
