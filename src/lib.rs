//! # acsr-repro — umbrella crate
//!
//! Re-exports the whole workspace behind one dependency, so downstream
//! users (and this repository's `examples/` and `tests/`) can write
//! `use acsr_repro::...` and get the full system:
//!
//! * [`acsr`] — the paper's contribution (adaptive CSR SpMV);
//! * [`gpu_sim`] — the simulated SIMT substrate and Table II devices;
//! * [`sparse_formats`] — CSR/COO/ELL/HYB/BRC/BCCOO/TCOO/DIA;
//! * [`spmv_kernels`] — baseline kernels, CPU backend, auto-tuners;
//! * [`graphgen`] — Table I analog generators and update streams;
//! * [`spmv_pipeline`] — the analyze → plan → execute pipeline: format
//!   registry, adaptive selector, structure-keyed plan cache;
//! * [`graph_apps`] — PageRank / HITS / RWR, static and dynamic;
//! * [`multi_gpu`] — §VIII multi-device partitioning;
//! * [`par_runtime`] — the crossbeam-based parallel runtime.
//!
//! See `examples/quickstart.rs` for the five-minute tour and DESIGN.md
//! for the system inventory and experiment index.

pub use acsr;
pub use gpu_sim;
pub use graph_apps;
pub use graphgen;
pub use multi_gpu;
pub use par_runtime;
pub use sparse_formats;
pub use spmv_kernels;
pub use spmv_pipeline;
