//! Determinism and reproducibility guarantees: everything in the
//! pipeline — generation, simulation, applications, experiments — must
//! be bit-reproducible for a fixed seed, because EXPERIMENTS.md's
//! recorded numbers are only meaningful if a reader can regenerate them.

use acsr_repro::acsr::{AcsrConfig, AcsrEngine};
use acsr_repro::gpu_sim::{presets, Device};
use acsr_repro::graph_apps::pagerank::{pagerank_gpu, pagerank_operator};
use acsr_repro::graph_apps::IterParams;
use acsr_repro::graphgen::MatrixSpec;
use acsr_repro::spmv_kernels::GpuSpmv;
use acsr_repro::spmv_pipeline::{FormatRegistry, PlanBudget};

/// Helper mirroring `MatrixSpec::generate` for two calls.
fn gen(abbrev: &str, scale: usize, seed: u64) -> acsr_repro::sparse_formats::CsrMatrix<f64> {
    MatrixSpec::by_abbrev(abbrev)
        .unwrap()
        .generate::<f64>(scale, seed)
        .csr
}

#[test]
fn simulated_reports_are_bit_identical_across_runs() {
    let m = gen("ENR", 128, 7);
    let run = || {
        let dev = Device::new(presets::gtx_titan());
        let engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        let x = dev.alloc(vec![1.25f64; m.cols()]);
        let y = dev.alloc_zeroed::<f64>(m.rows());
        let r = engine.spmv(&dev, &x, &y);
        (r.time_s, r.counters, y.into_vec())
    };
    let (t1, c1, y1) = run();
    let (t2, c2, y2) = run();
    assert_eq!(t1, t2);
    assert_eq!(c1, c2);
    assert_eq!(y1, y2);
}

#[test]
fn pagerank_solves_are_bit_identical_across_runs() {
    let m = gen("INT", 64, 3);
    let op = pagerank_operator(&m);
    let reg = FormatRegistry::<f64>::with_all();
    let run = || {
        let dev = Device::new(presets::gtx_titan());
        let plan = reg
            .plan("ACSR", &dev, &op, &PlanBudget::for_device(dev.config()))
            .unwrap();
        pagerank_gpu(&dev, &plan, 0.85, &IterParams::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.scores, b.scores);
    assert_eq!(a.report.time_s, b.report.time_s);
}

#[test]
fn suite_generation_is_stable_across_scales_and_seeds() {
    // different seeds must differ; same seed must agree; different scales
    // must give different sizes but stable statistics
    let a = gen("YOT", 128, 1);
    let b = gen("YOT", 128, 1);
    let c = gen("YOT", 128, 2);
    assert_eq!(a, b);
    assert_ne!(a, c);
    let small = gen("YOT", 256, 1);
    assert!(small.rows() < a.rows());
    let (sa, ss) = (a.row_stats(), small.row_stats());
    assert!(
        (sa.mean - ss.mean).abs() < 1.5,
        "mu drifted: {} vs {}",
        sa.mean,
        ss.mean
    );
}

#[test]
fn cpu_and_sim_backends_agree_numerically() {
    let m = gen("WEB", 128, 9);
    let x: Vec<f64> = (0..m.cols()).map(|i| 0.5 + (i % 17) as f64 * 0.1).collect();
    // simulated ACSR
    let dev = Device::new(presets::gtx_titan());
    let engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
    let xd = dev.alloc(x.clone());
    let yd = dev.alloc_zeroed::<f64>(m.rows());
    engine.spmv(&dev, &xd, &yd);
    // multicore CPU ACSR
    let cpu = acsr_repro::acsr::cpu::CpuAcsr::new(m.clone());
    let mut y_cpu = vec![0.0; m.rows()];
    cpu.spmv(&x, &mut y_cpu);
    let d = acsr_repro::sparse_formats::scalar::rel_l2_distance(yd.as_slice(), &y_cpu);
    assert!(d < 1e-12, "backends diverge: rel L2 {d}");
}
