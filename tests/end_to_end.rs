//! Cross-crate integration tests: the full pipeline from generator to
//! application, exercising every crate through the public API.

use acsr_repro::acsr::{AcsrConfig, AcsrEngine, AcsrMode};
use acsr_repro::gpu_sim::{presets, Device};
use acsr_repro::graph_apps::pagerank::{pagerank_gpu, pagerank_operator};
use acsr_repro::graph_apps::IterParams;
use acsr_repro::graphgen::{
    generate_rmat, generate_update_batch, MatrixSpec, RmatConfig, UpdateConfig,
};
use acsr_repro::multi_gpu::MultiGpuAcsr;
use acsr_repro::sparse_formats::{CsrMatrix, HybMatrix};
use acsr_repro::spmv_kernels::csr_vector::CsrVector;
use acsr_repro::spmv_kernels::hyb_kernel::HybKernel;
use acsr_repro::spmv_kernels::{DevCsr, DevHyb, GpuSpmv};
use acsr_repro::spmv_pipeline::{FormatRegistry, PlanBudget, PreprocessClass, SpmvPlan};

fn suite_matrix(abbrev: &str, scale: usize) -> CsrMatrix<f64> {
    MatrixSpec::by_abbrev(abbrev)
        .unwrap()
        .generate::<f64>(scale, 99)
        .csr
}

#[test]
fn all_engines_agree_on_every_suite_shape() {
    // A cross-section of suite shapes: heavy tail, low skew, rectangular.
    let dev = Device::new(presets::gtx_titan());
    for abbrev in ["ENR", "AMZ", "WIK", "RAL"] {
        let m = suite_matrix(abbrev, 256);
        let x: Vec<f64> = (0..m.cols())
            .map(|i| 0.5 + (i % 13) as f64 * 0.125)
            .collect();
        let want = m.spmv(&x);
        let xd = dev.alloc(x.clone());

        let engines: Vec<Box<dyn GpuSpmv<f64>>> = vec![
            Box::new(AcsrEngine::from_csr(
                &dev,
                &m,
                AcsrConfig::for_device(dev.config()),
            )),
            Box::new(CsrVector::new(DevCsr::upload(&dev, &m))),
            Box::new(HybKernel::new(DevHyb::upload(
                &dev,
                &HybMatrix::from_csr(&m, usize::MAX).unwrap().0,
            ))),
        ];
        for engine in engines {
            let yd = dev.alloc_zeroed::<f64>(m.rows());
            engine.spmv(&dev, &xd, &yd);
            let d = acsr_repro::sparse_formats::scalar::rel_l2_distance(yd.as_slice(), &want);
            assert!(d < 1e-11, "{abbrev}/{}: rel distance {d}", engine.name());
        }
    }
}

#[test]
fn acsr_all_three_modes_agree_numerically() {
    let m = suite_matrix("EU2", 256);
    let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 5) as f64 * 0.25).collect();
    let want = m.spmv(&x);
    for (dev_cfg, mode) in [
        (presets::gtx_titan(), AcsrMode::DynamicParallelism),
        (presets::gtx_titan(), AcsrMode::StaticLongTail),
        (presets::gtx_580(), AcsrMode::BinningOnly),
    ] {
        let dev = Device::new(dev_cfg);
        let mut cfg = AcsrConfig::for_device(dev.config());
        cfg.mode = mode;
        if mode == AcsrMode::BinningOnly {
            cfg.row_max = 0;
        }
        let engine = AcsrEngine::from_csr(&dev, &m, cfg);
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        engine.spmv(&dev, &xd, &yd);
        let d = acsr_repro::sparse_formats::scalar::rel_l2_distance(yd.as_slice(), &want);
        assert!(d < 1e-11, "{mode:?}: rel distance {d}");
    }
}

#[test]
fn dynamic_updates_compose_with_pagerank() {
    // update the graph, then PageRank on the updated operator must match
    // PageRank on a freshly-built operator
    let dev = Device::new(presets::gtx_titan());
    let g = suite_matrix("INT", 64);
    let op = pagerank_operator(&g);
    let mut engine = AcsrEngine::from_csr(&dev, &op, AcsrConfig::for_device(dev.config()));
    let batch = generate_update_batch(&op, &UpdateConfig::default());
    engine.apply_update(&dev, &batch);
    let updated = batch.apply_to_csr(&op);

    let params = IterParams {
        epsilon: 1e-6,
        max_iters: 300,
    };
    // The updated engine keeps serving through a hand-wrapped plan (the
    // registry would rebuild from scratch); the fresh solve goes through
    // the normal plan path.
    let incremental_plan = SpmvPlan::new(
        "ACSR",
        PreprocessClass::Scan,
        Box::new(engine),
        acsr_repro::sparse_formats::PreprocessCost::default(),
    );
    let incremental = pagerank_gpu(&dev, &incremental_plan, 0.85, &params);
    let fresh_plan = FormatRegistry::<f64>::with_all()
        .plan(
            "ACSR",
            &dev,
            &updated,
            &PlanBudget::for_device(dev.config()),
        )
        .unwrap();
    let fresh = pagerank_gpu(&dev, &fresh_plan, 0.85, &params);
    assert_eq!(incremental.iterations, fresh.iterations);
    let d = acsr_repro::sparse_formats::scalar::rel_l2_distance(&incremental.scores, &fresh.scores);
    assert!(d < 1e-12, "rel distance {d}");
}

#[test]
fn rmat_graphs_flow_through_the_full_stack() {
    let m: CsrMatrix<f64> = generate_rmat(&RmatConfig {
        scale: 12,
        edge_factor: 8,
        ..Default::default()
    });
    let dev = Device::new(presets::gtx_titan());
    let engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
    let x: Vec<f64> = (0..m.cols()).map(|i| (i % 3) as f64 + 1.0).collect();
    let xd = dev.alloc(x.clone());
    let yd = dev.alloc_zeroed::<f64>(m.rows());
    let r = engine.spmv(&dev, &xd, &yd);
    assert!(r.time_s > 0.0);
    let d = acsr_repro::sparse_formats::scalar::rel_l2_distance(yd.as_slice(), &m.spmv(&x));
    assert!(d < 1e-11);
}

#[test]
fn multi_gpu_matches_single_gpu_results() {
    let m = suite_matrix("LJ2", 256);
    let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 9) as f64 * 0.1).collect();
    let k10 = presets::tesla_k10_single();
    let mut y1 = vec![0.0; m.rows()];
    let mut y2 = vec![0.0; m.rows()];
    MultiGpuAcsr::new(&m, &k10, 1, AcsrConfig::static_long_tail()).spmv(&x, &mut y1);
    MultiGpuAcsr::new(&m, &k10, 2, AcsrConfig::static_long_tail()).spmv(&x, &mut y2);
    let d = acsr_repro::sparse_formats::scalar::rel_l2_distance(&y1, &y2);
    assert!(d < 1e-12, "rel distance {d}");
}

#[test]
fn matrix_market_round_trip_preserves_engine_results() {
    let m = suite_matrix("DBL", 512);
    let mut buf = Vec::new();
    acsr_repro::sparse_formats::mmio::write_matrix_market(&m, &mut buf).unwrap();
    let m2: CsrMatrix<f64> =
        acsr_repro::sparse_formats::mmio::read_matrix_market(&buf[..]).unwrap();
    assert_eq!(m, m2);
}
