//! Golden-file tests for the multi-GPU trace timeline: a dual-device
//! SpMV recorded into one shared [`TraceLedger`] must export a
//! byte-identical chrome-trace JSON with one process lane per device
//! (`Tesla K10 ... #0` / `#1`) — the device-tagged view `repro fig8
//! --trace` produces — and a 4-device [`multi_gpu::Fleet`] must export
//! four lanes carrying the per-edge `halo_<src>to<dst>` transfer spans
//! on each receiving device.
//!
//! Regenerate after an intentional format change with
//! `ACSR_REGEN_GOLDEN=1 cargo test -p multi-gpu --test trace_multigpu`.

use acsr::AcsrConfig;
use gpu_sim::{presets, set_sim_threads};
use graphgen::{generate_power_law, PowerLawConfig};
use multi_gpu::{Fleet, FleetConfig, MultiGpuAcsr};

const GOLDEN: &str = include_str!("golden/trace_dual_k10.json");
const GOLDEN_FLEET: &str = include_str!("golden/trace_fleet_quad.json");

fn scenario_json() -> String {
    set_sim_threads(1);
    let m = generate_power_law(&PowerLawConfig {
        rows: 1500,
        cols: 1500,
        mean_degree: 6.0,
        max_degree: 1200,
        pinned_max_rows: 1,
        col_skew: 0.4,
        seed: 191,
        ..Default::default()
    });
    let mut mg = MultiGpuAcsr::new(
        &m,
        &presets::tesla_k10_single(),
        2,
        AcsrConfig::static_long_tail(),
    );
    let ledger = mg.enable_tracing();
    let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 5) as f64 * 0.25).collect();
    let mut y = vec![0.0f64; m.rows()];
    let rep = mg.spmv(&x, &mut y);
    set_sim_threads(0);
    // sanity: the run is a real dual-device SpMV, not a degenerate trace
    assert_eq!(rep.per_device.len(), 2);
    let d = sparse_formats::scalar::rel_l2_distance(&y, &m.spmv(&x));
    assert!(d < 1e-12, "rel distance {d}");
    ledger
        .reconcile()
        .expect("dual-GPU scenario must reconcile");
    ledger.chrome_trace_json()
}

#[test]
fn dual_device_trace_matches_golden_file() {
    let json = scenario_json();
    serde_json::validate(&json).expect("export must be valid JSON");

    // one process lane per device
    for dev in ["#0", "#1"] {
        assert!(
            json.contains(dev),
            "export must contain a device lane tagged {dev}"
        );
    }

    if std::env::var("ACSR_REGEN_GOLDEN").is_ok() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/trace_dual_k10.json"
        );
        std::fs::write(path, &json).expect("write golden");
        eprintln!("regenerated {path}");
        return;
    }
    assert_eq!(
        json, GOLDEN,
        "multi-GPU chrome-trace export drifted from tests/golden/trace_dual_k10.json \
         (regenerate with ACSR_REGEN_GOLDEN=1 if intentional)"
    );
}

fn fleet_scenario_json() -> String {
    set_sim_threads(1);
    let m = generate_power_law(&PowerLawConfig {
        rows: 1500,
        cols: 1500,
        mean_degree: 6.0,
        max_degree: 1200,
        pinned_max_rows: 1,
        col_skew: 0.4,
        seed: 191,
        ..Default::default()
    });
    let mut fleet = Fleet::new(&m, &presets::tesla_k10_single(), &FleetConfig::new(4));
    let ledger = fleet.enable_tracing();
    let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 5) as f64 * 0.25).collect();
    let mut y = vec![0.0f64; m.rows()];
    let rep = fleet.spmv(&x, &mut y);
    set_sim_threads(0);
    assert_eq!(rep.per_device.len(), 4);
    assert!(rep.halo_bytes() > 0, "4-way sharding must exchange");
    let d = sparse_formats::scalar::rel_l2_distance(&y, &m.spmv(&x));
    assert!(d < 1e-12, "rel distance {d}");
    ledger.reconcile().expect("fleet scenario must reconcile");
    ledger.chrome_trace_json()
}

#[test]
fn quad_fleet_trace_matches_golden_file() {
    let json = fleet_scenario_json();
    serde_json::validate(&json).expect("export must be valid JSON");

    // one process lane per device, and halo transfer spans on ingress
    for dev in ["#0", "#1", "#2", "#3"] {
        assert!(
            json.contains(dev),
            "export must contain a device lane tagged {dev}"
        );
    }
    assert!(
        json.contains("halo_"),
        "export must contain per-edge halo transfer spans"
    );

    if std::env::var("ACSR_REGEN_GOLDEN").is_ok() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/trace_fleet_quad.json"
        );
        std::fs::write(path, &json).expect("write golden");
        eprintln!("regenerated {path}");
        return;
    }
    assert_eq!(
        json, GOLDEN_FLEET,
        "fleet chrome-trace export drifted from tests/golden/trace_fleet_quad.json \
         (regenerate with ACSR_REGEN_GOLDEN=1 if intentional)"
    );
}
