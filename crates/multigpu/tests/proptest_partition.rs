//! Property tests for the fleet sharding layer: at every device count
//! the bin partition is a disjoint cover, and `partition_fleet`'s
//! replication / halo bookkeeping is internally consistent — every
//! input a shard's computed rows read is owned, replicated, or imported
//! exactly once, replicas are hot rows owned elsewhere, and the
//! replication policy's caps hold.

use graphgen::{generate_power_law, PowerLawConfig};
use multi_gpu::{partition_fleet, partition_rows_by_bins, FleetPartition, ReplicationPolicy};
use proptest::prelude::*;
use sparse_formats::CsrMatrix;

const DEVICE_COUNTS: [usize; 4] = [3, 5, 8, 16];

fn matrix(rows: usize, seed: u64) -> CsrMatrix<f64> {
    generate_power_law(&PowerLawConfig {
        rows,
        cols: rows,
        mean_degree: 7.0,
        max_degree: rows / 2 + 8,
        pinned_max_rows: 2,
        col_skew: 0.4,
        seed,
        ..Default::default()
    })
}

/// The full fleet-sharding invariant set for one partition.
fn assert_fleet_invariants(
    m: &CsrMatrix<f64>,
    n: usize,
    policy: &ReplicationPolicy,
    fp: &FleetPartition,
) {
    let rows = m.rows();
    assert_eq!(fp.shards.len(), n);
    assert_eq!(fp.owner.len(), rows);

    // 1. Owned rows form a disjoint cover and agree with the owner map.
    let mut seen = vec![false; rows];
    for s in &fp.shards {
        assert!(s.owned.windows(2).all(|w| w[0] < w[1]), "owned not sorted");
        for &r in &s.owned {
            assert!(!seen[r as usize], "row {r} owned twice");
            seen[r as usize] = true;
            assert_eq!(fp.owner[r as usize] as usize, s.device);
        }
    }
    assert!(seen.iter().all(|&s| s), "some row unowned");

    // 2. Replicas are hot rows owned by a *different* shard, and their
    //    nnz is included in the shard's compute load.
    let hot: Vec<bool> = {
        let mut f = vec![false; rows];
        for &r in &fp.hot_rows {
            f[r as usize] = true;
        }
        f
    };
    for s in &fp.shards {
        assert!(
            s.replicas.windows(2).all(|w| w[0] < w[1]),
            "replicas not sorted"
        );
        for &r in &s.replicas {
            assert!(hot[r as usize], "replica {r} is not a hot row");
            assert_ne!(
                fp.owner[r as usize] as usize, s.device,
                "shard replicates a row it already owns"
            );
        }
        let expect_nnz: usize = s
            .owned
            .iter()
            .chain(s.replicas.iter())
            .map(|&r| m.row_nnz(r as usize))
            .sum();
        assert_eq!(s.nnz, expect_nnz, "device {} nnz accounting", s.device);
    }

    // 3. Halo groups: keyed by the true owner, disjoint from owned and
    //    replicas, and together with them covering every in-range input
    //    column the shard's computed rows read.
    for s in &fp.shards {
        let mut local = vec![false; rows];
        for &r in s.owned.iter().chain(s.replicas.iter()) {
            local[r as usize] = true;
        }
        let mut imported = vec![false; rows];
        for (owner, group) in &s.halo_in {
            assert_ne!(*owner, s.device, "self-edge in halo");
            assert!(group.windows(2).all(|w| w[0] < w[1]), "halo not sorted");
            for &c in group {
                assert_eq!(fp.owner[c as usize] as usize, *owner, "wrong halo owner");
                assert!(!local[c as usize], "halo imports a locally computed row");
                assert!(!imported[c as usize], "column {c} imported twice");
                imported[c as usize] = true;
            }
        }
        for &r in &s.compute_rows() {
            for &c in m.row(r as usize).0 {
                if (c as usize) < rows {
                    assert!(
                        local[c as usize] || imported[c as usize],
                        "device {}: input column {c} of row {r} is neither local nor imported",
                        s.device
                    );
                }
            }
        }
    }

    // 4. Policy caps: hot rows are short, referenced widely enough, and
    //    bounded by the redundancy cap.
    let cap = (policy.max_fraction * rows as f64).floor() as usize;
    assert!(fp.hot_rows.len() <= cap, "redundancy cap exceeded");
    for &r in &fp.hot_rows {
        assert!(m.row_nnz(r as usize) <= policy.max_row_len);
        let replicating = fp
            .shards
            .iter()
            .filter(|s| s.replicas.binary_search(&r).is_ok())
            .count();
        assert!(
            replicating >= 1,
            "hot row {r} is replicated nowhere (census drifted)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `partition_rows_by_bins` at N ∈ {3, 5, 8, 16}: disjoint cover
    /// with exact nnz accounting.
    #[test]
    fn bin_partition_is_disjoint_cover(rows in 60usize..500, seed in 1u64..5000) {
        let m = matrix(rows, seed);
        for n in DEVICE_COUNTS {
            let parts = partition_rows_by_bins(&m, n);
            prop_assert_eq!(parts.len(), n);
            let mut seen = vec![false; m.rows()];
            let mut nnz = 0usize;
            for p in &parts {
                prop_assert!(p.rows.windows(2).all(|w| w[0] < w[1]));
                for &r in &p.rows {
                    prop_assert!(!seen[r as usize], "row {} assigned twice", r);
                    seen[r as usize] = true;
                }
                nnz += p.nnz;
            }
            prop_assert!(seen.iter().all(|&s| s));
            prop_assert_eq!(nnz, m.nnz());
        }
    }

    /// `partition_fleet` bookkeeping at N ∈ {3, 5, 8, 16}, with
    /// replication both on and off.
    #[test]
    fn fleet_partition_bookkeeping_holds(rows in 60usize..400, seed in 1u64..5000) {
        let m = matrix(rows, seed);
        let generous = ReplicationPolicy {
            min_referencing_shards: 2,
            max_row_len: 64,
            max_fraction: 0.10,
        };
        for n in DEVICE_COUNTS {
            for policy in [ReplicationPolicy::disabled(), ReplicationPolicy::default(), generous] {
                let fp = partition_fleet(&m, n, &policy);
                assert_fleet_invariants(&m, n, &policy, &fp);
                if policy == ReplicationPolicy::disabled() {
                    prop_assert!(fp.hot_rows.is_empty());
                    prop_assert!(fp.shards.iter().all(|s| s.replicas.is_empty()));
                }
            }
        }
    }
}

/// Fewer rows than devices: surplus shards are empty, with no replicas,
/// no halo, and zero nnz — and the cover still holds.
#[test]
fn fewer_rows_than_devices_leaves_clean_empty_shards() {
    let mut t = sparse_formats::TripletMatrix::<f64>::new(3, 3);
    t.push(0, 1, 1.0).unwrap();
    t.push(1, 2, 2.0).unwrap();
    t.push(2, 0, 3.0).unwrap();
    let m = t.to_csr();
    for n in [8usize, 16] {
        let fp = partition_fleet(&m, n, &ReplicationPolicy::default());
        assert_fleet_invariants(&m, n, &ReplicationPolicy::default(), &fp);
        let empty = fp.shards.iter().filter(|s| s.owned.is_empty()).count();
        assert_eq!(empty, n - 3, "{n} devices: exactly 3 shards own a row");
        for s in fp.shards.iter().filter(|s| s.owned.is_empty()) {
            assert!(s.replicas.is_empty(), "empty shard replicates nothing");
            assert!(s.halo_in.is_empty(), "empty shard imports nothing");
            assert_eq!(s.nnz, 0);
        }
    }
}
