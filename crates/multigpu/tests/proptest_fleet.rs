//! Fleet determinism properties: a sharded SpMV's *values* are
//! bit-identical to the single-device ACSR plan (sharding changes
//! where a row runs, never its arithmetic), and the full observable
//! result — values, per-device counters, modeled times, and the
//! scheduled exchange — is bit-identical across host worker widths
//! (`ACSR_SIM_THREADS` ∈ {1, 2, 4}).

use acsr::AcsrConfig;
use gpu_sim::{presets, set_sim_threads, RunReport};
use graphgen::{generate_power_law, PowerLawConfig};
use multi_gpu::{Fleet, FleetConfig, FleetReport};
use proptest::prelude::*;
use sparse_formats::CsrMatrix;
use spmv_pipeline::{AcsrPlanner, PlanBudget, SpmvPlanner};
use std::sync::Mutex;

/// `set_sim_threads` is process-global; hold this across width changes.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn matrix(rows: usize, seed: u64) -> CsrMatrix<f64> {
    generate_power_law(&PowerLawConfig {
        rows,
        cols: rows,
        mean_degree: 8.0,
        max_degree: rows / 2 + 8,
        pinned_max_rows: 2,
        col_skew: 0.4,
        seed,
        ..Default::default()
    })
}

fn input(cols: usize) -> Vec<f64> {
    (0..cols).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect()
}

/// Everything a fleet SpMV observably produced, as raw bits.
fn signature(rep: &FleetReport, y: &[f64]) -> (Vec<u64>, Vec<String>, Vec<u64>, String) {
    let dev = |r: &RunReport| {
        format!(
            "{} {} {:?} {:?}",
            r.name,
            r.time_s.to_bits(),
            r.counters,
            r.breakdown
        )
    };
    (
        y.iter().map(|v| v.to_bits()).collect(),
        rep.per_device.iter().map(dev).collect(),
        rep.compute.iter().map(|c| c.to_bits()).collect(),
        format!("{:?} {:?}", rep.exchange, rep.formats),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Fleet values equal the single-device ACSR plan bit-for-bit at
    /// every device count, and the whole report is invariant across
    /// host worker widths.
    #[test]
    fn fleet_is_bit_identical_to_reference_and_across_widths(
        rows in 300usize..900,
        seed in 1u64..4000,
    ) {
        let _guard = WIDTH_LOCK.lock().unwrap();
        let m = matrix(rows, seed);
        let x = input(m.cols());
        let dev_cfg = presets::tesla_k10_single();

        // Single-device reference: one ACSR plan over the whole matrix.
        set_sim_threads(1);
        let dev = gpu_sim::Device::new(dev_cfg.clone());
        let planner = AcsrPlanner::with_config(AcsrConfig::static_long_tail());
        let plan = planner
            .plan(&dev, &m, &PlanBudget::for_device(dev.config()))
            .expect("reference plan fits");
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        use spmv_kernels::GpuSpmv;
        plan.spmv(&dev, &xd, &yd);
        let want: Vec<u64> = yd.as_slice().iter().map(|v| v.to_bits()).collect();
        set_sim_threads(0);

        for n in [2usize, 3, 5] {
            let mut base = None;
            for width in [1usize, 2, 4] {
                set_sim_threads(width);
                let fleet = Fleet::new(&m, &dev_cfg, &FleetConfig::new(n));
                let mut y = vec![0.0f64; m.rows()];
                let rep = fleet.spmv(&x, &mut y);
                set_sim_threads(0);
                let got: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(
                    &got, &want,
                    "{} devices, width {}: values drifted from the single-device plan",
                    n, width
                );
                let sig = signature(&rep, &y);
                match &base {
                    None => base = Some(sig),
                    Some(b) => prop_assert_eq!(
                        b, &sig,
                        "{} devices: width {} report differs from width 1",
                        n, width
                    ),
                }
            }
        }
    }
}
