//! The N-device sharded fleet executor.
//!
//! Where [`crate::MultiGpuAcsr`] mirrors the paper's §VIII setup — every
//! device holds a full copy of `x` — a [`Fleet`] models the resident
//! configuration a larger machine actually runs: each device holds only
//! its shard (owned rows plus replicated hot rows), and between
//! iterations the shards exchange exactly the remote `x` entries their
//! peers computed. The exchange is explicit and event-scheduled
//! ([`crate::halo`]): each `(owner → shard)` halo edge becomes one
//! interconnect transfer, ready the instant its producer's compute
//! finishes, FIFO per egress/ingress engine — so transfers from
//! early-finishing devices hide under the slowest device's compute.
//!
//! Each shard plans its own format: binned sharding reshapes every
//! shard's row-length distribution, so a dense shard may plan ELL/HYB
//! while a skewed shard keeps ACSR ([`ShardFormat::Adaptive`]).
//!
//! Values stay bit-identical to the single-device reference: a row is
//! computed from the full-precision `x` with its in-row accumulation
//! order unchanged by sharding, and only the *owner's* computation
//! writes the global result (replicas feed local reuse only).

use crate::halo::{ns, schedule_exchange, EdgeSpec, ExchangeReport, LinkModel};
use crate::partition::{partition_fleet, FleetPartition, ReplicationPolicy};
use crate::record_device_gauges;
use acsr::AcsrConfig;
use acsr_telemetry::MetricsRegistry;
use gpu_sim::trace::TraceLedger;
use gpu_sim::{Device, DeviceConfig, RunReport};
use sparse_formats::{CsrMatrix, Scalar};
use spmv_kernels::GpuSpmv;
use spmv_pipeline::{
    AcsrPlanner, AdaptiveSelector, FormatRegistry, PlanBudget, SpmvPlan, SpmvPlanner,
};
use std::sync::Arc;

/// How each shard's executable format is chosen.
#[derive(Clone, Debug)]
pub enum ShardFormat {
    /// Every shard runs ACSR with this configuration (the §VIII
    /// static long-tail setup scaled out).
    Acsr(AcsrConfig),
    /// Every shard runs one fixed registry format ("HYB", "ELL", ...).
    Fixed(&'static str),
    /// Run the [`AdaptiveSelector`] per shard with this amortization
    /// horizon: shards pick the format their own row-length
    /// distribution favors.
    Adaptive {
        /// Expected SpMV applications the plan amortizes over.
        horizon: u64,
    },
}

/// Fleet construction knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Simulated devices.
    pub n_devices: usize,
    /// Interconnect class the halo exchange rides.
    pub link: LinkModel,
    /// Hot-row replication policy.
    pub replication: ReplicationPolicy,
    /// Per-shard format choice.
    pub format: ShardFormat,
}

impl FleetConfig {
    /// ACSR on every shard, PCIe-class links, default replication.
    pub fn new(n_devices: usize) -> FleetConfig {
        FleetConfig {
            n_devices,
            link: LinkModel::pcie(),
            replication: ReplicationPolicy::default(),
            format: ShardFormat::Acsr(AcsrConfig::static_long_tail()),
        }
    }

    /// Same, with the NVLink-class interconnect.
    pub fn nvlink(n_devices: usize) -> FleetConfig {
        FleetConfig {
            link: LinkModel::nvlink(),
            ..FleetConfig::new(n_devices)
        }
    }
}

/// One fleet SpMV's timing: per-device accounting, the compute phase,
/// and the scheduled exchange.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-device kernel + halo-ingress accounting (busy time).
    pub per_device: Vec<RunReport>,
    /// Per-device compute seconds (before any exchange transfer).
    pub compute: Vec<f64>,
    /// The scheduled halo exchange.
    pub exchange: ExchangeReport,
    /// Format each shard executed ("-" for an empty shard).
    pub formats: Vec<String>,
    /// Hot rows computed redundantly somewhere in the fleet.
    pub replicated_rows: usize,
}

impl FleetReport {
    /// Compute-phase makespan: the slowest device's kernel time.
    pub fn compute_s(&self) -> f64 {
        self.compute.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Modeled wall time: the compute makespan or the last exchange
    /// transfer's completion, whichever lands later. Transfers that
    /// finished while a slower device still computed cost nothing.
    pub fn seconds(&self) -> f64 {
        self.compute_s().max(self.exchange.end_s())
    }

    /// Seconds the exchange extends past compute (0.0 when it hid).
    pub fn exchange_tail_s(&self) -> f64 {
        self.exchange.tail_s(self.compute_s())
    }

    /// Total halo payload bytes this SpMV moved.
    pub fn halo_bytes(&self) -> u64 {
        self.exchange.total_bytes()
    }

    /// GFLOP/s for `flops` useful operations.
    pub fn gflops(&self, flops: u64) -> f64 {
        flops as f64 / self.seconds() / 1e9
    }
}

/// An N-device sharded SpMV executor with event-scheduled halo
/// exchange (see the module docs).
pub struct Fleet<T: Scalar> {
    devices: Vec<Device>,
    /// `None` for empty shards (more devices than rows can feed).
    plans: Vec<Option<SpmvPlan<T>>>,
    partition: FleetPartition,
    /// `compute_rows[d][local] = global` for every computed row.
    compute_rows: Vec<Vec<u32>>,
    formats: Vec<String>,
    link: LinkModel,
    rows: usize,
    cols: usize,
    nnz: usize,
}

impl<T: Scalar> Fleet<T> {
    /// Shard `m` across `cfg.n_devices` copies of `device_cfg` and plan
    /// every shard per `cfg.format`.
    pub fn new(m: &CsrMatrix<T>, device_cfg: &DeviceConfig, cfg: &FleetConfig) -> Fleet<T> {
        assert!(cfg.n_devices >= 1, "need at least one device");
        let partition = partition_fleet(m, cfg.n_devices, &cfg.replication);
        let mut devices = Vec::with_capacity(cfg.n_devices);
        let mut plans = Vec::with_capacity(cfg.n_devices);
        let mut compute_rows = Vec::with_capacity(cfg.n_devices);
        let mut formats = Vec::with_capacity(cfg.n_devices);
        for shard in &partition.shards {
            let mut dc = device_cfg.clone();
            if cfg.n_devices > 1 {
                dc.name = format!("{} #{}", dc.name, shard.device);
            }
            let dev = Device::new(dc);
            let rows = shard.compute_rows();
            if rows.is_empty() {
                plans.push(None);
                formats.push("-".to_string());
            } else {
                let sub = crate::extract_rows(m, &rows);
                let budget = PlanBudget::for_device(dev.config());
                let (plan, format) = match &cfg.format {
                    ShardFormat::Acsr(acsr_cfg) => {
                        let planner = AcsrPlanner::with_config(*acsr_cfg);
                        let plan = planner
                            .plan(&dev, &sub, &budget)
                            .expect("shard ACSR plan must fit the device");
                        (plan, "ACSR".to_string())
                    }
                    ShardFormat::Fixed(name) => {
                        let reg = FormatRegistry::<T>::with_all();
                        let plan = reg
                            .plan(name, &dev, &sub, &budget)
                            .expect("shard plan must fit the device");
                        (plan, name.to_string())
                    }
                    ShardFormat::Adaptive { horizon } => {
                        let mut reg = FormatRegistry::<T>::with_all();
                        reg.register(Box::new(AcsrPlanner::with_config(
                            AcsrConfig::static_long_tail(),
                        )));
                        let budget = budget.with_iterations(*horizon);
                        let sel = AdaptiveSelector.select(&reg, &dev, &sub, &budget);
                        let winner = sel.winner.clone();
                        (sel.plan, winner)
                    }
                };
                plans.push(Some(plan));
                formats.push(format);
            }
            compute_rows.push(rows);
            devices.push(dev);
        }
        Fleet {
            devices,
            plans,
            partition,
            compute_rows,
            formats,
            link: cfg.link,
            rows: m.rows(),
            cols: m.cols(),
            nnz: m.nnz(),
        }
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Global rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Global columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored non-zeros (owned, without replication redundancy).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The sharding (owned rows, replicas, halo edges).
    pub fn partition(&self) -> &FleetPartition {
        &self.partition
    }

    /// Format each shard executes ("-" for an empty shard).
    pub fn formats(&self) -> &[String] {
        &self.formats
    }

    /// Per-device computed nnz (owned + replicas; load diagnostics).
    pub fn device_nnz(&self) -> Vec<usize> {
        self.partition.shards.iter().map(|s| s.nnz).collect()
    }

    /// Device `d`.
    pub fn device(&self, d: usize) -> &Device {
        &self.devices[d]
    }

    /// Attach one shared trace ledger to every device and return it:
    /// subsequent [`Self::spmv`] calls record per-device kernel spans
    /// *and* per-edge halo transfer spans (on the receiving device's
    /// lane), so the chrome-trace export shows the exchange.
    pub fn enable_tracing(&mut self) -> Arc<TraceLedger> {
        let ledger = Arc::new(TraceLedger::new());
        for dev in &mut self.devices {
            dev.attach_ledger(ledger.clone());
        }
        ledger
    }

    /// Run `y = A * x` across the fleet; `y` must have `rows` slots.
    ///
    /// Phase 1 (compute): every shard runs its plan over the full-value
    /// `x`; the owner's result is written to `y` bit-identically to the
    /// single-device plan. Phase 2 (exchange): each halo edge ships the
    /// next iterate's remote entries, ready at its producer's finish,
    /// scheduled on the interconnect ([`crate::halo`]).
    pub fn spmv(&self, x: &[T], y: &mut [T]) -> FleetReport {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(y.len(), self.rows, "y length mismatch");
        let n = self.devices.len();
        let mut per_device = vec![RunReport::default(); n];
        let mut compute = vec![0.0f64; n];
        for d in 0..n {
            let Some(plan) = &self.plans[d] else { continue };
            let dev = &self.devices[d];
            let xd = dev.alloc(x.to_vec());
            let yd = dev.alloc_zeroed::<T>(plan.rows());
            let rep = plan.spmv(dev, &xd, &yd);
            let shard = &self.partition.shards[d];
            let local = yd.as_slice();
            for (l, &g) in self.compute_rows[d].iter().enumerate() {
                if self.partition.owner[g as usize] as usize == d {
                    y[g as usize] = local[l];
                }
            }
            debug_assert_eq!(shard.device, d);
            compute[d] = rep.time_s;
            per_device[d] = rep;
        }

        // Halo edges: owner → shard, ready at the owner's finish.
        let elt = std::mem::size_of::<T>() as u64;
        let mut edges = Vec::new();
        for shard in &self.partition.shards {
            for (src, rows) in &shard.halo_in {
                edges.push(EdgeSpec {
                    src: *src,
                    dst: shard.device,
                    entries: rows.len(),
                    bytes: rows.len() as u64 * elt,
                    ready_ns: ns(compute[*src]),
                });
            }
        }
        let exchange = schedule_exchange(n, &edges, &self.link);
        for t in &exchange.transfers {
            let rep = self.devices[t.dst].record_peer_recv(
                &format!("halo_{}to{}", t.src, t.dst),
                t.bytes,
                t.dur_s(),
            );
            per_device[t.dst] = per_device[t.dst].clone().then(&rep);
        }
        FleetReport {
            per_device,
            compute,
            exchange,
            formats: self.formats.clone(),
            replicated_rows: self.partition.hot_rows.len(),
        }
    }
}

/// Fold one fleet SpMV into `metrics` under `prefix`: the shared
/// per-device busy/idle/utilization gauges
/// ([`record_device_gauges`]), per-device halo traffic counters
/// (`<prefix>.<d>.halo_send_bytes` / `halo_recv_bytes`), and the
/// exchange phase gauges (`<prefix>.exchange_s`,
/// `<prefix>.exchange_tail_s`, `<prefix>.replicated_rows`).
pub fn record_fleet_metrics(metrics: &MetricsRegistry, prefix: &str, report: &FleetReport) {
    record_device_gauges(metrics, prefix, &report.per_device, report.seconds());
    for d in 0..report.per_device.len() {
        metrics.add(
            &format!("{prefix}.{d}.halo_send_bytes"),
            report.exchange.send_bytes[d],
        );
        metrics.add(
            &format!("{prefix}.{d}.halo_recv_bytes"),
            report.exchange.recv_bytes[d],
        );
    }
    metrics.set_gauge(&format!("{prefix}.exchange_s"), report.exchange.end_s());
    metrics.set_gauge(
        &format!("{prefix}.exchange_tail_s"),
        report.exchange_tail_s(),
    );
    metrics.set_gauge(
        &format!("{prefix}.replicated_rows"),
        report.replicated_rows as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn matrix(rows: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 10.0,
            max_degree: 1200,
            pinned_max_rows: 2,
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn fleet_matches_reference_at_many_widths() {
        let m = matrix(4000, 301);
        let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
        let want = m.spmv(&x);
        for n in [1usize, 2, 3, 5, 8] {
            let fleet = Fleet::new(&m, &presets::tesla_k10_single(), &FleetConfig::new(n));
            let mut y = vec![0.0; m.rows()];
            let rep = fleet.spmv(&x, &mut y);
            let d = sparse_formats::scalar::rel_l2_distance(&y, &want);
            assert!(d < 1e-12, "{n} devices: rel distance {d}");
            assert_eq!(rep.per_device.len(), n);
            assert!(rep.seconds() > 0.0);
            if n == 1 {
                assert!(rep.exchange.transfers.is_empty(), "no self-halo");
                assert_eq!(rep.halo_bytes(), 0);
            } else {
                assert!(rep.halo_bytes() > 0, "{n} devices must exchange");
            }
        }
    }

    #[test]
    fn halo_bytes_match_partition_bookkeeping() {
        let m = matrix(3000, 302);
        let cfg = FleetConfig::new(4);
        let fleet = Fleet::new(&m, &presets::tesla_k10_single(), &cfg);
        let x = vec![1.0f64; m.cols()];
        let mut y = vec![0.0; m.rows()];
        let rep = fleet.spmv(&x, &mut y);
        let expect: u64 = fleet
            .partition()
            .shards
            .iter()
            .map(|s| s.halo_entries() as u64 * 8)
            .sum();
        assert_eq!(rep.halo_bytes(), expect);
        let send: u64 = rep.exchange.send_bytes.iter().sum();
        let recv: u64 = rep.exchange.recv_bytes.iter().sum();
        assert_eq!(send, expect);
        assert_eq!(recv, expect, "no halo edge targets the host sink");
        // Per-device ingress accounting mirrors the exchange exactly.
        for d in 0..4 {
            assert_eq!(
                rep.per_device[d].counters.htod_bytes,
                rep.exchange.recv_bytes[d]
            );
        }
    }

    #[test]
    fn replication_reduces_halo_traffic() {
        let m = matrix(6000, 303);
        let dev = presets::tesla_k10_single();
        let mut with = FleetConfig::new(4);
        with.replication = ReplicationPolicy {
            min_referencing_shards: 2,
            max_row_len: 64,
            max_fraction: 0.10,
        };
        let mut without = FleetConfig::new(4);
        without.replication = ReplicationPolicy::disabled();
        let x = vec![1.0f64; m.cols()];
        let mut y = vec![0.0; m.rows()];
        let rep_with = Fleet::new(&m, &dev, &with).spmv(&x, &mut y);
        let ya = y.clone();
        let rep_without = Fleet::new(&m, &dev, &without).spmv(&x, &mut y);
        assert_eq!(ya, y, "replication must not change values");
        assert!(rep_with.replicated_rows > 0, "power-law graph has hot rows");
        assert_eq!(rep_without.replicated_rows, 0);
        assert!(
            rep_with.halo_bytes() < rep_without.halo_bytes(),
            "replication {} vs {} halo bytes",
            rep_with.halo_bytes(),
            rep_without.halo_bytes()
        );
    }

    #[test]
    fn empty_shards_are_tolerated() {
        // 3 rows over 8 devices: five shards compute nothing.
        let mut t = sparse_formats::TripletMatrix::<f64>::new(3, 3);
        t.push(0, 1, 1.0).unwrap();
        t.push(1, 2, 2.0).unwrap();
        t.push(2, 0, 3.0).unwrap();
        let m = t.to_csr();
        let fleet = Fleet::new(&m, &presets::tesla_k10_single(), &FleetConfig::new(8));
        let x = vec![2.0f64; 3];
        let mut y = vec![0.0; 3];
        let rep = fleet.spmv(&x, &mut y);
        assert_eq!(y, vec![2.0, 4.0, 6.0]);
        assert_eq!(rep.formats.iter().filter(|f| *f == "-").count(), 5);
        assert_eq!(rep.per_device.len(), 8);
    }

    #[test]
    fn fleet_metrics_fold_halo_and_utilization() {
        let m = matrix(2000, 304);
        let fleet = Fleet::new(&m, &presets::tesla_k10_single(), &FleetConfig::new(2));
        let x = vec![1.0f64; m.cols()];
        let mut y = vec![0.0; m.rows()];
        let rep = fleet.spmv(&x, &mut y);
        let metrics = MetricsRegistry::new();
        record_fleet_metrics(&metrics, "fleet.device", &rep);
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counter("fleet.device.0.halo_send_bytes"),
            Some(rep.exchange.send_bytes[0])
        );
        assert_eq!(
            snap.counter("fleet.device.1.halo_recv_bytes"),
            Some(rep.exchange.recv_bytes[1])
        );
        assert!(snap.gauge("fleet.device.0.utilization").is_some());
        assert_eq!(
            snap.gauge("fleet.device.exchange_s"),
            Some(rep.exchange.end_s())
        );
    }

    #[test]
    fn adaptive_shards_may_choose_different_formats() {
        // 3 huge rows + thousands of uniform short rows at 4 devices:
        // the huge rows land in a tail bin with < 4 rows, so some
        // shards see only the uniform body (ELL/HYB territory) while
        // others carry the skewed tail.
        let rows = 4003usize;
        let mut t = sparse_formats::TripletMatrix::<f64>::new(rows, rows);
        for r in 0..3usize {
            for c in 0..1500usize {
                t.push(r, (r * 7 + c * 2) % rows, 1.0 + c as f64 * 0.01)
                    .unwrap();
            }
        }
        for r in 3..rows {
            for j in 0..8usize {
                t.push(r, (r * 13 + j * 97) % rows, 0.5 + j as f64).unwrap();
            }
        }
        let m = t.to_csr();
        let mut cfg = FleetConfig::new(4);
        cfg.format = ShardFormat::Adaptive { horizon: 1000 };
        let fleet = Fleet::new(&m, &presets::gtx_titan(), &cfg);
        let mut distinct: Vec<&String> = fleet.formats().iter().filter(|f| *f != "-").collect();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() >= 2,
            "shards should diverge, got {:?}",
            fleet.formats()
        );
        // and the mixed-format fleet still answers correctly
        let x: Vec<f64> = (0..rows).map(|i| 1.0 + (i % 5) as f64 * 0.2).collect();
        let mut y = vec![0.0; rows];
        fleet.spmv(&x, &mut y);
        let d = sparse_formats::scalar::rel_l2_distance(&y, &m.spmv(&x));
        assert!(d < 1e-12, "rel distance {d}");
    }
}
