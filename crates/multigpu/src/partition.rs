//! Per-bin row partitioning (§VIII).
//!
//! Rows are binned exactly as ACSR's Algorithm 1 does; each bin's rows
//! are then dealt round-robin to the devices, so every device gets the
//! same *shape* of work (the same mix of short and long rows), not just
//! the same row count — the property that makes the paper's "half of
//! each bin" split load-balanced.

use sparse_formats::stats::bin_index;
use sparse_formats::{CsrMatrix, Scalar};

/// The rows assigned to one device, in ascending global order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinPartition {
    /// Device index.
    pub device: usize,
    /// Global row ids owned by this device.
    pub rows: Vec<u32>,
    /// Non-zeros owned by this device.
    pub nnz: usize,
}

/// Split `m`'s rows across `n_devices` by dealing each bin round-robin.
pub fn partition_rows_by_bins<T: Scalar>(m: &CsrMatrix<T>, n_devices: usize) -> Vec<BinPartition> {
    assert!(n_devices >= 1);
    // bin -> rows (ascending because we scan rows in order)
    let mut bins: Vec<Vec<u32>> = Vec::new();
    for r in 0..m.rows() {
        let b = bin_index(m.row_nnz(r));
        if b >= bins.len() {
            bins.resize_with(b + 1, Vec::new);
        }
        bins[b].push(r as u32);
    }
    let mut parts: Vec<BinPartition> = (0..n_devices)
        .map(|device| BinPartition {
            device,
            rows: Vec::new(),
            nnz: 0,
        })
        .collect();
    for rows in &bins {
        for (i, &r) in rows.iter().enumerate() {
            let p = &mut parts[i % n_devices];
            p.rows.push(r);
            p.nnz += m.row_nnz(r as usize);
        }
    }
    for p in &mut parts {
        p.rows.sort_unstable();
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn matrix(rows: usize) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 8.0,
            max_degree: 600,
            pinned_max_rows: 2,
            col_skew: 0.3,
            seed: 181,
            ..Default::default()
        })
    }

    #[test]
    fn partitions_cover_all_rows_disjointly() {
        let m = matrix(5000);
        let parts = partition_rows_by_bins(&m, 3);
        let mut seen = vec![false; m.rows()];
        for p in &parts {
            for &r in &p.rows {
                assert!(!seen[r as usize], "row {r} assigned twice");
                seen[r as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn nnz_shares_are_balanced() {
        let m = matrix(8000);
        let parts = partition_rows_by_bins(&m, 2);
        let total: usize = parts.iter().map(|p| p.nnz).sum();
        assert_eq!(total, m.nnz());
        let ratio = parts[0].nnz as f64 / parts[1].nnz as f64;
        assert!((0.85..1.18).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn each_device_gets_long_tail_rows() {
        // both devices must receive some of the widest rows, otherwise
        // one device serializes the whole tail
        let m = matrix(4000);
        let parts = partition_rows_by_bins(&m, 2);
        let widest = m.row_stats().max_row;
        for p in &parts {
            let dev_max = p.rows.iter().map(|&r| m.row_nnz(r as usize)).max().unwrap();
            assert!(
                dev_max as f64 >= widest as f64 / 4.0,
                "device {} max row {dev_max} vs global {widest}",
                p.device
            );
        }
    }

    #[test]
    fn single_device_owns_everything() {
        let m = matrix(1000);
        let parts = partition_rows_by_bins(&m, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].rows.len(), m.rows());
        assert_eq!(parts[0].nnz, m.nnz());
    }
}
