//! Per-bin row partitioning (§VIII).
//!
//! Rows are binned exactly as ACSR's Algorithm 1 does; each bin's rows
//! are then dealt round-robin to the devices, so every device gets the
//! same *shape* of work (the same mix of short and long rows), not just
//! the same row count — the property that makes the paper's "half of
//! each bin" split load-balanced.

use sparse_formats::stats::bin_index;
use sparse_formats::{CsrMatrix, Scalar};

/// The rows assigned to one device, in ascending global order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinPartition {
    /// Device index.
    pub device: usize,
    /// Global row ids owned by this device.
    pub rows: Vec<u32>,
    /// Non-zeros owned by this device.
    pub nnz: usize,
}

/// Split `m`'s rows across `n_devices` by dealing each bin round-robin.
pub fn partition_rows_by_bins<T: Scalar>(m: &CsrMatrix<T>, n_devices: usize) -> Vec<BinPartition> {
    assert!(n_devices >= 1);
    // bin -> rows (ascending because we scan rows in order)
    let mut bins: Vec<Vec<u32>> = Vec::new();
    for r in 0..m.rows() {
        let b = bin_index(m.row_nnz(r));
        if b >= bins.len() {
            bins.resize_with(b + 1, Vec::new);
        }
        bins[b].push(r as u32);
    }
    let mut parts: Vec<BinPartition> = (0..n_devices)
        .map(|device| BinPartition {
            device,
            rows: Vec::new(),
            nnz: 0,
        })
        .collect();
    for rows in &bins {
        for (i, &r) in rows.iter().enumerate() {
            let p = &mut parts[i % n_devices];
            p.rows.push(r);
            p.nnz += m.row_nnz(r as usize);
        }
    }
    for p in &mut parts {
        p.rows.sort_unstable();
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn matrix(rows: usize) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 8.0,
            max_degree: 600,
            pinned_max_rows: 2,
            col_skew: 0.3,
            seed: 181,
            ..Default::default()
        })
    }

    #[test]
    fn partitions_cover_all_rows_disjointly() {
        let m = matrix(5000);
        let parts = partition_rows_by_bins(&m, 3);
        let mut seen = vec![false; m.rows()];
        for p in &parts {
            for &r in &p.rows {
                assert!(!seen[r as usize], "row {r} assigned twice");
                seen[r as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn nnz_shares_are_balanced() {
        let m = matrix(8000);
        let parts = partition_rows_by_bins(&m, 2);
        let total: usize = parts.iter().map(|p| p.nnz).sum();
        assert_eq!(total, m.nnz());
        let ratio = parts[0].nnz as f64 / parts[1].nnz as f64;
        assert!((0.85..1.18).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn each_device_gets_long_tail_rows() {
        // both devices must receive some of the widest rows, otherwise
        // one device serializes the whole tail
        let m = matrix(4000);
        let parts = partition_rows_by_bins(&m, 2);
        let widest = m.row_stats().max_row;
        for p in &parts {
            let dev_max = p.rows.iter().map(|&r| m.row_nnz(r as usize)).max().unwrap();
            assert!(
                dev_max as f64 >= widest as f64 / 4.0,
                "device {} max row {dev_max} vs global {widest}",
                p.device
            );
        }
    }

    #[test]
    fn single_device_owns_everything() {
        let m = matrix(1000);
        let parts = partition_rows_by_bins(&m, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].rows.len(), m.rows());
        assert_eq!(parts[0].nnz, m.nnz());
    }

    /// Every partition result must be a disjoint cover of all rows with
    /// exact nnz accounting, whatever the device count.
    fn assert_disjoint_cover(m: &CsrMatrix<f64>, parts: &[BinPartition]) {
        let mut seen = vec![false; m.rows()];
        let mut nnz = 0usize;
        for p in parts {
            assert!(p.rows.windows(2).all(|w| w[0] < w[1]), "rows not sorted");
            for &r in &p.rows {
                assert!(!seen[r as usize], "row {r} assigned twice");
                seen[r as usize] = true;
            }
            assert_eq!(
                p.nnz,
                p.rows.iter().map(|&r| m.row_nnz(r as usize)).sum::<usize>()
            );
            nnz += p.nnz;
        }
        assert!(seen.iter().all(|&s| s), "some row unassigned");
        assert_eq!(nnz, m.nnz());
    }

    #[test]
    fn fewer_rows_than_devices_leaves_spare_devices_empty() {
        let mut t = sparse_formats::TripletMatrix::<f64>::new(3, 8);
        t.push(0, 1, 1.0).unwrap();
        t.push(1, 2, 2.0).unwrap();
        t.push(2, 3, 3.0).unwrap();
        let m = t.to_csr();
        let parts = partition_rows_by_bins(&m, 8);
        assert_eq!(parts.len(), 8);
        assert_disjoint_cover(&m, &parts);
        // all three rows land in the same bin, so they deal to the first
        // three devices and the rest own nothing
        assert!(parts.iter().filter(|p| p.rows.is_empty()).count() >= 5);
        for p in parts.iter().filter(|p| p.rows.is_empty()) {
            assert_eq!(p.nnz, 0);
        }
    }

    #[test]
    fn empty_bins_and_empty_rows_are_handled() {
        // rows: one empty, one tiny, one huge — most bins in between are
        // empty, and the empty row must still be owned by some device
        let mut t = sparse_formats::TripletMatrix::<f64>::new(3, 3000);
        t.push(1, 0, 1.0).unwrap();
        for cidx in 0..2500u32 {
            t.push(2, cidx as usize, 1.0).unwrap();
        }
        let m = t.to_csr();
        let parts = partition_rows_by_bins(&m, 2);
        assert_disjoint_cover(&m, &parts);
    }

    #[test]
    fn single_row_bins_are_dealt_deterministically() {
        // a geometric degree ladder puts exactly one row in each bin, so
        // every bin's single row deals to device 0
        let mut t = sparse_formats::TripletMatrix::<f64>::new(5, 64);
        for (row, len) in [(0usize, 1usize), (1, 3), (2, 6), (3, 12), (4, 24)] {
            for cidx in 0..len {
                t.push(row, cidx, 1.0).unwrap();
            }
        }
        let m = t.to_csr();
        let parts = partition_rows_by_bins(&m, 2);
        assert_disjoint_cover(&m, &parts);
        assert_eq!(parts[0].rows, vec![0, 1, 2, 3, 4]);
        assert!(parts[1].rows.is_empty());
    }

    #[test]
    fn zero_row_matrix_yields_empty_partitions() {
        let m = sparse_formats::TripletMatrix::<f64>::new(0, 10).to_csr();
        let parts = partition_rows_by_bins(&m, 3);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.rows.is_empty() && p.nnz == 0));
    }
}
