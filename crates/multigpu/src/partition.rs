//! Per-bin row partitioning (§VIII).
//!
//! Rows are binned exactly as ACSR's Algorithm 1 does; each bin's rows
//! are then dealt round-robin to the devices, so every device gets the
//! same *shape* of work (the same mix of short and long rows), not just
//! the same row count — the property that makes the paper's "half of
//! each bin" split load-balanced.

use sparse_formats::stats::bin_index;
use sparse_formats::{CsrMatrix, Scalar};
use std::collections::BTreeMap;

/// The rows assigned to one device, in ascending global order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinPartition {
    /// Device index.
    pub device: usize,
    /// Global row ids owned by this device.
    pub rows: Vec<u32>,
    /// Non-zeros owned by this device.
    pub nnz: usize,
}

/// Split `m`'s rows across `n_devices` by dealing each bin round-robin.
pub fn partition_rows_by_bins<T: Scalar>(m: &CsrMatrix<T>, n_devices: usize) -> Vec<BinPartition> {
    assert!(n_devices >= 1);
    // bin -> rows (ascending because we scan rows in order)
    let mut bins: Vec<Vec<u32>> = Vec::new();
    for r in 0..m.rows() {
        let b = bin_index(m.row_nnz(r));
        if b >= bins.len() {
            bins.resize_with(b + 1, Vec::new);
        }
        bins[b].push(r as u32);
    }
    let mut parts: Vec<BinPartition> = (0..n_devices)
        .map(|device| BinPartition {
            device,
            rows: Vec::new(),
            nnz: 0,
        })
        .collect();
    for rows in &bins {
        for (i, &r) in rows.iter().enumerate() {
            let p = &mut parts[i % n_devices];
            p.rows.push(r);
            p.nnz += m.row_nnz(r as usize);
        }
    }
    for p in &mut parts {
        p.rows.sort_unstable();
    }
    parts
}

/// When (and how much) to replicate hot rows across shards.
///
/// A *hot row* is a row whose output value is referenced by several
/// shards' input columns in the next iterate. If its producer row is
/// short, recomputing it on every referencing shard is cheaper than
/// shipping its value over the interconnect each iteration — the
/// mirroring idea of vertex-cut graph partitioners, applied to the
/// iterated-SpMV halo.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplicationPolicy {
    /// Replicate a row only when at least this many non-owner shards
    /// reference its value (≥ 1; 0 disables replication entirely).
    pub min_referencing_shards: usize,
    /// Replicate only rows whose own length (input count) is at most
    /// this — recomputing a 10 000-wide row everywhere is worse than
    /// shipping 8 bytes.
    pub max_row_len: usize,
    /// Cap on replicated rows as a fraction of all rows (replication
    /// multiplies compute; this bounds the redundancy).
    pub max_fraction: f64,
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        ReplicationPolicy {
            min_referencing_shards: 2,
            max_row_len: 32,
            max_fraction: 0.05,
        }
    }
}

impl ReplicationPolicy {
    /// No replication: every remote reference rides the halo exchange.
    pub fn disabled() -> ReplicationPolicy {
        ReplicationPolicy {
            min_referencing_shards: 0,
            max_row_len: 0,
            max_fraction: 0.0,
        }
    }
}

/// One shard of a [`FleetPartition`]: the rows a device computes and
/// the remote values it must import each iteration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Device index.
    pub device: usize,
    /// Global rows this shard *owns* (writes to the global result),
    /// ascending.
    pub owned: Vec<u32>,
    /// Hot rows computed redundantly here (owned elsewhere), ascending.
    /// Their locally computed values feed this shard's next iterate
    /// without a transfer; the owner still writes the global result.
    pub replicas: Vec<u32>,
    /// Remote values imported each iteration, grouped by owning shard:
    /// `(owner, ascending global rows)`. Disjoint from `owned` and
    /// `replicas`.
    pub halo_in: Vec<(usize, Vec<u32>)>,
    /// Non-zeros computed on this device (owned + replica rows).
    pub nnz: usize,
}

impl ShardPlan {
    /// All rows computed on this device (`owned` ∪ `replicas`),
    /// ascending.
    pub fn compute_rows(&self) -> Vec<u32> {
        let mut rows: Vec<u32> = self
            .owned
            .iter()
            .chain(self.replicas.iter())
            .copied()
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Values imported per iteration.
    pub fn halo_entries(&self) -> usize {
        self.halo_in.iter().map(|(_, rows)| rows.len()).sum()
    }
}

/// A bin-aware N-device sharding with hot-row replication bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetPartition {
    /// One plan per device.
    pub shards: Vec<ShardPlan>,
    /// Rows replicated on at least one non-owner shard, ascending.
    pub hot_rows: Vec<u32>,
    /// `owner[row]` = owning device.
    pub owner: Vec<u32>,
}

/// Shard `m`'s rows across `n_devices` by bins (via
/// [`partition_rows_by_bins`]), then derive each shard's halo needs for
/// the iterated-SpMV dataflow `x ← y` — shard `d` needs row `c`'s value
/// whenever a row it computes has a non-zero in column `c` — and
/// replicate hot rows per `policy`. Columns `≥ m.rows()` (rectangular
/// operators) have no producer and are treated as host-resident input.
pub fn partition_fleet<T: Scalar>(
    m: &CsrMatrix<T>,
    n_devices: usize,
    policy: &ReplicationPolicy,
) -> FleetPartition {
    let parts = partition_rows_by_bins(m, n_devices);
    let rows = m.rows();
    let mut owner = vec![0u32; rows];
    for p in &parts {
        for &r in &p.rows {
            owner[r as usize] = p.device as u32;
        }
    }
    // Per shard: the set of remote producer rows its owned rows read.
    let refs: Vec<Vec<u32>> = parts
        .iter()
        .map(|p| {
            let mut cols: Vec<u32> = p
                .rows
                .iter()
                .flat_map(|&r| m.row(r as usize).0.iter().copied())
                .filter(|&c| (c as usize) < rows && owner[c as usize] != p.device as u32)
                .collect();
            cols.sort_unstable();
            cols.dedup();
            cols
        })
        .collect();
    // Hot-row census: how many non-owner shards read each row's value.
    let mut ref_shards: BTreeMap<u32, usize> = BTreeMap::new();
    for shard_refs in &refs {
        for &c in shard_refs {
            *ref_shards.entry(c).or_insert(0) += 1;
        }
    }
    let mut hot: Vec<u32> = if policy.min_referencing_shards == 0 {
        Vec::new()
    } else {
        ref_shards
            .iter()
            .filter(|&(&c, &n)| {
                n >= policy.min_referencing_shards && m.row_nnz(c as usize) <= policy.max_row_len
            })
            .map(|(&c, _)| c)
            .collect()
    };
    // Most-referenced first under the redundancy cap, then ascending.
    hot.sort_by_key(|&c| (std::cmp::Reverse(ref_shards[&c]), c));
    let cap = (policy.max_fraction * rows as f64).floor() as usize;
    hot.truncate(cap);
    hot.sort_unstable();
    let is_hot = {
        let mut flags = vec![false; rows];
        for &c in &hot {
            flags[c as usize] = true;
        }
        flags
    };

    let shards = parts
        .iter()
        .zip(&refs)
        .map(|(p, shard_refs)| {
            // First-level replication: hot rows this shard reads are
            // computed locally instead of imported.
            let replicas: Vec<u32> = shard_refs
                .iter()
                .copied()
                .filter(|&c| is_hot[c as usize])
                .collect();
            let replica_set: Vec<bool> = {
                let mut flags = vec![false; rows];
                for &c in &replicas {
                    flags[c as usize] = true;
                }
                flags
            };
            // The halo covers everything the computed rows read that is
            // neither owned nor replicated here — including the inputs
            // the replicas themselves consume.
            let mut halo: Vec<u32> = p
                .rows
                .iter()
                .chain(replicas.iter())
                .flat_map(|&r| m.row(r as usize).0.iter().copied())
                .filter(|&c| {
                    (c as usize) < rows
                        && owner[c as usize] != p.device as u32
                        && !replica_set[c as usize]
                })
                .collect();
            halo.sort_unstable();
            halo.dedup();
            let mut by_owner: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
            for c in halo {
                by_owner
                    .entry(owner[c as usize] as usize)
                    .or_default()
                    .push(c);
            }
            let nnz = p.nnz
                + replicas
                    .iter()
                    .map(|&r| m.row_nnz(r as usize))
                    .sum::<usize>();
            ShardPlan {
                device: p.device,
                owned: p.rows.clone(),
                replicas,
                halo_in: by_owner.into_iter().collect(),
                nnz,
            }
        })
        .collect();
    FleetPartition {
        shards,
        hot_rows: hot,
        owner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn matrix(rows: usize) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 8.0,
            max_degree: 600,
            pinned_max_rows: 2,
            col_skew: 0.3,
            seed: 181,
            ..Default::default()
        })
    }

    #[test]
    fn partitions_cover_all_rows_disjointly() {
        let m = matrix(5000);
        let parts = partition_rows_by_bins(&m, 3);
        let mut seen = vec![false; m.rows()];
        for p in &parts {
            for &r in &p.rows {
                assert!(!seen[r as usize], "row {r} assigned twice");
                seen[r as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn nnz_shares_are_balanced() {
        let m = matrix(8000);
        let parts = partition_rows_by_bins(&m, 2);
        let total: usize = parts.iter().map(|p| p.nnz).sum();
        assert_eq!(total, m.nnz());
        let ratio = parts[0].nnz as f64 / parts[1].nnz as f64;
        assert!((0.85..1.18).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn each_device_gets_long_tail_rows() {
        // both devices must receive some of the widest rows, otherwise
        // one device serializes the whole tail
        let m = matrix(4000);
        let parts = partition_rows_by_bins(&m, 2);
        let widest = m.row_stats().max_row;
        for p in &parts {
            let dev_max = p.rows.iter().map(|&r| m.row_nnz(r as usize)).max().unwrap();
            assert!(
                dev_max as f64 >= widest as f64 / 4.0,
                "device {} max row {dev_max} vs global {widest}",
                p.device
            );
        }
    }

    #[test]
    fn single_device_owns_everything() {
        let m = matrix(1000);
        let parts = partition_rows_by_bins(&m, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].rows.len(), m.rows());
        assert_eq!(parts[0].nnz, m.nnz());
    }

    /// Every partition result must be a disjoint cover of all rows with
    /// exact nnz accounting, whatever the device count.
    fn assert_disjoint_cover(m: &CsrMatrix<f64>, parts: &[BinPartition]) {
        let mut seen = vec![false; m.rows()];
        let mut nnz = 0usize;
        for p in parts {
            assert!(p.rows.windows(2).all(|w| w[0] < w[1]), "rows not sorted");
            for &r in &p.rows {
                assert!(!seen[r as usize], "row {r} assigned twice");
                seen[r as usize] = true;
            }
            assert_eq!(
                p.nnz,
                p.rows.iter().map(|&r| m.row_nnz(r as usize)).sum::<usize>()
            );
            nnz += p.nnz;
        }
        assert!(seen.iter().all(|&s| s), "some row unassigned");
        assert_eq!(nnz, m.nnz());
    }

    #[test]
    fn fewer_rows_than_devices_leaves_spare_devices_empty() {
        let mut t = sparse_formats::TripletMatrix::<f64>::new(3, 8);
        t.push(0, 1, 1.0).unwrap();
        t.push(1, 2, 2.0).unwrap();
        t.push(2, 3, 3.0).unwrap();
        let m = t.to_csr();
        let parts = partition_rows_by_bins(&m, 8);
        assert_eq!(parts.len(), 8);
        assert_disjoint_cover(&m, &parts);
        // all three rows land in the same bin, so they deal to the first
        // three devices and the rest own nothing
        assert!(parts.iter().filter(|p| p.rows.is_empty()).count() >= 5);
        for p in parts.iter().filter(|p| p.rows.is_empty()) {
            assert_eq!(p.nnz, 0);
        }
    }

    #[test]
    fn empty_bins_and_empty_rows_are_handled() {
        // rows: one empty, one tiny, one huge — most bins in between are
        // empty, and the empty row must still be owned by some device
        let mut t = sparse_formats::TripletMatrix::<f64>::new(3, 3000);
        t.push(1, 0, 1.0).unwrap();
        for cidx in 0..2500u32 {
            t.push(2, cidx as usize, 1.0).unwrap();
        }
        let m = t.to_csr();
        let parts = partition_rows_by_bins(&m, 2);
        assert_disjoint_cover(&m, &parts);
    }

    #[test]
    fn single_row_bins_are_dealt_deterministically() {
        // a geometric degree ladder puts exactly one row in each bin, so
        // every bin's single row deals to device 0
        let mut t = sparse_formats::TripletMatrix::<f64>::new(5, 64);
        for (row, len) in [(0usize, 1usize), (1, 3), (2, 6), (3, 12), (4, 24)] {
            for cidx in 0..len {
                t.push(row, cidx, 1.0).unwrap();
            }
        }
        let m = t.to_csr();
        let parts = partition_rows_by_bins(&m, 2);
        assert_disjoint_cover(&m, &parts);
        assert_eq!(parts[0].rows, vec![0, 1, 2, 3, 4]);
        assert!(parts[1].rows.is_empty());
    }

    #[test]
    fn zero_row_matrix_yields_empty_partitions() {
        let m = sparse_formats::TripletMatrix::<f64>::new(0, 10).to_csr();
        let parts = partition_rows_by_bins(&m, 3);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.rows.is_empty() && p.nnz == 0));
    }
}
