//! Modeled interconnect links and the event-scheduled exchange phase.
//!
//! A fleet SpMV ends with an **exchange**: every shard ships the `x`
//! entries its peers will need for the next iterate (owner-computes
//! halo exchange), and the legacy replicated-`x` executor ships each
//! device's completion hand-off to the host. Both are expressed as a
//! set of directed [`EdgeSpec`]s — `src` device, `dst` device (or the
//! host sink), payload bytes, and the instant the payload is *ready*
//! (the producing device's compute finish) — and scheduled on the
//! shared [`EventQueue`] from `gpu-sim`'s discrete-event core.
//!
//! The link discipline matches a DMA-engine interconnect: each node has
//! one egress engine and one ingress engine, both FIFO, so transfers
//! from one source serialize, fan-in to one destination serializes, and
//! everything else overlaps. An edge whose payload is ready while the
//! slowest device still computes therefore *hides* under compute — the
//! overlap the flat `sync_overhead_s` model could not express.
//!
//! Determinism: edges are assigned FIFO priorities by `(ready, src,
//! dst, index)` before scheduling, and each frontier is re-sorted into
//! ascending priority regardless of the global [`gpu_sim::TieBreak`]
//! knob, so the schedule is a pure function of the edge list — bit-
//! identical across host worker widths and tie-break orders.

use gpu_sim::event::{CompId, EventQueue};

/// One interconnect class: bandwidth plus a per-transfer setup latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Payload bandwidth, GB/s (1e9 bytes per second).
    pub bandwidth_gbs: f64,
    /// Per-transfer latency (DMA descriptor setup + signaling), seconds.
    pub latency_s: f64,
}

impl LinkModel {
    /// PCIe-class peer-to-peer over a board switch (the K10-era
    /// baseline: both GPUs of one board behind one PCIe switch).
    pub fn pcie() -> LinkModel {
        LinkModel {
            bandwidth_gbs: 12.0,
            latency_s: 8e-6,
        }
    }

    /// NVLink-class point-to-point mesh.
    pub fn nvlink() -> LinkModel {
        LinkModel {
            bandwidth_gbs: 40.0,
            latency_s: 2e-6,
        }
    }

    /// A pure-latency link (used for zero-byte completion hand-offs).
    pub fn signal(latency_s: f64) -> LinkModel {
        LinkModel {
            bandwidth_gbs: 1.0,
            latency_s,
        }
    }

    /// Modeled seconds to move `bytes` over this link.
    pub fn seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / (self.bandwidth_gbs * 1e9)
    }
}

/// One directed transfer request handed to [`schedule_exchange`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeSpec {
    /// Producing device.
    pub src: usize,
    /// Receiving node: a device index, or `n_devices` for the host sink.
    pub dst: usize,
    /// Vector entries carried (diagnostics; bytes drive the model).
    pub entries: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Instant the payload becomes available on `src`, nanoseconds.
    pub ready_ns: u64,
}

/// One scheduled transfer of a finished exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeTransfer {
    /// Producing device.
    pub src: usize,
    /// Receiving node (`n_devices` = host sink).
    pub dst: usize,
    /// Vector entries carried.
    pub entries: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Scheduled start, nanoseconds on the fleet clock.
    pub start_ns: u64,
    /// Completion, nanoseconds on the fleet clock.
    pub done_ns: u64,
}

impl EdgeTransfer {
    /// Modeled transfer duration, seconds.
    pub fn dur_s(&self) -> f64 {
        (self.done_ns - self.start_ns) as f64 * 1e-9
    }
}

/// The scheduled exchange phase of one fleet SpMV.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExchangeReport {
    /// Devices participating (the host sink is node `n_devices`).
    pub n_devices: usize,
    /// Every transfer, in FIFO-priority order.
    pub transfers: Vec<EdgeTransfer>,
    /// Bytes leaving each device.
    pub send_bytes: Vec<u64>,
    /// Bytes landing on each device (host-sink bytes excluded).
    pub recv_bytes: Vec<u64>,
    /// Completion of the last transfer, nanoseconds (0 when none).
    pub end_ns: u64,
}

impl ExchangeReport {
    /// An empty exchange (single device: nothing to ship).
    pub fn empty(n_devices: usize) -> ExchangeReport {
        ExchangeReport {
            n_devices,
            transfers: Vec::new(),
            send_bytes: vec![0; n_devices],
            recv_bytes: vec![0; n_devices],
            end_ns: 0,
        }
    }

    /// Completion of the last transfer, seconds (0.0 when none).
    pub fn end_s(&self) -> f64 {
        self.end_ns as f64 * 1e-9
    }

    /// Total payload bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Seconds the exchange extends past `compute_s` (the makespan of
    /// the compute phase): 0.0 when every transfer hid under compute.
    pub fn tail_s(&self, compute_s: f64) -> f64 {
        (self.end_s() - compute_s).max(0.0)
    }
}

/// Nanoseconds on the fleet clock for a wall-clock duration.
pub fn ns(seconds: f64) -> u64 {
    (seconds * 1e9).round() as u64
}

/// Schedule `edges` over `n_devices` devices plus the host sink (node
/// `n_devices`), FIFO per egress and ingress engine, earliest-ready
/// first (ties by `(src, dst, index)`). Returns the full schedule; see
/// the module docs for the discipline and determinism argument.
pub fn schedule_exchange(n_devices: usize, edges: &[EdgeSpec], link: &LinkModel) -> ExchangeReport {
    let mut report = ExchangeReport::empty(n_devices);
    if edges.is_empty() {
        return report;
    }
    // FIFO priority: ready time, then source, destination, index.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by_key(|&i| (edges[i].ready_ns, edges[i].src, edges[i].dst, i));

    let nodes = n_devices + 1;
    let mut egress_free = vec![0u64; nodes];
    let mut ingress_free = vec![0u64; nodes];
    let mut scheduled: Vec<Option<EdgeTransfer>> = vec![None; edges.len()];
    let mut queue = EventQueue::new();
    for (prio, &i) in order.iter().enumerate() {
        assert!(edges[i].src < n_devices, "edge source must be a device");
        assert!(edges[i].dst < nodes, "edge destination out of range");
        assert_ne!(edges[i].src, edges[i].dst, "self-edge in exchange");
        queue.schedule(edges[i].ready_ns, prio as CompId);
    }
    let mut frontier: Vec<CompId> = Vec::new();
    while let Some(now) = queue.pop_frontier(&mut frontier) {
        // Canonical priority order, independent of the tie-break knob.
        frontier.sort_unstable();
        for &prio in &frontier {
            let e = &edges[order[prio as usize]];
            let free = egress_free[e.src].max(ingress_free[e.dst]);
            if free > now {
                // An engine is busy: retry the instant it frees.
                queue.schedule(free, prio);
                continue;
            }
            let done = now + ns(link.seconds(e.bytes));
            egress_free[e.src] = done;
            ingress_free[e.dst] = done;
            scheduled[prio as usize] = Some(EdgeTransfer {
                src: e.src,
                dst: e.dst,
                entries: e.entries,
                bytes: e.bytes,
                start_ns: now,
                done_ns: done,
            });
        }
    }
    for t in scheduled.into_iter().flatten() {
        report.send_bytes[t.src] += t.bytes;
        if t.dst < n_devices {
            report.recv_bytes[t.dst] += t.bytes;
        }
        report.end_ns = report.end_ns.max(t.done_ns);
        report.transfers.push(t);
    }
    assert_eq!(
        report.transfers.len(),
        edges.len(),
        "every exchange edge must be scheduled"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: usize, dst: usize, bytes: u64, ready_ns: u64) -> EdgeSpec {
        EdgeSpec {
            src,
            dst,
            entries: bytes as usize / 8,
            bytes,
            ready_ns,
        }
    }

    #[test]
    fn independent_pairs_overlap_fully() {
        // 0→1 and 2→3 share no engine: both run at their ready times.
        let link = LinkModel {
            bandwidth_gbs: 10.0,
            latency_s: 0.0,
        };
        let rep = schedule_exchange(4, &[edge(0, 1, 1000, 0), edge(2, 3, 1000, 0)], &link);
        assert_eq!(rep.transfers[0].start_ns, 0);
        assert_eq!(rep.transfers[1].start_ns, 0);
        assert_eq!(rep.end_ns, 100); // 1000 B at 10 GB/s = 100 ns
        assert_eq!(rep.send_bytes, vec![1000, 0, 1000, 0]);
        assert_eq!(rep.recv_bytes, vec![0, 1000, 0, 1000]);
    }

    #[test]
    fn shared_ingress_serializes_fifo() {
        // Both edges target device 2: fan-in serializes in ready order.
        let link = LinkModel {
            bandwidth_gbs: 1.0,
            latency_s: 0.0,
        };
        let rep = schedule_exchange(3, &[edge(1, 2, 100, 5), edge(0, 2, 100, 0)], &link);
        let by_src = |s: usize| rep.transfers.iter().find(|t| t.src == s).unwrap();
        assert_eq!(by_src(0).start_ns, 0);
        assert_eq!(by_src(0).done_ns, 100);
        assert_eq!(by_src(1).start_ns, 100, "later-ready edge waits its turn");
        assert_eq!(rep.end_ns, 200);
    }

    #[test]
    fn early_transfers_hide_under_compute() {
        // A transfer ready at 10 ns finishing at 110 ns hides entirely
        // under a compute phase that ends at 500 ns.
        let link = LinkModel {
            bandwidth_gbs: 1.0,
            latency_s: 0.0,
        };
        let rep = schedule_exchange(2, &[edge(0, 1, 100, 10)], &link);
        assert_eq!(rep.end_ns, 110);
        assert_eq!(rep.tail_s(500e-9), 0.0);
        assert!(rep.tail_s(50e-9) > 0.0);
    }

    #[test]
    fn host_sink_serializes_handoffs() {
        // Zero-byte completion hand-offs to the host sink (node D)
        // serialize on the host ingress engine.
        let link = LinkModel::signal(10e-9);
        let rep = schedule_exchange(2, &[edge(0, 2, 0, 100), edge(1, 2, 0, 0)], &link);
        let by_src = |s: usize| rep.transfers.iter().find(|t| t.src == s).unwrap();
        assert_eq!(by_src(1).start_ns, 0);
        assert_eq!(by_src(1).done_ns, 10);
        assert_eq!(by_src(0).start_ns, 100, "ready later, host already free");
        assert_eq!(rep.end_ns, 110);
        assert_eq!(
            rep.recv_bytes,
            vec![0, 0],
            "host bytes are not device bytes"
        );
    }

    #[test]
    fn schedule_is_independent_of_tie_break_order() {
        let link = LinkModel {
            bandwidth_gbs: 2.0,
            latency_s: 1e-9,
        };
        let edges: Vec<EdgeSpec> = (0..4)
            .flat_map(|s| {
                (0..4)
                    .filter(move |&d| d != s)
                    .map(move |d| edge(s, d, 64 * (s as u64 + 1), (d as u64) * 3))
            })
            .collect();
        let a = schedule_exchange(4, &edges, &link);
        gpu_sim::set_tie_break(gpu_sim::TieBreak::Descending);
        let b = schedule_exchange(4, &edges, &link);
        gpu_sim::set_tie_break(gpu_sim::TieBreak::Ascending);
        assert_eq!(a, b, "exchange schedule must not depend on the knob");
    }

    #[test]
    fn empty_exchange_is_empty() {
        let rep = schedule_exchange(3, &[], &LinkModel::pcie());
        assert_eq!(rep.end_ns, 0);
        assert_eq!(rep.end_s(), 0.0);
        assert_eq!(rep.total_bytes(), 0);
        assert!(rep.transfers.is_empty());
    }
}
