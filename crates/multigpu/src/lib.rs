//! # multi-gpu — dividing ACSR work among multiple GPUs (paper §VIII)
//!
//! "The partitioning algorithm for ACSR is a simple division of each bin
//! among GPUs. For two GPUs, we simply map half of the rows in each bin
//! to each device... Such a partitioning approach can be used with any
//! number of GPUs."
//!
//! Each device receives the row *slice* it owns (re-packed as a local CSR
//! with a row map back to global indices) plus the full `x` vector; after
//! both devices finish, their disjoint halves of `y` are concatenated.
//! Total SpMV time is the slowest device plus a synchronization cost —
//! which is why the paper's small matrices (ENR, INT, ...) fail to scale:
//! their per-device work no longer covers launch/sync floors.
//!
//! The K10 lacks dynamic parallelism, so (as in the paper) the per-device
//! engines run ACSR's §VIII static long-tail configuration.
//!
//! Beyond the paper's replicated-`x` setup, [`Fleet`] scales the same
//! sharding to N devices with resident shards: explicit event-scheduled
//! halo exchange over modeled interconnect links ([`halo`]), hot-row
//! replication ([`ReplicationPolicy`]), and per-shard format selection
//! ([`ShardFormat::Adaptive`]).

pub mod fleet;
pub mod halo;
mod partition;

pub use fleet::{record_fleet_metrics, Fleet, FleetConfig, FleetReport, ShardFormat};
pub use halo::{schedule_exchange, EdgeSpec, EdgeTransfer, ExchangeReport, LinkModel};
pub use partition::{
    partition_fleet, partition_rows_by_bins, BinPartition, FleetPartition, ReplicationPolicy,
    ShardPlan,
};

use acsr::AcsrConfig;
use gpu_sim::trace::TraceLedger;
use gpu_sim::{Device, DeviceConfig, RunReport};
use sparse_formats::{CsrMatrix, Scalar};
use spmv_kernels::GpuSpmv;
use spmv_pipeline::{AcsrPlanner, PlanBudget, SpmvPlan, SpmvPlanner};
use std::sync::Arc;

/// A multi-device SpMV executor: one [`SpmvPlan`] per device, built
/// from a single row partition by any registry planner (ACSR by
/// default, per the paper's §VIII setup).
pub struct MultiGpuAcsr<T: Scalar> {
    devices: Vec<Device>,
    plans: Vec<SpmvPlan<T>>,
    /// `row_maps[d][local_row] = global_row`.
    row_maps: Vec<Vec<u32>>,
    rows: usize,
    cols: usize,
    nnz: usize,
    /// Per-device completion hand-off cost (the device's end-of-SpMV
    /// barrier signal, processed serially by the host), seconds. The
    /// old model charged one flat `sync_overhead_s = 20 µs` after the
    /// slowest device; two balanced devices at 10 µs each reproduce it,
    /// but an early finisher's hand-off now *overlaps* the slow
    /// device's compute instead of being re-charged after it.
    pub handshake_s: f64,
}

/// Per-device and combined timing of one multi-GPU SpMV: the concurrent
/// compute phase plus the event-scheduled sync/hand-off exchange.
#[derive(Clone, Debug)]
pub struct MultiReport {
    /// One report per device (they run concurrently).
    pub per_device: Vec<RunReport>,
    /// The scheduled end-of-SpMV hand-off phase: one zero-byte signal
    /// per device to the host sink, ready at that device's own finish,
    /// serialized on the host ingress engine ([`halo`]).
    pub exchange: ExchangeReport,
}

impl MultiReport {
    /// Compute-phase makespan (slowest device, no sync).
    pub fn compute_s(&self) -> f64 {
        self.per_device.iter().map(|r| r.time_s).fold(0.0, f64::max)
    }

    /// Modeled wall time: the compute makespan or the last hand-off's
    /// completion, whichever lands later. A device that finished early
    /// completes its hand-off under the slowest device's compute — the
    /// overlap the old flat `max + sync` model double-charged.
    pub fn seconds(&self) -> f64 {
        self.compute_s().max(self.exchange.end_s())
    }

    /// Seconds of sync/hand-off exposed past compute (0.0 when hidden).
    pub fn sync_tail_s(&self) -> f64 {
        self.exchange.tail_s(self.compute_s())
    }

    /// GFLOP/s for `flops` useful operations.
    pub fn gflops(&self, flops: u64) -> f64 {
        flops as f64 / self.seconds() / 1e9
    }
}

impl<T: Scalar> MultiGpuAcsr<T> {
    /// Partition `m` across `n_devices` copies of `device_cfg`, using the
    /// given per-device ACSR configuration (§VIII uses
    /// [`AcsrConfig::static_long_tail`] on the K10).
    pub fn new(
        m: &CsrMatrix<T>,
        device_cfg: &DeviceConfig,
        n_devices: usize,
        acsr_cfg: AcsrConfig,
    ) -> Self {
        Self::with_planner(
            m,
            device_cfg,
            n_devices,
            &AcsrPlanner::with_config(acsr_cfg),
        )
    }

    /// Same partitioning, any registry format: the single analysis pass
    /// ([`partition_rows_by_bins`]) feeds `planner` once per device, so
    /// every device gets a plan for exactly the row slice it owns.
    pub fn with_planner(
        m: &CsrMatrix<T>,
        device_cfg: &DeviceConfig,
        n_devices: usize,
        planner: &dyn SpmvPlanner<T>,
    ) -> Self {
        assert!(n_devices >= 1, "need at least one device");
        let parts = partition_rows_by_bins(m, n_devices);
        let mut devices = Vec::with_capacity(n_devices);
        let mut plans = Vec::with_capacity(n_devices);
        let mut row_maps = Vec::with_capacity(n_devices);
        for part in parts {
            // Tag each device with its index so trace spans (and the
            // chrome exporter's process lanes) distinguish the devices.
            let mut cfg = device_cfg.clone();
            if n_devices > 1 {
                cfg.name = format!("{} #{}", cfg.name, part.device);
            }
            let dev = Device::new(cfg);
            let sub = extract_rows(m, &part.rows);
            let budget = PlanBudget::for_device(dev.config());
            plans.push(
                planner
                    .plan(&dev, &sub, &budget)
                    .expect("per-device plan must fit the device"),
            );
            devices.push(dev);
            row_maps.push(part.rows);
        }
        MultiGpuAcsr {
            devices,
            plans,
            row_maps,
            rows: m.rows(),
            cols: m.cols(),
            nnz: m.nnz(),
            handshake_s: 10e-6,
        }
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Global rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Global columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Per-device nnz share (load-balance diagnostics).
    pub fn device_nnz(&self) -> Vec<usize> {
        self.plans.iter().map(|p| p.nnz()).collect()
    }

    /// Device `d`.
    pub fn device(&self, d: usize) -> &Device {
        &self.devices[d]
    }

    /// The plan on device `d` (holds that device's row slice).
    pub fn plan(&self, d: usize) -> &SpmvPlan<T> {
        &self.plans[d]
    }

    /// `row_map(d)[local_row] = global_row` for device `d`.
    pub fn row_map(&self, d: usize) -> &[u32] {
        &self.row_maps[d]
    }

    /// Attach one shared trace ledger to every device and return it, so
    /// a subsequent [`Self::spmv`] records a device-tagged span timeline
    /// (one chrome-trace process lane per device).
    pub fn enable_tracing(&mut self) -> Arc<TraceLedger> {
        let ledger = Arc::new(TraceLedger::new());
        for dev in &mut self.devices {
            dev.attach_ledger(ledger.clone());
        }
        ledger
    }

    /// Run `y = A * x` across all devices; `y` must have `rows` slots.
    pub fn spmv(&self, x: &[T], y: &mut [T]) -> MultiReport {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(y.len(), self.rows, "y length mismatch");
        let n = self.devices.len();
        let mut per_device = Vec::with_capacity(n);
        for (d, plan) in self.plans.iter().enumerate() {
            let dev = &self.devices[d];
            // each device holds a full copy of x (as on the K10)
            let xd = dev.alloc(x.to_vec());
            let yd = dev.alloc_zeroed::<T>(plan.rows());
            per_device.push(plan.spmv(dev, &xd, &yd));
            for (local, &global) in self.row_maps[d].iter().enumerate() {
                y[global as usize] = yd.as_slice()[local];
            }
        }
        // End-of-SpMV synchronization as an exchange: each device's
        // zero-byte completion signal, ready at its own finish, lands on
        // the host sink (node `n`) whose ingress serializes them. A
        // single device needs no barrier at all.
        let exchange = if n > 1 {
            let edges: Vec<halo::EdgeSpec> = per_device
                .iter()
                .enumerate()
                .map(|(d, rep)| halo::EdgeSpec {
                    src: d,
                    dst: n,
                    entries: 0,
                    bytes: 0,
                    ready_ns: halo::ns(rep.time_s),
                })
                .collect();
            schedule_exchange(n, &edges, &LinkModel::signal(self.handshake_s))
        } else {
            ExchangeReport::empty(n)
        };
        MultiReport {
            per_device,
            exchange,
        }
    }
}

/// Record per-device utilization gauges into `metrics` from a set of
/// accumulated device reports and the run's wall time (the makespan or
/// [`MultiReport::seconds`]): `<prefix>.<d>.busy_s` (modeled device
/// time), `<prefix>.<d>.idle_s` (wall minus busy, clamped at 0), and
/// `<prefix>.<d>.utilization` (busy over wall; 0 when the wall is
/// empty). One shared helper so serve and the multi-GPU experiments
/// publish identical device gauges.
pub fn record_device_gauges(
    metrics: &acsr_telemetry::MetricsRegistry,
    prefix: &str,
    reports: &[RunReport],
    wall_s: f64,
) {
    for (d, rep) in reports.iter().enumerate() {
        let busy = rep.time_s;
        metrics.set_gauge(&format!("{prefix}.{d}.busy_s"), busy);
        metrics.set_gauge(&format!("{prefix}.{d}.idle_s"), (wall_s - busy).max(0.0));
        let util = if wall_s > 0.0 { busy / wall_s } else { 0.0 };
        metrics.set_gauge(&format!("{prefix}.{d}.utilization"), util);
    }
}

/// Extract the listed rows of `m` into a compact sub-matrix (row order
/// preserved; columns untouched). Public so other multi-device executors
/// (the serving scheduler) can build per-device sub-matrices from a
/// [`partition_rows_by_bins`] split.
pub fn extract_rows<T: Scalar>(m: &CsrMatrix<T>, rows: &[u32]) -> CsrMatrix<T> {
    let mut offsets = Vec::with_capacity(rows.len() + 1);
    offsets.push(0u32);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for &r in rows {
        let (rc, rv) = m.row(r as usize);
        cols.extend_from_slice(rc);
        vals.extend_from_slice(rv);
        offsets.push(cols.len() as u32);
    }
    CsrMatrix::from_raw_parts(rows.len(), m.cols(), offsets, cols, vals)
        .expect("extracted rows preserve CSR invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn matrix(rows: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 10.0,
            max_degree: 1500,
            pinned_max_rows: 2,
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn dual_gpu_result_matches_reference() {
        let m = matrix(4000, 171);
        let mg = MultiGpuAcsr::new(
            &m,
            &presets::tesla_k10_single(),
            2,
            AcsrConfig::static_long_tail(),
        );
        let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
        let mut y = vec![0.0; m.rows()];
        let rep = mg.spmv(&x, &mut y);
        let d = sparse_formats::scalar::rel_l2_distance(&y, &m.spmv(&x));
        assert!(d < 1e-12, "rel distance {d}");
        assert_eq!(rep.per_device.len(), 2);
        assert!(rep.seconds() > 0.0);
    }

    #[test]
    fn work_is_split_roughly_in_half() {
        let m = matrix(6000, 172);
        let mg = MultiGpuAcsr::new(
            &m,
            &presets::tesla_k10_single(),
            2,
            AcsrConfig::static_long_tail(),
        );
        let shares = mg.device_nnz();
        let ratio = shares[0] as f64 / shares[1] as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "nnz split {shares:?} (ratio {ratio})"
        );
    }

    #[test]
    fn large_matrix_scales_small_matrix_does_not() {
        let big = matrix(60_000, 173);
        let small = matrix(2048, 174);
        let speedup = |m: &CsrMatrix<f64>| {
            let x: Vec<f64> = (0..m.cols()).map(|_| 1.0).collect();
            let mut y = vec![0.0; m.rows()];
            let one = MultiGpuAcsr::new(
                m,
                &presets::tesla_k10_single(),
                1,
                AcsrConfig::static_long_tail(),
            );
            let t1 = one.spmv(&x, &mut y).seconds();
            let two = MultiGpuAcsr::new(
                m,
                &presets::tesla_k10_single(),
                2,
                AcsrConfig::static_long_tail(),
            );
            let t2 = two.spmv(&x, &mut y).seconds();
            t1 / t2
        };
        let s_big = speedup(&big);
        let s_small = speedup(&small);
        assert!(s_big > 1.4, "big-matrix speedup {s_big}");
        assert!(
            s_small < s_big,
            "small {s_small} should scale worse than big {s_big}"
        );
    }

    #[test]
    fn any_planner_splits_and_matches_reference() {
        let m = matrix(3000, 177);
        let x: Vec<f64> = (0..m.cols()).map(|i| 0.5 + (i % 5) as f64).collect();
        let want = m.spmv(&x);
        for planner in [
            &spmv_pipeline::HybPlanner as &dyn SpmvPlanner<f64>,
            &spmv_pipeline::CsrVectorPlanner,
        ] {
            let mg = MultiGpuAcsr::with_planner(&m, &presets::tesla_k10_single(), 2, planner);
            let mut y = vec![0.0; m.rows()];
            let rep = mg.spmv(&x, &mut y);
            let name = <dyn SpmvPlanner<f64>>::name(planner);
            let d = sparse_formats::scalar::rel_l2_distance(&y, &want);
            assert!(d < 1e-12, "{name}: rel distance {d}");
            assert_eq!(rep.per_device.len(), 2, "{name}");
        }
    }

    #[test]
    fn four_devices_partition_correctly() {
        let m = matrix(3000, 175);
        let mg = MultiGpuAcsr::new(
            &m,
            &presets::tesla_k10_single(),
            4,
            AcsrConfig::static_long_tail(),
        );
        assert_eq!(mg.n_devices(), 4);
        let x: Vec<f64> = (0..m.cols()).map(|i| (i % 3) as f64 + 0.5).collect();
        let mut y = vec![0.0; m.rows()];
        mg.spmv(&x, &mut y);
        let d = sparse_formats::scalar::rel_l2_distance(&y, &m.spmv(&x));
        assert!(d < 1e-12);
    }

    #[test]
    fn device_gauges_report_busy_idle_utilization() {
        let metrics = acsr_telemetry::MetricsRegistry::new();
        let fast = RunReport {
            time_s: 0.25,
            ..Default::default()
        };
        let slow = RunReport {
            time_s: 1.0,
            ..Default::default()
        };
        record_device_gauges(&metrics, "mg.device", &[fast, slow], 1.0);
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("mg.device.0.busy_s"), Some(0.25));
        assert_eq!(snap.gauge("mg.device.0.idle_s"), Some(0.75));
        assert_eq!(snap.gauge("mg.device.0.utilization"), Some(0.25));
        assert_eq!(snap.gauge("mg.device.1.utilization"), Some(1.0));
        assert_eq!(snap.gauge("mg.device.1.idle_s"), Some(0.0));
        // degenerate wall never divides by zero
        record_device_gauges(&metrics, "mg.device", &[RunReport::default()], 0.0);
        assert_eq!(
            metrics.snapshot().gauge("mg.device.0.utilization"),
            Some(0.0)
        );
    }

    #[test]
    fn single_device_has_no_sync_cost() {
        let m = matrix(2048, 176);
        let mg = MultiGpuAcsr::new(
            &m,
            &presets::tesla_k10_single(),
            1,
            AcsrConfig::static_long_tail(),
        );
        let x = vec![1.0f64; m.cols()];
        let mut y = vec![0.0; m.rows()];
        let rep = mg.spmv(&x, &mut y);
        assert!(rep.exchange.transfers.is_empty());
        assert_eq!(rep.sync_tail_s(), 0.0);
        assert_eq!(rep.seconds(), rep.compute_s());
    }

    /// The satellite regression: the per-phase breakdown of
    /// [`MultiReport::seconds`]. The old model charged the full sync
    /// after the *slowest* device even when a device had finished long
    /// before; now an early finisher's hand-off overlaps the slow
    /// device's compute.
    #[test]
    fn handoff_overlaps_slow_device_compute() {
        let handshake = 10e-6;
        let report = |t0: f64, t1: f64| {
            let per_device = vec![
                RunReport {
                    time_s: t0,
                    ..Default::default()
                },
                RunReport {
                    time_s: t1,
                    ..Default::default()
                },
            ];
            let edges: Vec<halo::EdgeSpec> = per_device
                .iter()
                .enumerate()
                .map(|(d, r)| halo::EdgeSpec {
                    src: d,
                    dst: 2,
                    entries: 0,
                    bytes: 0,
                    ready_ns: halo::ns(r.time_s),
                })
                .collect();
            MultiReport {
                per_device,
                exchange: schedule_exchange(2, &edges, &LinkModel::signal(handshake)),
            }
        };
        // Skewed finishes: device 1 (40 µs) hands off at 40→50 µs,
        // entirely under device 0's 100 µs of compute. Only device 0's
        // own hand-off extends the run: 110 µs, not the old 120 µs.
        let skewed = report(100e-6, 40e-6);
        assert_eq!(skewed.compute_s(), 100e-6);
        assert!(
            (skewed.seconds() - 110e-6).abs() < 1e-12,
            "{}",
            skewed.seconds()
        );
        assert!((skewed.sync_tail_s() - handshake).abs() < 1e-12);
        // Balanced finishes serialize both hand-offs on the host: the
        // old flat 20 µs charge is reproduced exactly.
        let balanced = report(100e-6, 100e-6);
        assert!(
            (balanced.seconds() - 120e-6).abs() < 1e-12,
            "{}",
            balanced.seconds()
        );
        assert!((balanced.sync_tail_s() - 2.0 * handshake).abs() < 1e-12);
        // And end to end: a dual-device run ships exactly one hand-off
        // per device to the host sink.
        let m = matrix(2048, 178);
        let mg = MultiGpuAcsr::new(
            &m,
            &presets::tesla_k10_single(),
            2,
            AcsrConfig::static_long_tail(),
        );
        let x = vec![1.0f64; m.cols()];
        let mut y = vec![0.0; m.rows()];
        let rep = mg.spmv(&x, &mut y);
        assert_eq!(rep.exchange.transfers.len(), 2);
        assert!(rep
            .exchange
            .transfers
            .iter()
            .all(|t| t.dst == 2 && t.bytes == 0));
        assert!(rep.seconds() >= rep.compute_s());
        assert!(
            rep.sync_tail_s() > 0.0,
            "hand-offs ready at finish always expose a tail"
        );
    }
}
