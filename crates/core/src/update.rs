//! Device-side incremental CSR updates (paper §VII).
//!
//! "A matrix update is defined by specifying the rows to be updated, and
//! for each row, which columns are to be added or deleted. This
//! information is copied to the device and a device kernel applies the
//! changes... we assign a warp to each row, but only the first thread of
//! the warp performs the update. This thread first deletes columns of the
//! delete list from the row, and compresses the row to fill up the
//! deleted spaces. Then it extends the row by adding columns from the
//! insert list. The kernel assumes the delete and insert column lists are
//! sorted."
//!
//! Rows whose merged length exceeds their slack capacity cannot be
//! updated in place; the engine falls back to a host-side rebuild with
//! fresh slack (charged as a full matrix re-upload), which the report
//! records so experiments can see when slack was insufficient.

use crate::engine::AcsrEngine;
use crate::matrix::AcsrMatrix;
use gpu_sim::{Device, RunReport, WARP};
use sparse_formats::{CsrMatrix, Scalar, UpdateBatch};

/// Outcome of one dynamic update.
#[derive(Debug)]
pub struct UpdateReport {
    /// Modeled device kernel time (delta application + re-binning scan).
    pub kernel: RunReport,
    /// Modeled PCIe time to ship the change lists (ACSR ships deltas, not
    /// the matrix — the Figure 7 advantage).
    pub copy_seconds: f64,
    /// Rows that outgrew their slack.
    pub overflowed_rows: usize,
    /// Whether a host-side rebuild (full re-upload) was required.
    pub rebuilt: bool,
    /// Live non-zeros after the update.
    pub nnz_after: usize,
}

impl<T: Scalar> AcsrEngine<T> {
    /// Apply a §VII update batch on the device, then re-bin.
    pub fn apply_update(&mut self, dev: &Device, batch: &UpdateBatch<T>) -> UpdateReport {
        batch
            .validate_for(self.matrix().rows(), self.matrix().cols())
            .expect("update batch must satisfy its structural invariants");
        // record_htod also emits a transfer span when tracing is on
        let mut copy_seconds = dev
            .record_htod("acsr_update_delta", batch.wire_bytes() as u64)
            .time_s;

        // Upload the change lists — the only data shipped to the device.
        let rows_d = dev.alloc(batch.rows.clone());
        let del_off_d = dev.alloc(batch.delete_offsets.clone());
        let del_cols_d = dev.alloc(batch.delete_cols.clone());
        let ins_off_d = dev.alloc(batch.insert_offsets.clone());
        let ins_cols_d = dev.alloc(batch.insert_cols.clone());
        let ins_vals_d = dev.alloc(batch.insert_vals.clone());

        let n = batch.rows.len();
        // Kernel-to-host feedback. The kernel closure is `Fn + Sync` (its
        // blocks may run on several host workers), so these are shared and
        // order-independent: overflow is consumed as a set, nnz_delta is an
        // integer sum — both deterministic at any worker count.
        let overflow: std::sync::Mutex<Vec<u32>> = std::sync::Mutex::new(Vec::new());
        let nnz_delta = std::sync::atomic::AtomicI64::new(0);

        let kernel = {
            let mat = self.matrix_mut();
            // Kernels read row_start/row_cap and write
            // row_len/col_indices/values through the buffers' interior
            // mutability (distinct rows — no overlapping elements).
            let row_start = &mat.row_start;
            let row_cap = &mat.row_cap;
            let row_len = &mat.row_len;
            let col_indices = &mat.col_indices;
            let values = &mat.values;

            let block = 256;
            let warps_per_block = block / WARP;
            let grid = n.div_ceil(warps_per_block).max(1);
            let overflow_ref = &overflow;
            let nnz_ref = &nnz_delta;
            dev.launch("acsr_update", grid, block, &|blk| {
                blk.for_each_warp(&mut |warp| {
                    let pos = warp.global_warp_id();
                    if pos >= n {
                        return;
                    }
                    const L0: u32 = 1; // only lane 0 works (paper §VII)
                    let row = warp.gather(&rows_d, &[pos; WARP], L0)[0] as usize;
                    let start = warp.gather(row_start, &[row; WARP], L0)[0] as usize;
                    let cap = warp.gather(row_cap, &[row; WARP], L0)[0] as usize;
                    let old_len = warp.gather(row_len, &[row; WARP], L0)[0] as usize;

                    // Read this row's delete / insert slices.
                    let dlo = warp.gather(&del_off_d, &[pos; WARP], L0)[0] as usize;
                    let dhi = warp.gather(&del_off_d, &[pos + 1; WARP], L0)[0] as usize;
                    let ilo = warp.gather(&ins_off_d, &[pos; WARP], L0)[0] as usize;
                    let ihi = warp.gather(&ins_off_d, &[pos + 1; WARP], L0)[0] as usize;

                    let mut dels = Vec::with_capacity(dhi - dlo);
                    for k in dlo..dhi {
                        dels.push(warp.gather(&del_cols_d, &[k; WARP], L0)[0]);
                    }
                    let mut ins: Vec<(u32, T)> = Vec::with_capacity(ihi - ilo);
                    for k in ilo..ihi {
                        let c = warp.gather(&ins_cols_d, &[k; WARP], L0)[0];
                        let v = warp.gather(&ins_vals_d, &[k; WARP], L0)[0];
                        ins.push((c, v));
                    }

                    // Pass 1: delete + compress (sorted-merge against the
                    // delete list), collecting survivors.
                    let mut merged: Vec<(u32, T)> = Vec::with_capacity(old_len + ins.len());
                    let mut d = 0usize;
                    for k in 0..old_len {
                        let c = warp.gather(col_indices, &[start + k; WARP], L0)[0];
                        let v = warp.gather(values, &[start + k; WARP], L0)[0];
                        while d < dels.len() && dels[d] < c {
                            d += 1;
                        }
                        warp.charge_alu(1);
                        if d < dels.len() && dels[d] == c {
                            continue; // deleted
                        }
                        merged.push((c, v));
                    }
                    // Pass 2: extend with the (sorted) insert list —
                    // a sorted merge; inserting an existing column
                    // overwrites its value, matching the host reference.
                    let survivors = merged;
                    let mut merged: Vec<(u32, T)> = Vec::with_capacity(survivors.len() + ins.len());
                    let (mut a, mut b) = (0usize, 0usize);
                    while a < survivors.len() || b < ins.len() {
                        warp.charge_alu(1);
                        if b >= ins.len() {
                            merged.push(survivors[a]);
                            a += 1;
                        } else if a >= survivors.len() {
                            merged.push(ins[b]);
                            b += 1;
                        } else if survivors[a].0 < ins[b].0 {
                            merged.push(survivors[a]);
                            a += 1;
                        } else if survivors[a].0 > ins[b].0 {
                            merged.push(ins[b]);
                            b += 1;
                        } else {
                            merged.push(ins[b]); // overwrite
                            a += 1;
                            b += 1;
                        }
                    }

                    if merged.len() > cap {
                        overflow_ref.lock().unwrap().push(row as u32);
                        return; // row untouched; host rebuild handles it
                    }
                    // Write back the compacted row.
                    for (k, (c, v)) in merged.iter().enumerate() {
                        warp.scatter(col_indices, &[start + k; WARP], &[*c; WARP], L0);
                        warp.scatter(values, &[start + k; WARP], &[*v; WARP], L0);
                    }
                    warp.scatter(row_len, &[row; WARP], &[merged.len() as u32; WARP], L0);
                    nnz_ref.fetch_add(
                        merged.len() as i64 - old_len as i64,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                });
            })
        };

        let mut overflow = overflow.into_inner().unwrap();
        overflow.sort_unstable();
        let nnz_delta = nnz_delta.into_inner();
        let new_nnz = (self.matrix().nnz() as i64 + nnz_delta) as usize;
        self.matrix_mut().set_nnz(new_nnz);

        let mut rebuilt = false;
        if !overflow.is_empty() {
            // Host-side fallback: merge the overflowed rows' updates into
            // a packed CSR and rebuild the device matrix with fresh slack.
            let sub = sub_batch(batch, &overflow);
            let rebuilt_csr = sub.apply_to_csr(&self.matrix().to_csr());
            copy_seconds += self.rebuild(dev, &rebuilt_csr);
            rebuilt = true;
        }
        self.rebin(dev);
        UpdateReport {
            kernel,
            copy_seconds,
            overflowed_rows: overflow.len(),
            rebuilt,
            nnz_after: self.matrix().nnz(),
        }
    }

    /// Replace the device matrix with `m` (fresh slack); returns the
    /// modeled upload time.
    pub fn rebuild(&mut self, dev: &Device, m: &CsrMatrix<T>) -> f64 {
        let cfg = *self.config();
        *self.matrix_mut() = AcsrMatrix::from_csr(dev, m, &cfg);
        self.rebin(dev);
        dev.record_htod("acsr_rebuild_upload", self.matrix().device_bytes())
            .time_s
    }
}

/// Restrict `batch` to the given rows (sorted subset).
fn sub_batch<T: Scalar>(batch: &UpdateBatch<T>, rows: &[u32]) -> UpdateBatch<T> {
    let keep: std::collections::HashSet<u32> = rows.iter().copied().collect();
    let mut out = UpdateBatch::empty();
    for (i, &r) in batch.rows.iter().enumerate() {
        if !keep.contains(&r) {
            continue;
        }
        let (del, ins, ivals) = batch.row_ops(i);
        out.rows.push(r);
        out.delete_cols.extend_from_slice(del);
        out.delete_offsets.push(out.delete_cols.len() as u32);
        out.insert_cols.extend_from_slice(ins);
        out.insert_vals.extend_from_slice(ivals);
        out.insert_offsets.push(out.insert_cols.len() as u32);
    }
    out
}

/// Host reference used by tests: applies the batch to a packed CSR.
pub fn reference_apply<T: Scalar>(m: &CsrMatrix<T>, batch: &UpdateBatch<T>) -> CsrMatrix<T> {
    batch.apply_to_csr(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcsrConfig;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, generate_update_batch, PowerLawConfig, UpdateConfig};

    fn matrix(rows: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 8.0,
            max_degree: 400,
            pinned_max_rows: 2,
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn device_update_matches_host_reference() {
        let m = matrix(2000, 111);
        let dev = Device::new(presets::gtx_titan());
        let mut engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        let batch = generate_update_batch(&m, &UpdateConfig::default());
        let want = reference_apply(&m, &batch);
        let report = engine.apply_update(&dev, &batch);
        let got = engine.matrix().to_csr();
        assert_eq!(got, want);
        assert_eq!(report.nnz_after, want.nnz());
        engine.matrix().validate().unwrap();
    }

    #[test]
    fn repeated_epochs_stay_consistent() {
        let m = matrix(1500, 112);
        let dev = Device::new(presets::gtx_titan());
        let mut engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        let mut host = m.clone();
        for epoch in 0..5u64 {
            let batch = generate_update_batch(
                &host,
                &UpdateConfig {
                    seed: 500 + epoch,
                    ..Default::default()
                },
            );
            host = reference_apply(&host, &batch);
            engine.apply_update(&dev, &batch);
            assert_eq!(engine.matrix().to_csr(), host, "epoch {epoch}");
        }
    }

    #[test]
    fn spmv_is_correct_after_updates() {
        use spmv_kernels::GpuSpmv;
        let m = matrix(1800, 113);
        let dev = Device::new(presets::gtx_titan());
        let mut engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        let batch = generate_update_batch(&m, &UpdateConfig::default());
        engine.apply_update(&dev, &batch);
        let updated = reference_apply(&m, &batch);
        let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 6) as f64 * 0.3).collect();
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        engine.spmv(&dev, &xd, &yd);
        let d = sparse_formats::scalar::rel_l2_distance(yd.as_slice(), &updated.spmv(&x));
        assert!(d < 1e-12, "rel distance {d}");
    }

    #[test]
    fn insert_heavy_update_overflows_and_rebuilds() {
        let m = matrix(800, 114);
        let dev = Device::new(presets::gtx_titan());
        let mut cfg = AcsrConfig::for_device(dev.config());
        cfg.slack_fraction = 0.0; // MIN_SLACK only: easy to overflow
        let mut engine = AcsrEngine::from_csr(&dev, &m, cfg);
        // insert 20 new columns into row 5
        let (rcols, _) = m.row(5);
        let mut ins: Vec<u32> = (0..800u32)
            .filter(|c| rcols.binary_search(c).is_err())
            .take(20)
            .collect();
        ins.sort_unstable();
        let batch = UpdateBatch {
            rows: vec![5],
            delete_offsets: vec![0, 0],
            delete_cols: vec![],
            insert_offsets: vec![0, ins.len() as u32],
            insert_vals: vec![1.5; ins.len()],
            insert_cols: ins,
        };
        let report = engine.apply_update(&dev, &batch);
        assert_eq!(report.overflowed_rows, 1);
        assert!(report.rebuilt);
        assert_eq!(engine.matrix().to_csr(), reference_apply(&m, &batch));
        engine.matrix().validate().unwrap();
    }

    #[test]
    fn delta_copy_is_much_cheaper_than_full_upload() {
        use spmv_kernels::GpuSpmv;
        let m = matrix(5000, 115);
        let dev = Device::new(presets::gtx_titan());
        let mut engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        let batch = generate_update_batch(&m, &UpdateConfig::default());
        let full_upload = dev.htod_seconds(engine.device_bytes());
        let report = engine.apply_update(&dev, &batch);
        assert!(
            report.copy_seconds * 3.0 < full_upload,
            "delta {} vs full {}",
            report.copy_seconds,
            full_upload
        );
    }

    #[test]
    fn rebinning_happens_after_update() {
        let m = matrix(1200, 116);
        let dev = Device::new(presets::gtx_titan());
        let mut engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        // delete every entry of row 0 (a pinned max row) — its bin changes
        let (rcols, _) = m.row(0);
        let batch = UpdateBatch {
            rows: vec![0],
            delete_offsets: vec![0, rcols.len() as u32],
            delete_cols: rcols.to_vec(),
            insert_offsets: vec![0, 0],
            insert_cols: vec![],
            insert_vals: vec![],
        };
        assert!(!engine.binning().bin_rows(0).contains(&0));
        engine.apply_update(&dev, &batch);
        assert_eq!(engine.matrix().to_csr().row_nnz(0), 0);
        // row 0 must have moved to the empty-rows bin after re-binning
        assert!(engine.binning().bin_rows(0).contains(&0));
    }
}
