//! Row binning — Algorithm 1's preprocessing step.
//!
//! One scan over the row lengths places each row in bin
//! `i ⇔ nnz ∈ [2^(i-1)+1 .. 2^i]` (bin 1 holds 1–2, bin 0 empty rows).
//! The scan is the *entire* preprocessing of ACSR — "very inexpensive and
//! does not require any movement and restructuring of the matrix data" —
//! and its cost is what Figure 4 compares against the other formats'
//! transformations.

use crate::config::AcsrConfig;
use sparse_formats::stats::{bin_index, bin_range};
use sparse_formats::PreprocessCost;

/// The result of binning: per-bin row lists plus the G1/G2 split.
#[derive(Clone, Debug, PartialEq)]
pub struct Binning {
    /// `bins[i]` = rows whose length falls in bin `i`. (Bin 0 — empty
    /// rows — is tracked but never launched; CSR semantics still zero
    /// those outputs via the dedicated fill pass when needed.)
    bins: Vec<Vec<u32>>,
    /// Rows handed to row-specific grids (group G1), in row order.
    g1_rows: Vec<u32>,
    /// Bin indices served by bin-specific kernels (group G2, non-empty
    /// bins only, ascending).
    g2_bins: Vec<usize>,
    /// Rows that belong to G1 bins but overflowed `RowMax` and fall back
    /// to the widest bin kernel.
    overflow_rows: Vec<u32>,
    /// Number of rows with at least one non-zero.
    nonempty_rows: usize,
}

/// Counters for the paper's Table V (BS = bin-specific grids, RS =
/// row-specific grids).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BinStats {
    /// Bin-specific grids launched per SpMV (Table V's "BS").
    pub bin_grids: usize,
    /// Row-specific grids launched per SpMV (Table V's "RS").
    pub row_grids: usize,
    /// Largest non-empty bin index (`n` in Algorithm 1).
    pub max_bin: usize,
    /// Rows that overflowed `RowMax`.
    pub overflow_rows: usize,
}

/// One row whose length class changed after an update: it leaves bin
/// `from` and joins bin `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowMove {
    pub row: u32,
    pub from: usize,
    pub to: usize,
}

impl Binning {
    /// Bin the rows described by `row_len` under `cfg`. Returns the
    /// binning plus its (tiny) preprocessing cost.
    pub fn build(
        row_len: impl ExactSizeIterator<Item = usize>,
        cfg: &AcsrConfig,
    ) -> (Binning, PreprocessCost) {
        let n_rows = row_len.len();
        let (binning, cost) = sparse_formats::cost::timed(|cost| {
            let mut bins: Vec<Vec<u32>> = Vec::new();
            let mut nonempty_rows = 0usize;
            for (r, len) in row_len.enumerate() {
                let b = bin_index(len);
                if b >= bins.len() {
                    bins.resize_with(b + 1, Vec::new);
                }
                bins[b].push(r as u32);
                if len > 0 {
                    nonempty_rows += 1;
                }
            }
            let (g1_rows, g2_bins, overflow_rows) = Self::split_groups(&bins, cfg);
            // scan reads the offsets array; writes one u32 per row —
            // additive, so costs accrued earlier in the closure survive
            cost.bytes_read += (n_rows as u64 + 1) * 4;
            cost.bytes_written += n_rows as u64 * 4;
            Binning {
                bins,
                g1_rows,
                g2_bins,
                overflow_rows,
                nonempty_rows,
            }
        });
        (binning, cost)
    }

    /// The G1/G2 split over a set of bins (shared between the full scan
    /// and the incremental patch so both produce identical groupings).
    fn split_groups(bins: &[Vec<u32>], cfg: &AcsrConfig) -> (Vec<u32>, Vec<usize>, Vec<u32>) {
        let bin_max = cfg.effective_bin_max();
        let mut g1_rows: Vec<u32> = Vec::new();
        let mut overflow_rows: Vec<u32> = Vec::new();
        let mut g2_bins: Vec<usize> = Vec::new();
        for (i, rows) in bins.iter().enumerate() {
            if rows.is_empty() || i == 0 {
                continue;
            }
            if i > bin_max {
                for &r in rows {
                    // RowMax bounds the number of dynamically launched
                    // grids (the pending-launch limit, §III-B)
                    if g1_rows.len() < cfg.row_max {
                        g1_rows.push(r);
                    } else {
                        overflow_rows.push(r);
                    }
                }
            } else {
                g2_bins.push(i);
            }
        }
        (g1_rows, g2_bins, overflow_rows)
    }

    /// Patch the binning after a batch of per-row bin changes instead of
    /// re-scanning every row. Equivalent to a full [`Binning::build`]
    /// over the post-update lengths (tests pin the equality), but the
    /// cost is proportional to the moved rows and the dirty bins'
    /// membership lists, not to the matrix — the amortization that turns
    /// re-binning from a global scan into per-bin bookkeeping.
    pub fn apply_moves(&mut self, moves: &[RowMove], cfg: &AcsrConfig) -> PreprocessCost {
        let ((), cost) = sparse_formats::cost::timed(|cost| {
            let mut dirty_len = 0u64;
            for mv in moves {
                debug_assert_ne!(mv.from, mv.to, "a move must change the bin");
                if mv.to >= self.bins.len() {
                    self.bins.resize_with(mv.to + 1, Vec::new);
                }
                let from = &mut self.bins[mv.from];
                let at = from
                    .binary_search(&mv.row)
                    .expect("moved row must be in its source bin");
                from.remove(at);
                let to = &mut self.bins[mv.to];
                let at = to
                    .binary_search(&mv.row)
                    .expect_err("moved row cannot already be in its target bin");
                to.insert(at, mv.row);
                if mv.from == 0 {
                    self.nonempty_rows += 1;
                }
                if mv.to == 0 {
                    self.nonempty_rows -= 1;
                }
                dirty_len += (self.bins[mv.from].len() + self.bins[mv.to].len()) as u64;
            }
            // a full build never materializes bins past the largest
            // occupied one; trim so the patched binning stays canonical
            while self.bins.last().is_some_and(|b| b.is_empty()) {
                self.bins.pop();
            }
            let (g1_rows, g2_bins, overflow_rows) = Self::split_groups(&self.bins, cfg);
            self.g1_rows = g1_rows;
            self.g2_bins = g2_bins;
            self.overflow_rows = overflow_rows;
            // reads the moved rows' (old, new) length pair; rewrites the
            // dirty bins' membership lists
            cost.bytes_read += moves.len() as u64 * 8;
            cost.bytes_written += dirty_len * 4;
        });
        cost
    }

    /// Rows of bin `i`.
    pub fn bin_rows(&self, i: usize) -> &[u32] {
        &self.bins[i]
    }

    /// Number of bins (including empty ones up to the max index).
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Bin indices served by bin-specific kernels (G2).
    pub fn g2_bins(&self) -> &[usize] {
        &self.g2_bins
    }

    /// Rows served by row-specific dynamic grids (G1), `RowMax`-capped.
    pub fn g1_rows(&self) -> &[u32] {
        &self.g1_rows
    }

    /// G1-bin rows that overflowed `RowMax` (fall back to the widest bin
    /// kernel).
    pub fn overflow_rows(&self) -> &[u32] {
        &self.overflow_rows
    }

    /// Rows with at least one stored entry.
    pub fn nonempty_rows(&self) -> usize {
        self.nonempty_rows
    }

    /// Table V statistics.
    pub fn stats(&self) -> BinStats {
        BinStats {
            bin_grids: self.g2_bins.len() + usize::from(!self.overflow_rows.is_empty()),
            row_grids: self.g1_rows.len(),
            max_bin: self.bins.iter().rposition(|b| !b.is_empty()).unwrap_or(0),
            overflow_rows: self.overflow_rows.len(),
        }
    }

    /// The thread-group width for bin `i`'s kernel: `2^(i-1)` capped at a
    /// warp (Algorithm 2: "2^{N-1} threads work on each row ... if a bin
    /// contains rows in [33..64], then 32 cooperating threads").
    pub fn group_for_bin(i: usize) -> usize {
        debug_assert!(i >= 1);
        1usize << (i - 1).min(5)
    }

    /// Inclusive row-length range of bin `i` (re-exported helper).
    pub fn range_of_bin(i: usize) -> (usize, usize) {
        bin_range(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcsrMode;
    use gpu_sim::presets;

    fn titan_cfg() -> AcsrConfig {
        AcsrConfig::for_device(&presets::gtx_titan())
    }

    #[test]
    fn rows_land_in_correct_bins() {
        let lens = [0usize, 1, 2, 3, 4, 5, 8, 9, 1024, 1025, 5000];
        let (b, _) = Binning::build(lens.iter().copied(), &titan_cfg());
        assert_eq!(b.bin_rows(0), &[0]);
        assert_eq!(b.bin_rows(1), &[1, 2]);
        assert_eq!(b.bin_rows(2), &[3, 4]);
        assert_eq!(b.bin_rows(3), &[5, 6]);
        assert_eq!(b.bin_rows(4), &[7]);
        assert_eq!(b.bin_rows(10), &[8]);
        assert_eq!(b.bin_rows(11), &[9]);
        assert_eq!(b.bin_rows(13), &[10]);
    }

    #[test]
    fn g1_g2_split_respects_bin_max() {
        let lens = [2usize, 100, 2000, 4000, 3];
        let cfg = titan_cfg(); // bin_max = 10 → rows > 1024 nnz go to G1
        let (b, _) = Binning::build(lens.iter().copied(), &cfg);
        assert_eq!(b.g1_rows(), &[2, 3]);
        assert!(b.g2_bins().contains(&1)); // lens 2 and 3
        assert!(b.g2_bins().contains(&7)); // len 100
        assert!(b.overflow_rows().is_empty());
    }

    #[test]
    fn binning_only_mode_has_empty_g1() {
        let lens = [2usize, 100, 2000, 50_000];
        let cfg = AcsrConfig::for_device(&presets::gtx_580());
        assert_eq!(cfg.mode, AcsrMode::BinningOnly);
        let (b, _) = Binning::build(lens.iter().copied(), &cfg);
        assert!(b.g1_rows().is_empty());
        assert_eq!(b.g2_bins().len(), 4);
    }

    #[test]
    fn row_max_caps_dynamic_grids() {
        let lens: Vec<usize> = (0..100).map(|_| 5000usize).collect();
        let mut cfg = titan_cfg();
        cfg.row_max = 10;
        let (b, _) = Binning::build(lens.iter().copied(), &cfg);
        assert_eq!(b.g1_rows().len(), 10);
        assert_eq!(b.overflow_rows().len(), 90);
        let stats = b.stats();
        assert_eq!(stats.row_grids, 10);
        assert_eq!(stats.overflow_rows, 90);
        // overflow rows imply one extra (fallback) bin grid
        assert_eq!(stats.bin_grids, 1);
    }

    #[test]
    fn stats_count_grids_like_table_v() {
        let lens = [1usize, 3, 9, 40, 2000, 2, 3000];
        let (b, _) = Binning::build(lens.iter().copied(), &titan_cfg());
        let s = b.stats();
        assert_eq!(s.bin_grids, 4); // bins 1, 2, 4, 6
        assert_eq!(s.row_grids, 2); // the two >1024 rows
        assert_eq!(s.max_bin, 12);
    }

    #[test]
    fn group_widths_match_paper_examples() {
        assert_eq!(Binning::group_for_bin(1), 1); // rows of 1-2 nnz
        assert_eq!(Binning::group_for_bin(2), 2); // 3-4
        assert_eq!(Binning::group_for_bin(3), 4); // 5-8
        assert_eq!(Binning::group_for_bin(6), 32); // 33-64
        assert_eq!(Binning::group_for_bin(12), 32); // capped at a warp
    }

    #[test]
    fn preprocessing_cost_is_one_scan() {
        let lens: Vec<usize> = (0..10_000).map(|i| i % 50).collect();
        let (_, cost) = Binning::build(lens.iter().copied(), &titan_cfg());
        // strictly linear in rows, no sort, no data movement
        assert_eq!(cost.sorted_elements, 0);
        assert_eq!(cost.bytes_read, 10_001 * 4);
        assert_eq!(cost.bytes_written, 10_000 * 4);
    }

    #[test]
    fn apply_moves_matches_full_rebuild() {
        let mut lens: Vec<usize> = (0..4000).map(|i| (i * 37) % 1500).collect();
        let cfg = titan_cfg();
        let (mut b, _) = Binning::build(lens.iter().copied(), &cfg);
        let mut moves = Vec::new();
        for r in (0..lens.len()).step_by(17) {
            let new_len = (lens[r] * 3 + 5) % 2600;
            let (from, to) = (bin_index(lens[r]), bin_index(new_len));
            lens[r] = new_len;
            if from != to {
                moves.push(RowMove {
                    row: r as u32,
                    from,
                    to,
                });
            }
        }
        assert!(!moves.is_empty());
        let cost = b.apply_moves(&moves, &cfg);
        let (want, full_cost) = Binning::build(lens.iter().copied(), &cfg);
        assert_eq!(b, want);
        // amortized: the patch reads/writes less than the global scan
        assert!(cost.bytes_read < full_cost.bytes_read);
    }

    #[test]
    fn empty_move_set_is_identity() {
        let lens = [1usize, 3, 9, 40, 2000, 0];
        let cfg = titan_cfg();
        let (mut b, _) = Binning::build(lens.iter().copied(), &cfg);
        let want = b.clone();
        b.apply_moves(&[], &cfg);
        assert_eq!(b, want);
    }

    #[test]
    fn moves_through_bin_zero_track_nonempty_rows() {
        let lens = [2usize, 0, 5];
        let cfg = titan_cfg();
        let (mut b, _) = Binning::build(lens.iter().copied(), &cfg);
        assert_eq!(b.nonempty_rows(), 2);
        b.apply_moves(
            &[
                RowMove {
                    row: 0,
                    from: 1,
                    to: 0,
                },
                RowMove {
                    row: 1,
                    from: 0,
                    to: 2,
                },
            ],
            &cfg,
        );
        assert_eq!(b.nonempty_rows(), 2);
        let (want, _) = Binning::build([0usize, 3, 5].iter().copied(), &cfg);
        assert_eq!(b, want);
    }

    #[test]
    fn every_row_is_binned_exactly_once() {
        let lens: Vec<usize> = (0..5000).map(|i| (i * 7919) % 3000).collect();
        let (b, _) = Binning::build(lens.iter().copied(), &titan_cfg());
        let mut seen = vec![false; lens.len()];
        for i in 0..b.n_bins() {
            for &r in b.bin_rows(i) {
                assert!(!seen[r as usize]);
                seen[r as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
