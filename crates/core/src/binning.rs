//! Row binning — Algorithm 1's preprocessing step.
//!
//! One scan over the row lengths places each row in bin
//! `i ⇔ nnz ∈ [2^(i-1)+1 .. 2^i]` (bin 1 holds 1–2, bin 0 empty rows).
//! The scan is the *entire* preprocessing of ACSR — "very inexpensive and
//! does not require any movement and restructuring of the matrix data" —
//! and its cost is what Figure 4 compares against the other formats'
//! transformations.

use crate::config::AcsrConfig;
use sparse_formats::stats::{bin_index, bin_range};
use sparse_formats::PreprocessCost;

/// The result of binning: per-bin row lists plus the G1/G2 split.
#[derive(Clone, Debug, PartialEq)]
pub struct Binning {
    /// `bins[i]` = rows whose length falls in bin `i`. (Bin 0 — empty
    /// rows — is tracked but never launched; CSR semantics still zero
    /// those outputs via the dedicated fill pass when needed.)
    bins: Vec<Vec<u32>>,
    /// Rows handed to row-specific grids (group G1), in row order.
    g1_rows: Vec<u32>,
    /// Bin indices served by bin-specific kernels (group G2, non-empty
    /// bins only, ascending).
    g2_bins: Vec<usize>,
    /// Rows that belong to G1 bins but overflowed `RowMax` and fall back
    /// to the widest bin kernel.
    overflow_rows: Vec<u32>,
    /// Number of rows with at least one non-zero.
    nonempty_rows: usize,
}

/// Counters for the paper's Table V (BS = bin-specific grids, RS =
/// row-specific grids).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BinStats {
    /// Bin-specific grids launched per SpMV (Table V's "BS").
    pub bin_grids: usize,
    /// Row-specific grids launched per SpMV (Table V's "RS").
    pub row_grids: usize,
    /// Largest non-empty bin index (`n` in Algorithm 1).
    pub max_bin: usize,
    /// Rows that overflowed `RowMax`.
    pub overflow_rows: usize,
}

impl Binning {
    /// Bin the rows described by `row_len` under `cfg`. Returns the
    /// binning plus its (tiny) preprocessing cost.
    pub fn build(
        row_len: impl ExactSizeIterator<Item = usize>,
        cfg: &AcsrConfig,
    ) -> (Binning, PreprocessCost) {
        let n_rows = row_len.len();
        let (binning, cost) = sparse_formats::cost::timed(|cost| {
            let mut bins: Vec<Vec<u32>> = Vec::new();
            let mut nonempty_rows = 0usize;
            for (r, len) in row_len.enumerate() {
                let b = bin_index(len);
                if b >= bins.len() {
                    bins.resize_with(b + 1, Vec::new);
                }
                bins[b].push(r as u32);
                if len > 0 {
                    nonempty_rows += 1;
                }
            }
            let bin_max = cfg.effective_bin_max();
            let mut g1_rows: Vec<u32> = Vec::new();
            let mut overflow_rows: Vec<u32> = Vec::new();
            let mut g2_bins: Vec<usize> = Vec::new();
            for (i, rows) in bins.iter().enumerate() {
                if rows.is_empty() || i == 0 {
                    continue;
                }
                if i > bin_max {
                    for &r in rows {
                        // RowMax bounds the number of dynamically launched
                        // grids (the pending-launch limit, §III-B)
                        if g1_rows.len() < cfg.row_max {
                            g1_rows.push(r);
                        } else {
                            overflow_rows.push(r);
                        }
                    }
                } else {
                    g2_bins.push(i);
                }
            }
            // scan reads the offsets array; writes one u32 per row —
            // additive, so costs accrued earlier in the closure survive
            cost.bytes_read += (n_rows as u64 + 1) * 4;
            cost.bytes_written += n_rows as u64 * 4;
            Binning {
                bins,
                g1_rows,
                g2_bins,
                overflow_rows,
                nonempty_rows,
            }
        });
        (binning, cost)
    }

    /// Rows of bin `i`.
    pub fn bin_rows(&self, i: usize) -> &[u32] {
        &self.bins[i]
    }

    /// Number of bins (including empty ones up to the max index).
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Bin indices served by bin-specific kernels (G2).
    pub fn g2_bins(&self) -> &[usize] {
        &self.g2_bins
    }

    /// Rows served by row-specific dynamic grids (G1), `RowMax`-capped.
    pub fn g1_rows(&self) -> &[u32] {
        &self.g1_rows
    }

    /// G1-bin rows that overflowed `RowMax` (fall back to the widest bin
    /// kernel).
    pub fn overflow_rows(&self) -> &[u32] {
        &self.overflow_rows
    }

    /// Rows with at least one stored entry.
    pub fn nonempty_rows(&self) -> usize {
        self.nonempty_rows
    }

    /// Table V statistics.
    pub fn stats(&self) -> BinStats {
        BinStats {
            bin_grids: self.g2_bins.len() + usize::from(!self.overflow_rows.is_empty()),
            row_grids: self.g1_rows.len(),
            max_bin: self.bins.iter().rposition(|b| !b.is_empty()).unwrap_or(0),
            overflow_rows: self.overflow_rows.len(),
        }
    }

    /// The thread-group width for bin `i`'s kernel: `2^(i-1)` capped at a
    /// warp (Algorithm 2: "2^{N-1} threads work on each row ... if a bin
    /// contains rows in [33..64], then 32 cooperating threads").
    pub fn group_for_bin(i: usize) -> usize {
        debug_assert!(i >= 1);
        1usize << (i - 1).min(5)
    }

    /// Inclusive row-length range of bin `i` (re-exported helper).
    pub fn range_of_bin(i: usize) -> (usize, usize) {
        bin_range(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcsrMode;
    use gpu_sim::presets;

    fn titan_cfg() -> AcsrConfig {
        AcsrConfig::for_device(&presets::gtx_titan())
    }

    #[test]
    fn rows_land_in_correct_bins() {
        let lens = [0usize, 1, 2, 3, 4, 5, 8, 9, 1024, 1025, 5000];
        let (b, _) = Binning::build(lens.iter().copied(), &titan_cfg());
        assert_eq!(b.bin_rows(0), &[0]);
        assert_eq!(b.bin_rows(1), &[1, 2]);
        assert_eq!(b.bin_rows(2), &[3, 4]);
        assert_eq!(b.bin_rows(3), &[5, 6]);
        assert_eq!(b.bin_rows(4), &[7]);
        assert_eq!(b.bin_rows(10), &[8]);
        assert_eq!(b.bin_rows(11), &[9]);
        assert_eq!(b.bin_rows(13), &[10]);
    }

    #[test]
    fn g1_g2_split_respects_bin_max() {
        let lens = [2usize, 100, 2000, 4000, 3];
        let cfg = titan_cfg(); // bin_max = 10 → rows > 1024 nnz go to G1
        let (b, _) = Binning::build(lens.iter().copied(), &cfg);
        assert_eq!(b.g1_rows(), &[2, 3]);
        assert!(b.g2_bins().contains(&1)); // lens 2 and 3
        assert!(b.g2_bins().contains(&7)); // len 100
        assert!(b.overflow_rows().is_empty());
    }

    #[test]
    fn binning_only_mode_has_empty_g1() {
        let lens = [2usize, 100, 2000, 50_000];
        let cfg = AcsrConfig::for_device(&presets::gtx_580());
        assert_eq!(cfg.mode, AcsrMode::BinningOnly);
        let (b, _) = Binning::build(lens.iter().copied(), &cfg);
        assert!(b.g1_rows().is_empty());
        assert_eq!(b.g2_bins().len(), 4);
    }

    #[test]
    fn row_max_caps_dynamic_grids() {
        let lens: Vec<usize> = (0..100).map(|_| 5000usize).collect();
        let mut cfg = titan_cfg();
        cfg.row_max = 10;
        let (b, _) = Binning::build(lens.iter().copied(), &cfg);
        assert_eq!(b.g1_rows().len(), 10);
        assert_eq!(b.overflow_rows().len(), 90);
        let stats = b.stats();
        assert_eq!(stats.row_grids, 10);
        assert_eq!(stats.overflow_rows, 90);
        // overflow rows imply one extra (fallback) bin grid
        assert_eq!(stats.bin_grids, 1);
    }

    #[test]
    fn stats_count_grids_like_table_v() {
        let lens = [1usize, 3, 9, 40, 2000, 2, 3000];
        let (b, _) = Binning::build(lens.iter().copied(), &titan_cfg());
        let s = b.stats();
        assert_eq!(s.bin_grids, 4); // bins 1, 2, 4, 6
        assert_eq!(s.row_grids, 2); // the two >1024 rows
        assert_eq!(s.max_bin, 12);
    }

    #[test]
    fn group_widths_match_paper_examples() {
        assert_eq!(Binning::group_for_bin(1), 1); // rows of 1-2 nnz
        assert_eq!(Binning::group_for_bin(2), 2); // 3-4
        assert_eq!(Binning::group_for_bin(3), 4); // 5-8
        assert_eq!(Binning::group_for_bin(6), 32); // 33-64
        assert_eq!(Binning::group_for_bin(12), 32); // capped at a warp
    }

    #[test]
    fn preprocessing_cost_is_one_scan() {
        let lens: Vec<usize> = (0..10_000).map(|i| i % 50).collect();
        let (_, cost) = Binning::build(lens.iter().copied(), &titan_cfg());
        // strictly linear in rows, no sort, no data movement
        assert_eq!(cost.sorted_elements, 0);
        assert_eq!(cost.bytes_read, 10_001 * 4);
        assert_eq!(cost.bytes_written, 10_000 * 4);
    }

    #[test]
    fn every_row_is_binned_exactly_once() {
        let lens: Vec<usize> = (0..5000).map(|i| (i * 7919) % 3000).collect();
        let (b, _) = Binning::build(lens.iter().copied(), &titan_cfg());
        let mut seen = vec![false; lens.len()];
        for i in 0..b.n_bins() {
            for &r in b.bin_rows(i) {
                assert!(!seen[r as usize]);
                seen[r as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
