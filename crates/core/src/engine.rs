//! The ACSR driver (Algorithm 1).
//!
//! On construction (the "first iteration" of Algorithm 1) the engine bins
//! the rows, uploads per-bin row lists, and splits bins into G2
//! (bin-specific kernels) and G1 (row-specific dynamic grids, `RowMax`-
//! capped). Every `spmv` then launches:
//!
//! 1. a zero-scatter over empty rows and atomically-accumulated rows,
//! 2. one bin-specific kernel per non-empty G2 bin,
//! 3. the fallback wide-bin kernel for `RowMax` overflow rows,
//! 4. the long-tail pass — DP parent (Alg. 3) or §VIII static kernel.
//!
//! After a dynamic update ([`crate::update`]) only the cheap re-binning
//! scan repeats — the matrix data never moves, which is the paper's whole
//! argument for dynamic graphs.

use crate::binning::{BinStats, Binning, RowMove};
use crate::config::{AcsrConfig, AcsrMode};
use crate::dynpar::{dp_parent_kernel, dp_parent_kernel_multi};
use crate::kernels::{
    bin_kernel, bin_kernel_multi, static_long_tail_kernel, static_long_tail_kernel_multi,
    zero_rows_kernel, zero_rows_kernel_multi,
};
use crate::matrix::AcsrMatrix;
use gpu_sim::{Device, DeviceBuffer, RunReport};
use sparse_formats::{CsrMatrix, PreprocessCost, Scalar};
use spmv_kernels::{GpuSpmv, GpuSpmvMulti};

/// ACSR SpMV engine.
pub struct AcsrEngine<T> {
    mat: AcsrMatrix<T>,
    cfg: AcsrConfig,
    binning: Binning,
    /// Device row list per G2 bin, indexed by bin id.
    bin_lists: Vec<Option<DeviceBuffer<u32>>>,
    /// Device G1 row list.
    g1_list: DeviceBuffer<u32>,
    /// Device `RowMax`-overflow row list.
    overflow_list: Option<DeviceBuffer<u32>>,
    /// Rows needing a zero-scatter before kernels run (empty rows plus
    /// atomically-accumulated G1 rows).
    zero_list: Option<DeviceBuffer<u32>>,
    /// Accumulated preprocessing (initial binning + re-binnings).
    preprocess: PreprocessCost,
}

impl<T: Scalar> AcsrEngine<T> {
    /// Build from a host CSR matrix (uploads with slack per `cfg`).
    pub fn from_csr(dev: &Device, m: &CsrMatrix<T>, cfg: AcsrConfig) -> Self {
        let mat = AcsrMatrix::from_csr(dev, m, &cfg);
        Self::new(dev, mat, cfg)
    }

    /// Build from an already-uploaded ACSR matrix.
    pub fn new(dev: &Device, mat: AcsrMatrix<T>, cfg: AcsrConfig) -> Self {
        if cfg.mode == AcsrMode::DynamicParallelism {
            assert!(
                dev.config().has_dynamic_parallelism(),
                "device '{}' cannot run ACSR in DynamicParallelism mode",
                dev.config().name
            );
        }
        let mut engine = AcsrEngine {
            mat,
            cfg,
            binning: Binning::build(std::iter::empty(), &cfg).0,
            bin_lists: Vec::new(),
            g1_list: dev.alloc(Vec::new()),
            overflow_list: None,
            zero_list: None,
            preprocess: PreprocessCost::default(),
        };
        engine.rebin(dev);
        engine
    }

    /// Re-scan row lengths and rebuild bin lists (Algorithm 1's
    /// preprocessing; called automatically after updates).
    pub fn rebin(&mut self, dev: &Device) {
        let (binning, cost) = Binning::build(self.mat.row_lengths(), &self.cfg);
        self.preprocess.merge(&cost);
        self.bin_lists = (0..binning.n_bins())
            .map(|i| {
                if i >= 1 && binning.g2_bins().contains(&i) {
                    Some(dev.alloc(binning.bin_rows(i).to_vec()))
                } else {
                    None
                }
            })
            .collect();
        self.g1_list = dev.alloc(binning.g1_rows().to_vec());
        self.overflow_list = if binning.overflow_rows().is_empty() {
            None
        } else {
            Some(dev.alloc(binning.overflow_rows().to_vec()))
        };
        // zero-scatter list: empty rows + G1 rows (atomic accumulation)
        let mut zero_rows: Vec<u32> = binning.bin_rows(0).to_vec();
        if self.cfg.mode != AcsrMode::BinningOnly {
            zero_rows.extend_from_slice(binning.g1_rows());
        }
        self.zero_list = if zero_rows.is_empty() {
            None
        } else {
            Some(dev.alloc(zero_rows))
        };
        self.binning = binning;
    }

    /// Patch the binning after a batch of per-row bin changes,
    /// re-uploading only the *dirty* bins' device row lists (plus the
    /// G1/overflow/zero lists when their membership actually changed).
    /// Produces launch-for-launch the same SpMV as a full [`Self::rebin`]
    /// — the bin lists are recomputed through the same split — at a cost
    /// proportional to the moved rows, not the matrix. Returns the bytes
    /// of row-list data that had to be re-uploaded (callers charge the
    /// PCIe transfer).
    pub fn rebin_incremental(&mut self, dev: &Device, moves: &[RowMove]) -> u64 {
        if moves.is_empty() {
            return 0;
        }
        let old_g1 = self.binning.g1_rows().to_vec();
        let old_overflow = self.binning.overflow_rows().to_vec();
        let old_zero0 = self.binning.bin_rows(0).to_vec();
        let cost = self.binning.apply_moves(moves, &self.cfg);
        self.preprocess.merge(&cost);

        let mut uploaded = 0u64;
        if self.bin_lists.len() < self.binning.n_bins() {
            self.bin_lists.resize_with(self.binning.n_bins(), || None);
        }
        let mut dirty: Vec<usize> = moves.iter().flat_map(|m| [m.from, m.to]).collect();
        dirty.sort_unstable();
        dirty.dedup();
        for &b in &dirty {
            self.bin_lists[b] = if b >= 1 && self.binning.g2_bins().contains(&b) {
                uploaded += self.binning.bin_rows(b).len() as u64 * 4;
                Some(dev.alloc(self.binning.bin_rows(b).to_vec()))
            } else {
                None
            };
        }
        if self.binning.g1_rows() != old_g1 {
            uploaded += self.binning.g1_rows().len() as u64 * 4;
            self.g1_list = dev.alloc(self.binning.g1_rows().to_vec());
        }
        if self.binning.overflow_rows() != old_overflow {
            uploaded += self.binning.overflow_rows().len() as u64 * 4;
            self.overflow_list = if self.binning.overflow_rows().is_empty() {
                None
            } else {
                Some(dev.alloc(self.binning.overflow_rows().to_vec()))
            };
        }
        if self.binning.bin_rows(0) != old_zero0 || self.binning.g1_rows() != old_g1 {
            let mut zero_rows: Vec<u32> = self.binning.bin_rows(0).to_vec();
            if self.cfg.mode != AcsrMode::BinningOnly {
                zero_rows.extend_from_slice(self.binning.g1_rows());
            }
            uploaded += zero_rows.len() as u64 * 4;
            self.zero_list = if zero_rows.is_empty() {
                None
            } else {
                Some(dev.alloc(zero_rows))
            };
        }
        uploaded
    }

    /// The current binning (Table V statistics etc.).
    pub fn binning(&self) -> &Binning {
        &self.binning
    }

    /// Table V counters for this matrix/configuration.
    pub fn bin_stats(&self) -> BinStats {
        self.binning.stats()
    }

    /// Accumulated preprocessing cost (binning scans only).
    pub fn preprocess_cost(&self) -> &PreprocessCost {
        &self.preprocess
    }

    /// The device matrix.
    pub fn matrix(&self) -> &AcsrMatrix<T> {
        &self.mat
    }

    /// Mutable device matrix access (update kernels and external
    /// maintenance engines such as `acsr-stream`).
    pub fn matrix_mut(&mut self) -> &mut AcsrMatrix<T> {
        &mut self.mat
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcsrConfig {
        &self.cfg
    }
}

impl<T: Scalar> GpuSpmv<T> for AcsrEngine<T> {
    fn name(&self) -> &'static str {
        match self.cfg.mode {
            AcsrMode::DynamicParallelism => "ACSR",
            AcsrMode::BinningOnly => "ACSR-bin",
            AcsrMode::StaticLongTail => "ACSR-static",
        }
    }

    fn rows(&self) -> usize {
        self.mat.rows()
    }
    fn cols(&self) -> usize {
        self.mat.cols()
    }
    fn nnz(&self) -> usize {
        self.mat.nnz()
    }
    fn device_bytes(&self) -> u64 {
        let lists: u64 = self
            .bin_lists
            .iter()
            .flatten()
            .map(|b| b.bytes())
            .sum::<u64>()
            + self.g1_list.bytes();
        self.mat.device_bytes() + lists
    }

    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport {
        assert_eq!(x.len(), self.mat.cols(), "x length mismatch");
        assert_eq!(y.len(), self.mat.rows(), "y length mismatch");
        // All of ACSR's per-SpMV kernels are independent (each writes a
        // disjoint row set; the zero-scatter precedes the atomic
        // accumulators via a stream event), so the driver launches them
        // on separate streams — concurrent under Kepler's HyperQ,
        // serialized on Fermi. `ConcurrentGroup` models exactly that.
        let mut group = dev.launch_group("acsr_spmv");
        if let Some(zl) = &self.zero_list {
            zero_rows_kernel(&mut group, zl, y, "acsr_zero");
        }
        // Bin-specific kernels (ascending bin id, as the driver launches
        // them)
        for &bin in self.binning.g2_bins() {
            let list = self.bin_lists[bin]
                .as_ref()
                .expect("g2 bin must have an uploaded row list");
            bin_kernel(
                &mut group,
                &self.mat,
                list,
                Binning::group_for_bin(bin),
                self.cfg.texture_x,
                x,
                y,
                &format!("acsr_bin{bin}"),
            );
        }
        // RowMax-overflow rows: widest bin kernel (one warp per row).
        if let Some(ol) = &self.overflow_list {
            bin_kernel(
                &mut group,
                &self.mat,
                ol,
                32,
                self.cfg.texture_x,
                x,
                y,
                "acsr_overflow",
            );
        }
        // Long tail.
        if !self.g1_list.is_empty() {
            match self.cfg.mode {
                AcsrMode::DynamicParallelism => dp_parent_kernel(
                    &mut group,
                    &self.mat,
                    &self.g1_list,
                    self.cfg.thread_load,
                    self.cfg.texture_x,
                    x,
                    y,
                ),
                AcsrMode::StaticLongTail => static_long_tail_kernel(
                    &mut group,
                    &self.mat,
                    &self.g1_list,
                    self.cfg.texture_x,
                    x,
                    y,
                ),
                AcsrMode::BinningOnly => unreachable!("binning-only has empty G1"),
            };
        }
        group.finish()
    }
}

impl<T: Scalar> GpuSpmvMulti<T> for AcsrEngine<T> {
    /// Fused multi-vector SpMV: the same launch sequence as [`Self::spmv`]
    /// (zero-scatter, one kernel per G2 bin, overflow, long tail) but each
    /// kernel serves all k vectors — row lists, row bounds, columns and
    /// values are read once per wave instead of once per vector, and the
    /// group's launch floor is paid once. Per vector, every float
    /// operation happens in the single-vector order, so `ys[v]` is
    /// bit-identical to `spmv(dev, xs[v], ys[v])` (for the long-tail
    /// atomics this holds at any `ACSR_SIM_THREADS` width in
    /// `StaticLongTail` mode, where a row's atomics stay within one
    /// block/shard; `DynamicParallelism` spreads a row's child blocks
    /// across shards, so its accumulation order — for batched and
    /// unbatched runs alike — is only pinned at width 1).
    fn spmv_multi(
        &self,
        dev: &Device,
        xs: &[&DeviceBuffer<T>],
        ys: &[&DeviceBuffer<T>],
    ) -> RunReport {
        assert_eq!(xs.len(), ys.len(), "batch size mismatch");
        for x in xs {
            assert_eq!(x.len(), self.mat.cols(), "x length mismatch");
        }
        for y in ys {
            assert_eq!(y.len(), self.mat.rows(), "y length mismatch");
        }
        if xs.is_empty() {
            return RunReport::default();
        }
        let mut group = dev.launch_group("acsr_spmm");
        if let Some(zl) = &self.zero_list {
            zero_rows_kernel_multi(&mut group, zl, ys, "acsr_zero");
        }
        for &bin in self.binning.g2_bins() {
            let list = self.bin_lists[bin]
                .as_ref()
                .expect("g2 bin must have an uploaded row list");
            bin_kernel_multi(
                &mut group,
                &self.mat,
                list,
                Binning::group_for_bin(bin),
                self.cfg.texture_x,
                xs,
                ys,
                &format!("acsr_bin{bin}"),
            );
        }
        if let Some(ol) = &self.overflow_list {
            bin_kernel_multi(
                &mut group,
                &self.mat,
                ol,
                32,
                self.cfg.texture_x,
                xs,
                ys,
                "acsr_overflow",
            );
        }
        if !self.g1_list.is_empty() {
            match self.cfg.mode {
                AcsrMode::DynamicParallelism => dp_parent_kernel_multi(
                    &mut group,
                    &self.mat,
                    &self.g1_list,
                    self.cfg.thread_load,
                    self.cfg.texture_x,
                    xs,
                    ys,
                ),
                AcsrMode::StaticLongTail => static_long_tail_kernel_multi(
                    &mut group,
                    &self.mat,
                    &self.g1_list,
                    self.cfg.texture_x,
                    xs,
                    ys,
                ),
                AcsrMode::BinningOnly => unreachable!("binning-only has empty G1"),
            };
        }
        group.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn matrix(rows: usize, max: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 8.0,
            max_degree: max,
            pinned_max_rows: 2,
            col_skew: 0.5,
            seed,
            ..Default::default()
        })
    }

    fn check(dev: &Device, m: &CsrMatrix<f64>, cfg: AcsrConfig) -> RunReport {
        let engine = AcsrEngine::from_csr(dev, m, cfg);
        let x: Vec<f64> = (0..m.cols()).map(|i| 0.5 + (i % 9) as f64 * 0.25).collect();
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc(vec![-3.0f64; m.rows()]);
        let r = engine.spmv(dev, &xd, &yd);
        let want = m.spmv(&x);
        let d = sparse_formats::scalar::rel_l2_distance(yd.as_slice(), &want);
        assert!(d < 1e-12, "rel distance {d} in mode {:?}", engine.cfg.mode);
        r
    }

    #[test]
    fn dynamic_parallelism_mode_is_correct() {
        let dev = Device::new(presets::gtx_titan());
        let m = matrix(4000, 1600, 101);
        let r = check(&dev, &m, AcsrConfig::for_device(dev.config()));
        assert!(r.counters.child_launches > 0, "must use DP for the tail");
    }

    #[test]
    fn binning_only_mode_is_correct_on_fermi() {
        let dev = Device::new(presets::gtx_580());
        let m = matrix(4000, 1600, 102);
        let r = check(&dev, &m, AcsrConfig::for_device(dev.config()));
        assert_eq!(r.counters.child_launches, 0);
    }

    #[test]
    fn static_long_tail_mode_is_correct() {
        let dev = Device::new(presets::tesla_k10_single());
        let m = matrix(4000, 1600, 103);
        let r = check(&dev, &m, AcsrConfig::static_long_tail());
        assert_eq!(r.counters.child_launches, 0);
    }

    #[test]
    #[should_panic(expected = "DynamicParallelism")]
    fn dp_mode_rejected_on_fermi() {
        let dev = Device::new(presets::gtx_580());
        let m = matrix(500, 100, 104);
        let mut cfg = AcsrConfig::for_device(&presets::gtx_titan());
        cfg.mode = AcsrMode::DynamicParallelism;
        let _ = AcsrEngine::from_csr(&dev, &m, cfg);
    }

    #[test]
    fn empty_rows_get_zeroed() {
        let dev = Device::new(presets::gtx_titan());
        let mut t = sparse_formats::TripletMatrix::<f64>::new(6, 6);
        t.push(0, 1, 2.0).unwrap();
        t.push(3, 3, 4.0).unwrap();
        let m = t.to_csr();
        let engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        let xd = dev.alloc(vec![1.0f64; 6]);
        let yd = dev.alloc(vec![7.0f64; 6]);
        engine.spmv(&dev, &xd, &yd);
        assert_eq!(yd.as_slice(), &[2.0, 0.0, 0.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn table_v_style_stats_are_exposed() {
        let dev = Device::new(presets::gtx_titan());
        let m = matrix(6000, 2000, 105);
        let engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        let s = engine.bin_stats();
        let big_rows = (0..m.rows()).filter(|&r| m.row_nnz(r) > 1024).count();
        assert!(s.bin_grids > 2);
        assert_eq!(s.row_grids, big_rows);
        assert!(s.row_grids >= 2); // at least the two pinned max rows
    }

    #[test]
    fn row_max_overflow_falls_back_correctly() {
        let dev = Device::new(presets::gtx_titan());
        let m = matrix(3000, 1500, 106);
        let mut cfg = AcsrConfig::for_device(dev.config());
        cfg.row_max = 1; // only one dynamic grid allowed
        let engine = AcsrEngine::from_csr(&dev, &m, cfg);
        let big_rows = (0..m.rows()).filter(|&r| m.row_nnz(r) > 1024).count();
        assert_eq!(engine.binning().overflow_rows().len(), big_rows - 1);
        let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 3) as f64).collect();
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        let r = engine.spmv(&dev, &xd, &yd);
        assert_eq!(r.counters.child_launches, 1);
        let d = sparse_formats::scalar::rel_l2_distance(yd.as_slice(), &m.spmv(&x));
        assert!(d < 1e-12);
    }

    #[test]
    fn preprocessing_is_scan_only() {
        let dev = Device::new(presets::gtx_titan());
        let m = matrix(8000, 1024, 107);
        let engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        let c = engine.preprocess_cost();
        assert_eq!(c.sorted_elements, 0);
        assert_eq!(c.autotune_trials, 0);
        // orders of magnitude below one pass over the matrix data
        assert!(c.bytes_read + c.bytes_written < (m.nnz() * 12) as u64);
    }

    #[test]
    fn acsr_beats_csr_vector_on_power_law_modeled_time() {
        use spmv_kernels::csr_vector::CsrVector;
        use spmv_kernels::DevCsr;
        let dev = Device::new(presets::gtx_titan());
        let m = matrix(30_000, 8000, 108);
        let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 5) as f64 * 0.2).collect();
        let engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc_zeroed::<f64>(m.rows());
        let r_acsr = engine.spmv(&dev, &xd, &yd);
        let vec_eng = CsrVector::new(DevCsr::upload(&dev, &m));
        let yd2 = dev.alloc_zeroed::<f64>(m.rows());
        let r_vec = vec_eng.spmv(&dev, &xd, &yd2);
        assert!(
            r_acsr.time_s < r_vec.time_s,
            "ACSR {:.1}us vs CSR-vector {:.1}us",
            r_acsr.time_s * 1e6,
            r_vec.time_s * 1e6
        );
    }
}
