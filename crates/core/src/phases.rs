//! Per-phase time/traffic attribution for ACSR runs (Table V's view).
//!
//! [`AcsrEngine::spmv`](crate::engine::AcsrEngine) launches its kernels
//! under stable
//! names — `acsr_zero`, `acsr_bin{i}`, `acsr_overflow`, `acsr_dp_parent`
//! / `acsr_static_tail`, `acsr_update` — so a [`gpu_sim::trace`] span
//! stream can be folded into a [`PhaseRollup`]: one bucket per pipeline
//! phase carrying launches, modeled seconds and full [`Counters`]. The
//! bench experiments print this as a time-attribution table when run
//! with `--trace`.

use gpu_sim::trace::{Span, SpanKind};
use gpu_sim::Counters;

/// ACSR pipeline phase of one span.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// `y`-zeroing scatter over the non-empty rows (`acsr_zero`).
    ZeroScatter,
    /// G2 bin-specific kernels (`acsr_bin{i}`).
    BinKernels,
    /// `RowMax`-overflow rows served by the widest bin kernel
    /// (`acsr_overflow`).
    Overflow,
    /// Long-tail G1 rows: the dynamic-parallelism parent + its child
    /// grids, or the §VIII static variant (`acsr_dp_parent*`,
    /// `acsr_static_tail`).
    LongTail,
    /// The §VII device-side update kernel (`acsr_update`).
    Update,
    /// Modeled PCIe traffic (uploads, delta shipments, readbacks).
    Transfer,
    /// Anything else (application kernels, group wrappers, ...).
    Other,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 7] = [
        Phase::ZeroScatter,
        Phase::BinKernels,
        Phase::Overflow,
        Phase::LongTail,
        Phase::Update,
        Phase::Transfer,
        Phase::Other,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::ZeroScatter => "zero-scatter",
            Phase::BinKernels => "bin-kernels",
            Phase::Overflow => "overflow",
            Phase::LongTail => "long-tail",
            Phase::Update => "update",
            Phase::Transfer => "transfer",
            Phase::Other => "other",
        }
    }
}

/// Classify a span by its kind and kernel name.
pub fn classify(kind: SpanKind, name: &str) -> Phase {
    if kind == SpanKind::Transfer {
        return Phase::Transfer;
    }
    if name == "acsr_zero" {
        Phase::ZeroScatter
    } else if name.starts_with("acsr_bin") {
        Phase::BinKernels
    } else if name == "acsr_overflow" {
        Phase::Overflow
    } else if name.starts_with("acsr_dp_parent") || name == "acsr_static_tail" {
        Phase::LongTail
    } else if name == "acsr_update" {
        Phase::Update
    } else {
        Phase::Other
    }
}

/// Aggregates for one phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseBucket {
    /// Spans folded into this bucket.
    pub spans: usize,
    /// Kernel launches (0 for transfers and child waves).
    pub launches: u64,
    /// Modeled seconds. Exact for top-level spans; stream spans inside a
    /// pooled group contribute their roofline-attributed share, which
    /// under-counts the group's launch gap (charged to the group span's
    /// phase would double-count, so it is simply not attributed).
    pub seconds: f64,
    /// Event counts.
    pub counters: Counters,
}

/// Per-phase rollup of a span stream (see module docs).
#[derive(Clone, Debug, Default)]
pub struct PhaseRollup {
    buckets: [PhaseBucket; 7],
}

impl PhaseRollup {
    /// Fold a full ledger span list (`TraceLedger::spans()`, in record
    /// order — `Span::parent` indices must refer into `spans` itself).
    ///
    /// Counter-exactness: each counter increment is attributed exactly
    /// once — a pooled group's counters are taken from its `Stream`
    /// spans (the group `Launch` span, which holds their sum, is
    /// skipped), and `ChildWave` spans are skipped (their counters are
    /// contained in their parent's). Summing every bucket therefore
    /// reproduces the ledger total's counters bit-identically.
    pub fn from_spans(spans: &[Span]) -> PhaseRollup {
        let mut has_streams = vec![false; spans.len()];
        for span in spans {
            if span.kind == SpanKind::Stream {
                if let Some(p) = span.parent {
                    if p < has_streams.len() {
                        has_streams[p] = true;
                    }
                }
            }
        }
        let mut rollup = PhaseRollup::default();
        for (i, span) in spans.iter().enumerate() {
            let counted = match span.kind {
                SpanKind::Launch => !has_streams[i],
                SpanKind::Stream => true,
                SpanKind::Transfer => true,
                SpanKind::ChildWave => false,
            };
            if !counted {
                continue;
            }
            let bucket = rollup.bucket_mut(classify(span.kind, &span.name));
            bucket.spans += 1;
            bucket.launches += u64::from(span.launches);
            bucket.seconds += span.dur_s;
            bucket.counters.merge(&span.counters);
        }
        rollup
    }

    fn bucket_mut(&mut self, phase: Phase) -> &mut PhaseBucket {
        let idx = Phase::ALL.iter().position(|p| *p == phase).unwrap();
        &mut self.buckets[idx]
    }

    /// The bucket for `phase`.
    pub fn bucket(&self, phase: Phase) -> &PhaseBucket {
        let idx = Phase::ALL.iter().position(|p| *p == phase).unwrap();
        &self.buckets[idx]
    }

    /// Counters summed over every bucket (equals the ledger total's
    /// counters, by construction).
    pub fn total_counters(&self) -> Counters {
        Counters::sum(self.buckets.iter().map(|b| &b.counters))
    }

    /// Modeled seconds summed over every bucket.
    pub fn total_seconds(&self) -> f64 {
        self.buckets.iter().map(|b| b.seconds).sum()
    }

    /// Table V's "BS": bin-specific grids per run (bin + overflow
    /// kernel launches).
    pub fn bin_grid_launches(&self) -> u64 {
        self.bucket(Phase::BinKernels).launches + self.bucket(Phase::Overflow).launches
    }

    /// Table V's "RS": row-specific grids per run (dynamic child grids
    /// launched from the long-tail parent).
    pub fn row_grid_launches(&self) -> u64 {
        self.bucket(Phase::LongTail).counters.child_launches
    }

    /// `(label, bucket)` pairs for the phases that saw any spans, in
    /// pipeline order.
    pub fn nonempty(&self) -> Vec<(&'static str, &PhaseBucket)> {
        Phase::ALL
            .iter()
            .filter_map(|&p| {
                let b = self.bucket(p);
                (b.spans > 0).then(|| (p.label(), b))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcsrConfig;
    use crate::engine::AcsrEngine;
    use gpu_sim::{presets, Device};
    use graphgen::{generate_power_law, PowerLawConfig};
    use spmv_kernels::GpuSpmv;

    #[test]
    fn classify_covers_engine_kernel_names() {
        use SpanKind::*;
        assert_eq!(classify(Stream, "acsr_zero"), Phase::ZeroScatter);
        assert_eq!(classify(Stream, "acsr_bin3"), Phase::BinKernels);
        assert_eq!(classify(Stream, "acsr_overflow"), Phase::Overflow);
        assert_eq!(classify(Stream, "acsr_dp_parent"), Phase::LongTail);
        assert_eq!(
            classify(ChildWave, "acsr_dp_parent.child7"),
            Phase::LongTail
        );
        assert_eq!(classify(Launch, "acsr_static_tail"), Phase::LongTail);
        assert_eq!(classify(Launch, "acsr_update"), Phase::Update);
        assert_eq!(classify(Transfer, "acsr_update_delta"), Phase::Transfer);
        assert_eq!(classify(Launch, "acsr_spmv"), Phase::Other);
        assert_eq!(classify(Launch, "scale_add"), Phase::Other);
    }

    #[test]
    fn traced_spmv_rolls_up_exactly() {
        let m: sparse_formats::CsrMatrix<f64> = generate_power_law(&PowerLawConfig {
            rows: 3000,
            cols: 3000,
            mean_degree: 8.0,
            max_degree: 2500,
            pinned_max_rows: 2,
            col_skew: 0.5,
            seed: 42,
            ..Default::default()
        });
        let mut dev = Device::new(presets::gtx_titan());
        let ledger = dev.enable_tracing();
        let engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        let x = dev.alloc(vec![1.0f64; m.cols()]);
        let y = dev.alloc_zeroed::<f64>(m.rows());
        engine.spmv(&dev, &x, &y);
        let total = ledger.reconcile().expect("traced spmv reconciles");
        let rollup = PhaseRollup::from_spans(&ledger.spans());
        // every counter increment lands in exactly one bucket
        assert_eq!(rollup.total_counters(), total.counters);
        // a power-law matrix with a pinned huge row exercises the G2
        // bins and the dynamic-parallelism long tail
        assert!(rollup.bucket(Phase::ZeroScatter).spans > 0);
        assert!(rollup.bucket(Phase::BinKernels).spans > 1);
        assert!(rollup.bucket(Phase::LongTail).spans > 0);
        assert!(rollup.bin_grid_launches() > 0);
        assert!(rollup.row_grid_launches() > 0);
        assert!(rollup.total_seconds() > 0.0);
    }
}
