//! # acsr — Adaptive CSR SpMV (the paper's contribution)
//!
//! ACSR (Ashari et al., SC'14) accelerates SpMV **without leaving the CSR
//! format**: a cheap scan groups rows into power-of-two *bins* by
//! non-zero count, bin-specific kernels give every row a thread group
//! matched to its length (removing the divergence of one-size-fits-all
//! CSR kernels), and the long power-law tail is handed to *dynamic
//! parallelism* — device-launched child grids sized to each huge row.
//! Because preprocessing is a single row-length scan (≈3 SpMVs of cost,
//! vs. 21x for HYB and 161,000x for auto-tuned BCCOO), ACSR is the only
//! contender that stays profitable when the matrix *changes* — the
//! dynamic-graph setting of §VII, supported here by a slack-padded CSR
//! whose update kernel applies delete/insert lists on the device.
//!
//! Crate layout (paper mapping):
//! * [`binning`] — Algorithm 1's row binning and the G1/G2 split
//!   (`BinMax`, `RowMax`);
//! * [`config`] — `BinMax` / `RowMax` / `ThreadLoad` knobs and per-device
//!   defaults;
//! * [`matrix`] — [`matrix::AcsrMatrix`], the device-resident CSR with
//!   per-row slack for incremental updates;
//! * [`kernels`] — Algorithm 2's bin-specific kernels plus the §VIII
//!   static long-tail variant;
//! * [`dynpar`] — Algorithms 3–4: the parent grid and row-specific child
//!   kernels;
//! * [`engine`] — [`engine::AcsrEngine`], the `GpuSpmv` driver tying it
//!   together;
//! * [`update`] — the §VII device-side update kernel;
//! * [`cpu`] — a multicore binned SpMV used by the wall-clock benches;
//! * [`phases`] — folds a [`gpu_sim::trace`] span stream into per-phase
//!   rollups (Table V's BS/RS view) for traced runs.
//!
//! ## Quickstart
//!
//! ```
//! use acsr::{AcsrConfig, AcsrEngine};
//! use gpu_sim::{presets, Device};
//! use graphgen::{generate_power_law, PowerLawConfig};
//! use spmv_kernels::GpuSpmv;
//!
//! let m: sparse_formats::CsrMatrix<f64> = generate_power_law(&PowerLawConfig {
//!     rows: 4096, cols: 4096, mean_degree: 8.0, max_degree: 1024,
//!     pinned_max_rows: 2, col_skew: 0.5, seed: 7,
//!     ..Default::default()
//! });
//! let dev = Device::new(presets::gtx_titan());
//! let engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
//! let x = dev.alloc(vec![1.0f64; 4096]);
//! let mut y = dev.alloc_zeroed::<f64>(4096);
//! let report = engine.spmv(&dev, &x, &mut y);
//! println!("modeled SpMV: {:.1} us, {:.1} GFLOP/s",
//!          report.time_s * 1e6, report.gflops(2 * m.nnz() as u64));
//! ```

pub mod binning;
pub mod config;
pub mod cpu;
pub mod dynpar;
pub mod engine;
pub mod kernels;
pub mod matrix;
pub mod phases;
pub mod update;

pub use binning::{BinStats, Binning, RowMove};
pub use config::{AcsrConfig, AcsrMode};
pub use engine::AcsrEngine;
pub use matrix::AcsrMatrix;
pub use phases::{Phase, PhaseBucket, PhaseRollup};
