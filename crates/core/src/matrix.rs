//! Device-resident ACSR matrix: CSR with per-row slack.
//!
//! ACSR's kernels index rows through `(row_start, row_len)` pairs rather
//! than a packed offsets array, which lets each row keep unused *slack*
//! capacity after its live entries (§VII: "some additional memory is
//! reserved at the end of each CSR row, to be used when non-zeros get
//! added"). A freshly uploaded matrix is therefore already in the layout
//! the incremental update kernel needs — no re-encoding between the
//! static and dynamic paths.

use crate::config::AcsrConfig;
use gpu_sim::{Device, DeviceBuffer};
use sparse_formats::{CsrMatrix, Scalar};

/// Device CSR-with-slack.
pub struct AcsrMatrix<T> {
    rows: usize,
    cols: usize,
    nnz: usize,
    /// First slot of each row in `col_indices` / `values`.
    pub row_start: DeviceBuffer<u32>,
    /// Live entries per row.
    pub row_len: DeviceBuffer<u32>,
    /// Allocated capacity per row (`row_len[r] <= row_cap[r]`).
    pub row_cap: DeviceBuffer<u32>,
    /// Column indices, slack gaps between rows.
    pub col_indices: DeviceBuffer<u32>,
    /// Values, parallel to `col_indices`.
    pub values: DeviceBuffer<T>,
}

impl<T: Scalar> AcsrMatrix<T> {
    /// Upload a host CSR matrix, laying rows out with the slack policy of
    /// `cfg`. With `slack_fraction == 0` and `MIN_SLACK` ignored this is
    /// byte-identical to packed CSR plus the length array.
    pub fn from_csr(dev: &Device, m: &CsrMatrix<T>, cfg: &AcsrConfig) -> Self {
        let rows = m.rows();
        let mut row_start = Vec::with_capacity(rows);
        let mut row_len = Vec::with_capacity(rows);
        let mut row_cap = Vec::with_capacity(rows);
        let mut pos = 0usize;
        for r in 0..rows {
            let len = m.row_nnz(r);
            let cap = cfg.row_capacity(len);
            row_start.push(pos as u32);
            row_len.push(len as u32);
            row_cap.push(cap as u32);
            pos += cap;
        }
        let mut col_indices = vec![0u32; pos];
        let mut values = vec![T::ZERO; pos];
        for (r, &s) in row_start.iter().enumerate() {
            let (cols, vals) = m.row(r);
            let s = s as usize;
            col_indices[s..s + cols.len()].copy_from_slice(cols);
            values[s..s + vals.len()].copy_from_slice(vals);
        }
        AcsrMatrix {
            rows,
            cols: m.cols(),
            nnz: m.nnz(),
            row_start: dev.alloc(row_start),
            row_len: dev.alloc(row_len),
            row_cap: dev.alloc(row_cap),
            col_indices: dev.alloc(col_indices),
            values: dev.alloc(values),
        }
    }

    /// Assemble a device matrix from an explicit layout (maintenance
    /// engines that place rows in non-row-order arenas, e.g.
    /// `acsr-stream`'s canonical bin-arena layout). `col_indices` /
    /// `values` must already hold each row's live entries at
    /// `row_start[r] .. row_start[r] + row_len[r]`; slack gaps are never
    /// read by the kernels and may hold garbage. Panics (via `validate`)
    /// if the layout breaks a structural invariant.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        dev: &Device,
        rows: usize,
        cols: usize,
        row_start: Vec<u32>,
        row_len: Vec<u32>,
        row_cap: Vec<u32>,
        col_indices: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        let nnz = row_len.iter().map(|&l| l as usize).sum();
        let mat = AcsrMatrix {
            rows,
            cols,
            nnz,
            row_start: dev.alloc(row_start),
            row_len: dev.alloc(row_len),
            row_cap: dev.alloc(row_cap),
            col_indices: dev.alloc(col_indices),
            values: dev.alloc(values),
        };
        mat.validate().expect("explicit ACSR layout must be valid");
        mat
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Live non-zeros (maintained across updates).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Overwrite the live-entry count. Maintenance engines that mutate
    /// `row_len` directly (e.g. `acsr-stream`) must keep this in sync;
    /// `validate` cross-checks it against the lengths.
    pub fn set_nnz(&mut self, nnz: usize) {
        self.nnz = nnz;
    }

    /// Total reserved-but-unused slots (Σ cap − len) — the slack budget
    /// incremental updates consume before any row has to move.
    pub fn slack_elements(&self) -> u64 {
        self.row_cap
            .as_slice()
            .iter()
            .zip(self.row_len.as_slice())
            .map(|(&c, &l)| (c - l) as u64)
            .sum()
    }

    /// Total device bytes, including slack.
    pub fn device_bytes(&self) -> u64 {
        self.row_start.bytes()
            + self.row_len.bytes()
            + self.row_cap.bytes()
            + self.col_indices.bytes()
            + self.values.bytes()
    }

    /// Current row lengths (host view, for re-binning after updates).
    pub fn row_lengths(&self) -> impl ExactSizeIterator<Item = usize> + '_ {
        self.row_len.as_slice().iter().map(|&l| l as usize)
    }

    /// Extract the live entries back into a packed host CSR (tests and
    /// checkpointing).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut offsets = Vec::with_capacity(self.rows + 1);
        offsets.push(0u32);
        let mut cols = Vec::with_capacity(self.nnz);
        let mut vals = Vec::with_capacity(self.nnz);
        for r in 0..self.rows {
            let s = self.row_start.as_slice()[r] as usize;
            let l = self.row_len.as_slice()[r] as usize;
            cols.extend_from_slice(&self.col_indices.as_slice()[s..s + l]);
            vals.extend_from_slice(&self.values.as_slice()[s..s + l]);
            offsets.push(cols.len() as u32);
        }
        CsrMatrix::from_raw_parts(self.rows, self.cols, offsets, cols, vals)
            .expect("slack CSR rows must stay sorted and in range")
    }

    /// Check internal invariants (tests / debug).
    pub fn validate(&self) -> Result<(), String> {
        let starts = self.row_start.as_slice();
        let lens = self.row_len.as_slice();
        let caps = self.row_cap.as_slice();
        let mut live = 0usize;
        for r in 0..self.rows {
            if lens[r] > caps[r] {
                return Err(format!("row {r}: len {} > cap {}", lens[r], caps[r]));
            }
            let end = starts[r] as usize + caps[r] as usize;
            if end > self.col_indices.len() {
                return Err(format!("row {r}: capacity end {end} out of bounds"));
            }
            let s = starts[r] as usize;
            let l = lens[r] as usize;
            let row_cols = &self.col_indices.as_slice()[s..s + l];
            if !row_cols.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("row {r}: columns not strictly increasing"));
            }
            if row_cols.iter().any(|&c| c as usize >= self.cols) {
                return Err(format!("row {r}: column out of range"));
            }
            live += l;
        }
        if live != self.nnz {
            return Err(format!("nnz {} != live entries {live}", self.nnz));
        }
        // Capacity spans must be pairwise disjoint. Rows are not required
        // to sit in row-id order (arena layouts reorder them), so sort
        // the spans before the adjacency check.
        let mut spans: Vec<(usize, usize, usize)> = (0..self.rows)
            .filter(|&r| caps[r] > 0)
            .map(|r| (starts[r] as usize, caps[r] as usize, r))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            let ((s0, c0, r0), (s1, _, r1)) = (w[0], w[1]);
            if s0 + c0 > s1 {
                return Err(format!("row {r0} overlaps row {r1}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn matrix() -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows: 1000,
            cols: 1000,
            mean_degree: 7.0,
            max_degree: 200,
            pinned_max_rows: 1,
            col_skew: 0.4,
            seed: 77,
            ..Default::default()
        })
    }

    #[test]
    fn round_trip_preserves_matrix() {
        let m = matrix();
        let dev = Device::new(presets::gtx_titan());
        let a = AcsrMatrix::from_csr(&dev, &m, &AcsrConfig::for_device(dev.config()));
        a.validate().unwrap();
        assert_eq!(a.to_csr(), m);
        assert_eq!(a.nnz(), m.nnz());
    }

    #[test]
    fn slack_reserves_capacity() {
        let m = matrix();
        let dev = Device::new(presets::gtx_titan());
        let cfg = AcsrConfig::for_device(dev.config());
        let a = AcsrMatrix::from_csr(&dev, &m, &cfg);
        for r in 0..m.rows() {
            let cap = a.row_cap.as_slice()[r] as usize;
            let len = a.row_len.as_slice()[r] as usize;
            assert!(cap >= len + AcsrConfig::MIN_SLACK);
        }
        // storage strictly larger than packed CSR values+cols
        assert!(a.col_indices.len() > m.nnz());
    }

    #[test]
    fn zero_slack_is_compact_plus_min() {
        let m = matrix();
        let dev = Device::new(presets::gtx_titan());
        let mut cfg = AcsrConfig::for_device(dev.config());
        cfg.slack_fraction = 0.0;
        let a = AcsrMatrix::from_csr(&dev, &m, &cfg);
        assert_eq!(
            a.col_indices.len(),
            m.nnz() + m.rows() * AcsrConfig::MIN_SLACK
        );
    }

    #[test]
    fn row_lengths_match_source() {
        let m = matrix();
        let dev = Device::new(presets::gtx_titan());
        let a = AcsrMatrix::from_csr(&dev, &m, &AcsrConfig::for_device(dev.config()));
        for (r, len) in a.row_lengths().enumerate() {
            assert_eq!(len, m.row_nnz(r));
        }
    }
}
