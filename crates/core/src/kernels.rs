//! Bin-specific SpMV kernels (Algorithm 2) and the §VIII static
//! long-tail kernel.
//!
//! Each bin's kernel gives every row a thread group of
//! `2^(bin-1)` lanes (capped at one warp), so rows run at most two
//! strided iterations — the divergence-free execution binning buys.

use crate::matrix::AcsrMatrix;
use gpu_sim::engine::ConcurrentGroup;
use gpu_sim::{DeviceBuffer, WarpCtx, WARP};
use sparse_formats::Scalar;

/// Scatter zeros into `y` at the listed rows (covers empty rows and
/// pre-zeroes rows that will be accumulated atomically).
pub(crate) fn zero_rows_kernel<T: Scalar>(
    group: &mut ConcurrentGroup,
    rows_list: &DeviceBuffer<u32>,
    y: &DeviceBuffer<T>,
    name: &str,
) {
    let n = rows_list.len();
    let block = 256;
    let grid = n.div_ceil(block).max(1);
    group.add(name, grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let live = (n - base).min(WARP);
            let mask = gpu_sim::lane_mask(live);
            let rows = warp.read_coalesced(rows_list, base, mask);
            let idx: [usize; WARP] = std::array::from_fn(|i| rows[i] as usize);
            let zeros = [T::ZERO; WARP];
            warp.scatter(y, &idx, &zeros, mask);
        });
    });
}

/// Shared inner body: one warp processes `groups_per_warp` rows from
/// `rows_list` starting at list position `list_base`, `group` lanes per
/// row, writing (`overwrite`) or atomically accumulating into `y`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn warp_rows_body<T: Scalar>(
    warp: &mut WarpCtx,
    mat: &AcsrMatrix<T>,
    rows_list: &DeviceBuffer<u32>,
    list_base: usize,
    group: usize,
    texture_x: bool,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
) {
    let n = rows_list.len();
    if list_base >= n {
        return;
    }
    let groups_per_warp = WARP / group;
    let live_groups = (n - list_base).min(groups_per_warp);
    let mut mask = 0u32;
    for lane in 0..WARP {
        if lane / group < live_groups {
            mask |= 1 << lane;
        }
    }
    // Every lane of a group reads its group's list slot (one transaction).
    let lidx: [usize; WARP] =
        std::array::from_fn(|l| (list_base + (l / group).min(live_groups - 1)).min(n - 1));
    let rows = warp.gather(rows_list, &lidx, mask);
    let ridx: [usize; WARP] = std::array::from_fn(|l| rows[l] as usize);
    let starts = warp.gather(&mat.row_start, &ridx, mask);
    let lens = warp.gather(&mat.row_len, &ridx, mask);

    let mut iters = 0usize;
    for g in 0..live_groups {
        iters = iters.max((lens[g * group] as usize).div_ceil(group));
    }
    let mut acc = [T::ZERO; WARP];
    for it in 0..iters {
        let mut it_mask = 0u32;
        let mut idx = [0usize; WARP];
        for lane in 0..WARP {
            if mask >> lane & 1 == 0 {
                continue;
            }
            let o = it * group + lane % group;
            if o < lens[lane] as usize {
                it_mask |= 1 << lane;
                idx[lane] = starts[lane] as usize + o;
            }
        }
        if it_mask == 0 {
            continue;
        }
        let cols = warp.gather(&mat.col_indices, &idx, it_mask);
        let vals = warp.gather(&mat.values, &idx, it_mask);
        let xi: [usize; WARP] = std::array::from_fn(|i| cols[i] as usize);
        let xs = if texture_x {
            warp.gather_tex(x, &xi, it_mask)
        } else {
            warp.gather(x, &xi, it_mask)
        };
        for lane in 0..WARP {
            if it_mask >> lane & 1 == 1 {
                acc[lane] = vals[lane].mul_add(xs[lane], acc[lane]);
            }
        }
        warp.charge_fma(it_mask);
    }

    // Intra-group shuffle reduction (Algorithm 2's reduction step);
    // group leaders write their row's result.
    let reduced = warp.segmented_reduce_sum(&acc, group);
    let mut w_mask = 0u32;
    let mut w_idx = [0usize; WARP];
    let mut w_vals = [T::ZERO; WARP];
    for g in 0..live_groups {
        let lane0 = g * group;
        w_mask |= 1 << lane0;
        w_idx[lane0] = rows[lane0] as usize;
        w_vals[lane0] = reduced[lane0];
    }
    warp.scatter(y, &w_idx, &w_vals, w_mask);
}

/// Multi-vector variant of [`zero_rows_kernel`]: one launch scatters
/// zeros into every output vector of the batch. The listed rows are read
/// once; each vector's scatter is identical to the single-vector kernel's.
pub(crate) fn zero_rows_kernel_multi<T: Scalar>(
    group: &mut ConcurrentGroup,
    rows_list: &DeviceBuffer<u32>,
    ys: &[&DeviceBuffer<T>],
    name: &str,
) {
    let n = rows_list.len();
    let block = 256;
    let grid = n.div_ceil(block).max(1);
    group.add(name, grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let live = (n - base).min(WARP);
            let mask = gpu_sim::lane_mask(live);
            let rows = warp.read_coalesced(rows_list, base, mask);
            let idx: [usize; WARP] = std::array::from_fn(|i| rows[i] as usize);
            let zeros = [T::ZERO; WARP];
            for y in ys {
                warp.scatter(y, &idx, &zeros, mask);
            }
        });
    });
}

/// Multi-vector variant of [`warp_rows_body`]: the row list, row bounds
/// and the matrix's columns/values are gathered **once** per iteration
/// and reused for all k vectors of the batch — the amortization batching
/// buys. Each vector `v` sees exactly the float-op sequence the
/// single-vector body performs (same `mul_add` order, same segmented
/// reduction, same scatter), so `ys[v]` is bit-identical to a standalone
/// SpMV with `xs[v]`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn warp_rows_body_multi<T: Scalar>(
    warp: &mut WarpCtx,
    mat: &AcsrMatrix<T>,
    rows_list: &DeviceBuffer<u32>,
    list_base: usize,
    group: usize,
    texture_x: bool,
    xs: &[&DeviceBuffer<T>],
    ys: &[&DeviceBuffer<T>],
) {
    let n = rows_list.len();
    if list_base >= n {
        return;
    }
    let k = xs.len();
    let groups_per_warp = WARP / group;
    let live_groups = (n - list_base).min(groups_per_warp);
    let mut mask = 0u32;
    for lane in 0..WARP {
        if lane / group < live_groups {
            mask |= 1 << lane;
        }
    }
    let lidx: [usize; WARP] =
        std::array::from_fn(|l| (list_base + (l / group).min(live_groups - 1)).min(n - 1));
    let rows = warp.gather(rows_list, &lidx, mask);
    let ridx: [usize; WARP] = std::array::from_fn(|l| rows[l] as usize);
    let starts = warp.gather(&mat.row_start, &ridx, mask);
    let lens = warp.gather(&mat.row_len, &ridx, mask);

    let mut iters = 0usize;
    for g in 0..live_groups {
        iters = iters.max((lens[g * group] as usize).div_ceil(group));
    }
    let mut accs = vec![[T::ZERO; WARP]; k];
    for it in 0..iters {
        let mut it_mask = 0u32;
        let mut idx = [0usize; WARP];
        for lane in 0..WARP {
            if mask >> lane & 1 == 0 {
                continue;
            }
            let o = it * group + lane % group;
            if o < lens[lane] as usize {
                it_mask |= 1 << lane;
                idx[lane] = starts[lane] as usize + o;
            }
        }
        if it_mask == 0 {
            continue;
        }
        let cols = warp.gather(&mat.col_indices, &idx, it_mask);
        let vals = warp.gather(&mat.values, &idx, it_mask);
        let xi: [usize; WARP] = std::array::from_fn(|i| cols[i] as usize);
        for (v, x) in xs.iter().enumerate() {
            let xv = if texture_x {
                warp.gather_tex(x, &xi, it_mask)
            } else {
                warp.gather(x, &xi, it_mask)
            };
            let acc = &mut accs[v];
            for lane in 0..WARP {
                if it_mask >> lane & 1 == 1 {
                    acc[lane] = vals[lane].mul_add(xv[lane], acc[lane]);
                }
            }
            warp.charge_fma(it_mask);
        }
    }

    for (v, y) in ys.iter().enumerate() {
        let reduced = warp.segmented_reduce_sum(&accs[v], group);
        let mut w_mask = 0u32;
        let mut w_idx = [0usize; WARP];
        let mut w_vals = [T::ZERO; WARP];
        for g in 0..live_groups {
            let lane0 = g * group;
            w_mask |= 1 << lane0;
            w_idx[lane0] = rows[lane0] as usize;
            w_vals[lane0] = reduced[lane0];
        }
        warp.scatter(y, &w_idx, &w_vals, w_mask);
    }
}

/// Launch the bin-specific kernel for one bin (Algorithm 2).
#[allow(clippy::too_many_arguments)]
pub(crate) fn bin_kernel<T: Scalar>(
    launch_group: &mut ConcurrentGroup,
    mat: &AcsrMatrix<T>,
    rows_list: &DeviceBuffer<u32>,
    group: usize,
    texture_x: bool,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    name: &str,
) {
    assert!(group.is_power_of_two() && group <= WARP);
    let n = rows_list.len();
    let groups_per_warp = WARP / group;
    let warps = n.div_ceil(groups_per_warp).max(1);
    let block = 256;
    let grid = (warps * WARP).div_ceil(block).max(1);
    launch_group.add(name, grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let list_base = warp.global_warp_id() * groups_per_warp;
            warp_rows_body(warp, mat, rows_list, list_base, group, texture_x, x, y);
        });
    });
}

/// Multi-vector variant of [`bin_kernel`]: same grid shape (the batch
/// dimension rides inside each warp's body), k outputs per launch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bin_kernel_multi<T: Scalar>(
    launch_group: &mut ConcurrentGroup,
    mat: &AcsrMatrix<T>,
    rows_list: &DeviceBuffer<u32>,
    group: usize,
    texture_x: bool,
    xs: &[&DeviceBuffer<T>],
    ys: &[&DeviceBuffer<T>],
    name: &str,
) {
    assert!(group.is_power_of_two() && group <= WARP);
    let n = rows_list.len();
    let groups_per_warp = WARP / group;
    let warps = n.div_ceil(groups_per_warp).max(1);
    let block = 256;
    let grid = (warps * WARP).div_ceil(block).max(1);
    launch_group.add(name, grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let list_base = warp.global_warp_id() * groups_per_warp;
            warp_rows_body_multi(warp, mat, rows_list, list_base, group, texture_x, xs, ys);
        });
    });
}

/// §VIII static long-tail kernel: one 256-thread block per listed row,
/// all 8 warps striding the row; per-warp partial sums are atomically
/// accumulated into the (pre-zeroed) output — "static/hard-coded
/// parallelism" in place of dynamic launches.
pub(crate) fn static_long_tail_kernel<T: Scalar>(
    group: &mut ConcurrentGroup,
    mat: &AcsrMatrix<T>,
    rows_list: &DeviceBuffer<u32>,
    texture_x: bool,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
) {
    let n = rows_list.len();
    if n == 0 {
        return;
    }
    let block = 256;
    let warps_per_block = block / WARP;
    group.add("acsr_static_tail", n, block, &|blk| {
        let row_slot = blk.block_idx();
        blk.for_each_warp(&mut |warp| {
            // all lanes read the same list slot / row descriptor
            let lidx = [row_slot; WARP];
            let rows = warp.gather(rows_list, &lidx, gpu_sim::FULL_MASK);
            let row = rows[0] as usize;
            let starts = warp.gather(&mat.row_start, &[row; WARP], 1);
            let lens = warp.gather(&mat.row_len, &[row; WARP], 1);
            let start = starts[0] as usize;
            let len = lens[0] as usize;
            let w = warp.warp_in_block();
            let stride = warps_per_block * WARP;
            let mut acc = [T::ZERO; WARP];
            let mut off = w * WARP;
            while off < len {
                let mut m = 0u32;
                let mut idx = [0usize; WARP];
                for (lane, slot) in idx.iter_mut().enumerate() {
                    if off + lane < len {
                        m |= 1 << lane;
                        *slot = start + off + lane;
                    }
                }
                let cols = warp.gather(&mat.col_indices, &idx, m);
                let vals = warp.gather(&mat.values, &idx, m);
                let xi: [usize; WARP] = std::array::from_fn(|i| cols[i] as usize);
                let xs = if texture_x {
                    warp.gather_tex(x, &xi, m)
                } else {
                    warp.gather(x, &xi, m)
                };
                for lane in 0..WARP {
                    if m >> lane & 1 == 1 {
                        acc[lane] = vals[lane].mul_add(xs[lane], acc[lane]);
                    }
                }
                warp.charge_fma(m);
                off += stride;
            }
            let reduced = warp.segmented_reduce_sum(&acc, WARP);
            // warp leader accumulates the partial atomically (inter-warp
            // reduction)
            let idx = [row; WARP];
            warp.atomic_rmw(y, &idx, &reduced, 1, |a, b| a + b);
        });
    });
}

/// Multi-vector variant of [`static_long_tail_kernel`]. Columns/values
/// of each stride are gathered once and reused for all k vectors; for a
/// fixed vector `v`, every warp contributes its partial to `ys[v]` in
/// the same warp order as the single-vector kernel, and all of a row's
/// atomics stay within its one block (hence one simulator shard), so the
/// accumulated value is bit-stable at any `ACSR_SIM_THREADS` width.
pub(crate) fn static_long_tail_kernel_multi<T: Scalar>(
    group: &mut ConcurrentGroup,
    mat: &AcsrMatrix<T>,
    rows_list: &DeviceBuffer<u32>,
    texture_x: bool,
    xs: &[&DeviceBuffer<T>],
    ys: &[&DeviceBuffer<T>],
) {
    let n = rows_list.len();
    if n == 0 {
        return;
    }
    let k = xs.len();
    let block = 256;
    let warps_per_block = block / WARP;
    group.add("acsr_static_tail", n, block, &|blk| {
        let row_slot = blk.block_idx();
        blk.for_each_warp(&mut |warp| {
            let lidx = [row_slot; WARP];
            let rows = warp.gather(rows_list, &lidx, gpu_sim::FULL_MASK);
            let row = rows[0] as usize;
            let starts = warp.gather(&mat.row_start, &[row; WARP], 1);
            let lens = warp.gather(&mat.row_len, &[row; WARP], 1);
            let start = starts[0] as usize;
            let len = lens[0] as usize;
            let w = warp.warp_in_block();
            let stride = warps_per_block * WARP;
            let mut accs = vec![[T::ZERO; WARP]; k];
            let mut off = w * WARP;
            while off < len {
                let mut m = 0u32;
                let mut idx = [0usize; WARP];
                for (lane, slot) in idx.iter_mut().enumerate() {
                    if off + lane < len {
                        m |= 1 << lane;
                        *slot = start + off + lane;
                    }
                }
                let cols = warp.gather(&mat.col_indices, &idx, m);
                let vals = warp.gather(&mat.values, &idx, m);
                let xi: [usize; WARP] = std::array::from_fn(|i| cols[i] as usize);
                for (v, x) in xs.iter().enumerate() {
                    let xv = if texture_x {
                        warp.gather_tex(x, &xi, m)
                    } else {
                        warp.gather(x, &xi, m)
                    };
                    let acc = &mut accs[v];
                    for lane in 0..WARP {
                        if m >> lane & 1 == 1 {
                            acc[lane] = vals[lane].mul_add(xv[lane], acc[lane]);
                        }
                    }
                    warp.charge_fma(m);
                }
                off += stride;
            }
            let idx = [row; WARP];
            for (v, y) in ys.iter().enumerate() {
                let reduced = warp.segmented_reduce_sum(&accs[v], WARP);
                warp.atomic_rmw(y, &idx, &reduced, 1, |a, b| a + b);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::Binning;
    use crate::config::AcsrConfig;
    use gpu_sim::{presets, Device};
    use graphgen::{generate_power_law, PowerLawConfig};
    use sparse_formats::CsrMatrix;

    fn matrix(rows: usize, max: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 8.0,
            max_degree: max,
            pinned_max_rows: 2,
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn zero_rows_kernel_zeroes_only_listed_rows() {
        let dev = Device::new(presets::gtx_titan());
        let list = dev.alloc(vec![1u32, 3]);
        let y = dev.alloc(vec![9.0f64; 5]);
        let mut g = dev.launch_group("t");
        zero_rows_kernel(&mut g, &list, &y, "zero");
        g.finish();
        assert_eq!(y.as_slice(), &[9.0, 0.0, 9.0, 0.0, 9.0]);
    }

    #[test]
    fn bin_kernel_computes_its_rows() {
        let m = matrix(600, 64, 91);
        let dev = Device::new(presets::gtx_titan());
        let cfg = AcsrConfig::for_device(dev.config());
        let a = AcsrMatrix::from_csr(&dev, &m, &cfg);
        let (binning, _) = Binning::build((0..m.rows()).map(|r| m.row_nnz(r)), &cfg);
        let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 5) as f64).collect();
        let xd = dev.alloc(x.clone());
        let want = m.spmv(&x);
        for &bin in binning.g2_bins() {
            let rows = binning.bin_rows(bin).to_vec();
            let list = dev.alloc(rows.clone());
            let y = dev.alloc(vec![-1.0f64; m.rows()]);
            let mut g = dev.launch_group("t");
            bin_kernel(
                &mut g,
                &a,
                &list,
                Binning::group_for_bin(bin),
                true,
                &xd,
                &y,
                "bin",
            );
            g.finish();
            for &r in &rows {
                let got = y.as_slice()[r as usize];
                assert!(
                    (got - want[r as usize]).abs() < 1e-9,
                    "bin {bin} row {r}: {got} vs {}",
                    want[r as usize]
                );
            }
        }
    }

    #[test]
    fn static_tail_kernel_handles_huge_rows() {
        let m = matrix(2000, 1500, 92);
        let dev = Device::new(presets::gtx_titan());
        let cfg = AcsrConfig::for_device(dev.config());
        let a = AcsrMatrix::from_csr(&dev, &m, &cfg);
        let big: Vec<u32> = (0..m.rows() as u32)
            .filter(|&r| m.row_nnz(r as usize) > 1024)
            .collect();
        assert!(!big.is_empty());
        let x: Vec<f64> = (0..m.cols()).map(|i| 0.5 + (i % 3) as f64).collect();
        let xd = dev.alloc(x.clone());
        let want = m.spmv(&x);
        let list = dev.alloc(big.clone());
        let y = dev.alloc_zeroed::<f64>(m.rows());
        let mut g = dev.launch_group("t");
        static_long_tail_kernel(&mut g, &a, &list, true, &xd, &y);
        g.finish();
        for &r in &big {
            let got = y.as_slice()[r as usize];
            let w = want[r as usize];
            assert!(
                (got - w).abs() / w.abs().max(1.0) < 1e-9,
                "row {r}: {got} vs {w}"
            );
        }
    }
}
