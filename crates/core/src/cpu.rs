//! Multicore binned SpMV — the CPU counterpart of ACSR used by the
//! wall-clock Criterion benches.
//!
//! Binning serves the same purpose on a CPU as on a GPU: rows of similar
//! length are processed together, so the dynamic work-stealing grains of
//! `par-runtime` carry near-uniform cost and the scheduler never strands
//! a thread behind one power-law monster row (long rows are additionally
//! split across threads).

use crate::binning::Binning;
use crate::config::AcsrConfig;
use par_runtime::parallel_for;
use parking_lot::Mutex;
use sparse_formats::{CsrMatrix, Scalar};

/// Row-length threshold above which a row is processed split across
/// threads rather than by one.
const LONG_ROW: usize = 1 << 14;

/// CPU ACSR engine: a CSR matrix plus its binning.
pub struct CpuAcsr<T> {
    m: CsrMatrix<T>,
    binning: Binning,
}

impl<T: Scalar> CpuAcsr<T> {
    /// Bin `m`'s rows (the only preprocessing).
    pub fn new(m: CsrMatrix<T>) -> Self {
        let cfg = AcsrConfig {
            bin_max: usize::MAX,
            row_max: 0,
            thread_load: 1,
            mode: crate::config::AcsrMode::BinningOnly,
            texture_x: false,
            slack_fraction: 0.0,
        };
        let (binning, _) = Binning::build((0..m.rows()).map(|r| m.row_nnz(r)), &cfg);
        CpuAcsr { m, binning }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &CsrMatrix<T> {
        &self.m
    }

    /// `y = A * x`, bin-ordered and work-balanced.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.m.cols(), "x length mismatch");
        assert_eq!(y.len(), self.m.rows(), "y length mismatch");
        // Empty rows: zero their outputs.
        for &r in self.binning.bin_rows(0) {
            y[r as usize] = T::ZERO;
        }
        let y_cell = SliceCell(y.as_mut_ptr());
        for bin in 1..self.binning.n_bins() {
            let rows = self.binning.bin_rows(bin);
            if rows.is_empty() {
                continue;
            }
            let (_, hi) = Binning::range_of_bin(bin);
            if hi >= LONG_ROW {
                // long rows: parallelize within each row
                for &r in rows {
                    let r = r as usize;
                    let (cols, vals) = self.m.row(r);
                    let total = Mutex::new(T::ZERO);
                    parallel_for(cols.len(), 1 << 13, |range| {
                        let mut sum = T::ZERO;
                        for k in range {
                            sum = vals[k].mul_add(x[cols[k] as usize], sum);
                        }
                        *total.lock() += sum;
                    });
                    // SAFETY: each row index is written once per spmv.
                    unsafe { y_cell.write(r, total.into_inner()) };
                }
            } else {
                // grain sized so every grain carries similar nnz
                let grain = (LONG_ROW / hi.max(1)).clamp(16, 4096);
                parallel_for(rows.len(), grain, |range| {
                    for i in range {
                        let r = rows[i] as usize;
                        let (cols, vals) = self.m.row(r);
                        let mut sum = T::ZERO;
                        for (c, v) in cols.iter().zip(vals.iter()) {
                            sum = v.mul_add(x[*c as usize], sum);
                        }
                        // SAFETY: bins partition rows; each y[r] has one
                        // writer.
                        unsafe { y_cell.write(r, sum) };
                    }
                });
            }
        }
    }
}

/// Raw-pointer wrapper allowing disjoint-row writes from worker threads.
struct SliceCell<T>(*mut T);
unsafe impl<T> Sync for SliceCell<T> {}
impl<T> SliceCell<T> {
    /// # Safety
    /// Caller guarantees index `i` has exactly one writer and is in
    /// bounds of the wrapped slice.
    #[inline]
    unsafe fn write(&self, i: usize, v: T) {
        *self.0.add(i) = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn matrix(rows: usize, max: usize) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 10.0,
            max_degree: max,
            pinned_max_rows: 2,
            col_skew: 0.4,
            seed: 120,
            ..Default::default()
        })
    }

    #[test]
    fn matches_reference() {
        let m = matrix(8000, 2000);
        let x: Vec<f64> = (0..m.cols()).map(|i| 0.5 + (i % 11) as f64 * 0.1).collect();
        let eng = CpuAcsr::new(m.clone());
        let mut y = vec![-1.0; m.rows()];
        eng.spmv(&x, &mut y);
        let d = sparse_formats::scalar::rel_l2_distance(&y, &m.spmv(&x));
        assert!(d < 1e-12, "rel distance {d}");
    }

    #[test]
    fn long_rows_take_the_split_path() {
        let m = matrix(40_000, 1 << 15);
        assert!(m.row_stats().max_row >= LONG_ROW);
        let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 3) as f64).collect();
        let eng = CpuAcsr::new(m.clone());
        let mut y = vec![0.0; m.rows()];
        eng.spmv(&x, &mut y);
        let d = sparse_formats::scalar::rel_l2_distance(&y, &m.spmv(&x));
        assert!(d < 1e-10, "rel distance {d}");
    }

    #[test]
    fn empty_rows_are_zeroed() {
        let mut t = sparse_formats::TripletMatrix::<f64>::new(4, 4);
        t.push(1, 2, 3.0).unwrap();
        let m = t.to_csr();
        let eng = CpuAcsr::new(m);
        let mut y = vec![9.0; 4];
        eng.spmv(&[1.0, 1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![0.0, 3.0, 0.0, 0.0]);
    }
}
