//! ACSR tuning knobs (paper §III).

use gpu_sim::DeviceConfig;

/// How the long-tail bins (group G1) are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcsrMode {
    /// Bin-specific kernels for G2, dynamic-parallelism parent/child
    /// grids for G1 (Algorithm 1 with `RowMax > 0`). Requires compute
    /// capability ≥ 3.5 — the GTX Titan path.
    DynamicParallelism,
    /// Binning only: every bin goes through a bin-specific kernel, with
    /// thread groups capped at one warp (`RowMax = 0`) — the GTX 580 /
    /// Tesla K10 path of §V.
    BinningOnly,
    /// §VIII's "extending the number of bins in the long tail": tail bins
    /// get statically sized multi-warp kernels instead of dynamic
    /// launches — the multi-GPU configuration on the K10.
    StaticLongTail,
}

/// ACSR configuration (Algorithm 1's parameters).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AcsrConfig {
    /// `BinMax`: the largest bin index served by a bin-specific kernel.
    /// Rows in bins above this (nnz > 2^bin_max) form group G1.
    pub bin_max: usize,
    /// `RowMax`: the largest number of rows processed by row-specific
    /// (child) grids — bounded by the device's pending-launch limit.
    /// G1 rows beyond this fall back to the widest bin kernel.
    pub row_max: usize,
    /// `ThreadLoad`: non-zeros per child-grid thread (thread coarsening,
    /// Algorithm 3).
    pub thread_load: usize,
    /// Long-tail execution mode.
    pub mode: AcsrMode,
    /// Read `x` through the texture cache (paper default: yes).
    pub texture_x: bool,
    /// Per-row slack reserved for incremental updates, as a fraction of
    /// the row's initial length (§VII "some additional memory is reserved
    /// at the end of each CSR row"). Each row also gets
    /// [`AcsrConfig::MIN_SLACK`] absolute slots. The default of 1.0
    /// covers the paper's update protocol exactly: scanning a row's
    /// columns and replacing deletions with insertions can at most double
    /// the row.
    pub slack_fraction: f64,
}

impl AcsrConfig {
    /// Minimum absolute slack slots per row.
    pub const MIN_SLACK: usize = 8;

    /// Paper defaults for a device: dynamic parallelism where supported
    /// (`RowMax` = pending-launch limit = 2048, §III-B), binning-only
    /// elsewhere.
    pub fn for_device(cfg: &DeviceConfig) -> AcsrConfig {
        if cfg.has_dynamic_parallelism() {
            AcsrConfig {
                bin_max: 10, // bin kernels up to 1024-nnz rows; DP beyond
                row_max: cfg.pending_launch_limit,
                thread_load: 4,
                mode: AcsrMode::DynamicParallelism,
                texture_x: true,
                slack_fraction: 1.0,
            }
        } else {
            AcsrConfig {
                bin_max: usize::MAX, // every bin is a G2 bin
                row_max: 0,
                thread_load: 4,
                mode: AcsrMode::BinningOnly,
                texture_x: true,
                slack_fraction: 1.0,
            }
        }
    }

    /// §VIII configuration: static long-tail kernels (e.g. for the K10).
    pub fn static_long_tail() -> AcsrConfig {
        AcsrConfig {
            bin_max: 10,
            row_max: usize::MAX,
            thread_load: 4,
            mode: AcsrMode::StaticLongTail,
            texture_x: true,
            slack_fraction: 1.0,
        }
    }

    /// Effective `BinMax` after mode adjustments (binning-only treats all
    /// bins as G2, per Algorithm 1's `RowMax = 0` note).
    pub fn effective_bin_max(&self) -> usize {
        match self.mode {
            AcsrMode::BinningOnly => usize::MAX,
            _ => self.bin_max,
        }
    }

    /// Per-row capacity for a row of `len` non-zeros under the slack
    /// policy.
    pub fn row_capacity(&self, len: usize) -> usize {
        len + Self::MIN_SLACK + (len as f64 * self.slack_fraction).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;

    #[test]
    fn titan_gets_dynamic_parallelism() {
        let c = AcsrConfig::for_device(&presets::gtx_titan());
        assert_eq!(c.mode, AcsrMode::DynamicParallelism);
        assert_eq!(c.row_max, 2048);
    }

    #[test]
    fn fermi_gets_binning_only() {
        let c = AcsrConfig::for_device(&presets::gtx_580());
        assert_eq!(c.mode, AcsrMode::BinningOnly);
        assert_eq!(c.row_max, 0);
        assert_eq!(c.effective_bin_max(), usize::MAX);
    }

    #[test]
    fn k10_gets_binning_only_too() {
        let c = AcsrConfig::for_device(&presets::tesla_k10_single());
        assert_eq!(c.mode, AcsrMode::BinningOnly);
    }

    #[test]
    fn row_capacity_includes_slack() {
        let c = AcsrConfig::for_device(&presets::gtx_titan());
        assert!(c.row_capacity(0) >= AcsrConfig::MIN_SLACK);
        assert!(c.row_capacity(100) >= 200 + AcsrConfig::MIN_SLACK);
    }
}
