//! Dynamic-parallelism path — Algorithms 3 and 4.
//!
//! A *parent* grid holds one control thread per long-tail (G1) row. Each
//! parent thread reads its row's bounds and launches a *row-specific
//! child grid* of `ceil(nnz / ThreadLoad)` worker threads on its own
//! stream. Children stride the row coalesced, reduce within warps via
//! shuffles, and finish with an inter-warp reduction (atomics into the
//! pre-zeroed output) — Algorithm 4's two-level reduction. Parent threads
//! "are only used for control purposes and do not perform any actual
//! computations".

use crate::matrix::AcsrMatrix;
use gpu_sim::engine::ConcurrentGroup;
use gpu_sim::{DeviceBuffer, WARP};
use sparse_formats::Scalar;

/// Launch the DP parent kernel over the G1 row list. `y` rows for G1 must
/// be pre-zeroed (the engine's zero-scatter pass does this).
#[allow(clippy::too_many_arguments)]
pub(crate) fn dp_parent_kernel<T: Scalar>(
    group: &mut ConcurrentGroup,
    mat: &AcsrMatrix<T>,
    g1_rows: &DeviceBuffer<u32>,
    thread_load: usize,
    texture_x: bool,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
) {
    let n = g1_rows.len();
    if n == 0 {
        return;
    }
    let thread_load = thread_load.max(1);
    let block = 256;
    let grid = n.div_ceil(block).max(1);
    group.add("acsr_dp_parent", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let live = (n - base).min(WARP);
            let mask = gpu_sim::lane_mask(live);
            let rows = warp.read_coalesced(g1_rows, base, mask);
            let ridx: [usize; WARP] = std::array::from_fn(|i| rows[i] as usize);
            let starts = warp.gather(&mat.row_start, &ridx, mask);
            let lens = warp.gather(&mat.row_len, &ridx, mask);
            // Each parent thread (lane) launches its row's child grid.
            for lane in 0..live {
                let row = rows[lane] as usize;
                let start = starts[lane] as usize;
                let len = lens[lane] as usize;
                if len == 0 {
                    continue;
                }
                let b_size = len.div_ceil(thread_load);
                let child_blocks = b_size.div_ceil(256).max(1);
                let total_threads = child_blocks * 256;
                warp.launch_child(child_blocks, 256, move |child| {
                    row_child_body(child, mat, row, start, len, total_threads, texture_x, x, y);
                });
            }
        });
    });
}

/// Multi-vector variant of [`dp_parent_kernel`]: one child grid per G1
/// row serves the whole batch (the child's shape is that of the
/// single-vector child, so the batch amortizes the device-side launch
/// overhead k-fold). `ys` rows for G1 must be pre-zeroed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dp_parent_kernel_multi<T: Scalar>(
    group: &mut ConcurrentGroup,
    mat: &AcsrMatrix<T>,
    g1_rows: &DeviceBuffer<u32>,
    thread_load: usize,
    texture_x: bool,
    xs: &[&DeviceBuffer<T>],
    ys: &[&DeviceBuffer<T>],
) {
    let n = g1_rows.len();
    if n == 0 {
        return;
    }
    let thread_load = thread_load.max(1);
    let block = 256;
    let grid = n.div_ceil(block).max(1);
    group.add("acsr_dp_parent", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let live = (n - base).min(WARP);
            let mask = gpu_sim::lane_mask(live);
            let rows = warp.read_coalesced(g1_rows, base, mask);
            let ridx: [usize; WARP] = std::array::from_fn(|i| rows[i] as usize);
            let starts = warp.gather(&mat.row_start, &ridx, mask);
            let lens = warp.gather(&mat.row_len, &ridx, mask);
            for lane in 0..live {
                let row = rows[lane] as usize;
                let start = starts[lane] as usize;
                let len = lens[lane] as usize;
                if len == 0 {
                    continue;
                }
                let b_size = len.div_ceil(thread_load);
                let child_blocks = b_size.div_ceil(256).max(1);
                let total_threads = child_blocks * 256;
                warp.launch_child(child_blocks, 256, move |child| {
                    row_child_body_multi(
                        child,
                        mat,
                        row,
                        start,
                        len,
                        total_threads,
                        texture_x,
                        xs,
                        ys,
                    );
                });
            }
        });
    });
}

/// Algorithm 4: the row-specific worker grid body. Threads stride the row
/// (`element = iter * total_threads + tid`), so consecutive lanes always
/// read consecutive addresses.
#[allow(clippy::too_many_arguments)]
fn row_child_body<T: Scalar>(
    child: &mut gpu_sim::BlockCtx,
    mat: &AcsrMatrix<T>,
    row: usize,
    start: usize,
    len: usize,
    total_threads: usize,
    texture_x: bool,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
) {
    let block_off = child.thread_offset();
    child.for_each_warp(&mut |warp| {
        let warp_off = block_off + warp.warp_in_block() * WARP;
        let mut acc = [T::ZERO; WARP];
        let mut iter = 0usize;
        loop {
            let base = iter * total_threads + warp_off;
            if base >= len {
                break;
            }
            let mut m = 0u32;
            let mut idx = [0usize; WARP];
            for (lane, slot) in idx.iter_mut().enumerate() {
                if base + lane < len {
                    m |= 1 << lane;
                    *slot = start + base + lane;
                }
            }
            let cols = warp.gather(&mat.col_indices, &idx, m);
            let vals = warp.gather(&mat.values, &idx, m);
            let xi: [usize; WARP] = std::array::from_fn(|i| cols[i] as usize);
            let xs = if texture_x {
                warp.gather_tex(x, &xi, m)
            } else {
                warp.gather(x, &xi, m)
            };
            for lane in 0..WARP {
                if m >> lane & 1 == 1 {
                    acc[lane] = vals[lane].mul_add(xs[lane], acc[lane]);
                }
            }
            warp.charge_fma(m);
            iter += 1;
        }
        // Intra-warp reduction...
        let reduced = warp.segmented_reduce_sum(&acc, WARP);
        // ...then the inter-warp reduction via one atomic per warp.
        let idx = [row; WARP];
        warp.atomic_rmw(y, &idx, &reduced, 1, |a, b| a + b);
    });
}

/// Multi-vector Algorithm 4 body: the matrix strides are gathered once
/// per iteration and reused for all k vectors; per vector the reduction
/// and the per-warp atomic follow the single-vector order exactly.
#[allow(clippy::too_many_arguments)]
fn row_child_body_multi<T: Scalar>(
    child: &mut gpu_sim::BlockCtx,
    mat: &AcsrMatrix<T>,
    row: usize,
    start: usize,
    len: usize,
    total_threads: usize,
    texture_x: bool,
    xs: &[&DeviceBuffer<T>],
    ys: &[&DeviceBuffer<T>],
) {
    let k = xs.len();
    let block_off = child.thread_offset();
    child.for_each_warp(&mut |warp| {
        let warp_off = block_off + warp.warp_in_block() * WARP;
        let mut accs = vec![[T::ZERO; WARP]; k];
        let mut iter = 0usize;
        loop {
            let base = iter * total_threads + warp_off;
            if base >= len {
                break;
            }
            let mut m = 0u32;
            let mut idx = [0usize; WARP];
            for (lane, slot) in idx.iter_mut().enumerate() {
                if base + lane < len {
                    m |= 1 << lane;
                    *slot = start + base + lane;
                }
            }
            let cols = warp.gather(&mat.col_indices, &idx, m);
            let vals = warp.gather(&mat.values, &idx, m);
            let xi: [usize; WARP] = std::array::from_fn(|i| cols[i] as usize);
            for (v, x) in xs.iter().enumerate() {
                let xv = if texture_x {
                    warp.gather_tex(x, &xi, m)
                } else {
                    warp.gather(x, &xi, m)
                };
                let acc = &mut accs[v];
                for lane in 0..WARP {
                    if m >> lane & 1 == 1 {
                        acc[lane] = vals[lane].mul_add(xv[lane], acc[lane]);
                    }
                }
                warp.charge_fma(m);
            }
            iter += 1;
        }
        let idx = [row; WARP];
        for (v, y) in ys.iter().enumerate() {
            let reduced = warp.segmented_reduce_sum(&accs[v], WARP);
            warp.atomic_rmw(y, &idx, &reduced, 1, |a, b| a + b);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcsrConfig;
    use gpu_sim::{presets, Device, RunReport};
    use graphgen::{generate_power_law, PowerLawConfig};

    /// Test helper: run the parent kernel as its own group.
    #[allow(clippy::too_many_arguments)]
    fn run_dp(
        dev: &Device,
        mat: &AcsrMatrix<f64>,
        list: &DeviceBuffer<u32>,
        thread_load: usize,
        x: &DeviceBuffer<f64>,
        y: &DeviceBuffer<f64>,
    ) -> RunReport {
        let mut group = dev.launch_group("dp_test");
        dp_parent_kernel(&mut group, mat, list, thread_load, true, x, y);
        group.finish()
    }

    fn long_tail_matrix() -> sparse_formats::CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows: 3000,
            cols: 3000,
            mean_degree: 5.0,
            max_degree: 1400,
            pinned_max_rows: 3,
            col_skew: 0.3,
            seed: 97,
            ..Default::default()
        })
    }

    #[test]
    fn children_compute_their_rows_exactly() {
        let m = long_tail_matrix();
        let dev = Device::new(presets::gtx_titan());
        let cfg = AcsrConfig::for_device(dev.config());
        let a = AcsrMatrix::from_csr(&dev, &m, &cfg);
        let big: Vec<u32> = (0..m.rows() as u32)
            .filter(|&r| m.row_nnz(r as usize) > 1024)
            .collect();
        assert_eq!(big.len(), 3);
        let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 4) as f64 * 0.5).collect();
        let xd = dev.alloc(x.clone());
        let want = m.spmv(&x);
        let list = dev.alloc(big.clone());
        let y = dev.alloc_zeroed::<f64>(m.rows());
        let r = run_dp(&dev, &a, &list, 4, &xd, &y);
        assert_eq!(r.counters.child_launches, 3);
        for &row in &big {
            let got = y.as_slice()[row as usize];
            let w = want[row as usize];
            assert!((got - w).abs() / w.abs().max(1.0) < 1e-9, "row {row}");
        }
        // a row outside the G1 list stays untouched (zero)
        let small = (0..m.rows() as u32)
            .find(|r| !big.contains(r))
            .expect("some row is small");
        assert_eq!(y.as_slice()[small as usize], 0.0);
    }

    #[test]
    fn thread_load_trades_children_size_for_count() {
        let m = long_tail_matrix();
        let dev = Device::new(presets::gtx_titan());
        let cfg = AcsrConfig::for_device(dev.config());
        let a = AcsrMatrix::from_csr(&dev, &m, &cfg);
        let big: Vec<u32> = (0..m.rows() as u32)
            .filter(|&r| m.row_nnz(r as usize) > 1024)
            .collect();
        let x: Vec<f64> = (0..m.cols()).map(|_| 1.0).collect();
        let xd = dev.alloc(x);
        let list = dev.alloc(big);
        let run = |tl: usize| {
            let y = dev.alloc_zeroed::<f64>(m.rows());
            run_dp(&dev, &a, &list, tl, &xd, &y)
        };
        let r1 = run(1);
        let r8 = run(8);
        // same children count, but far fewer worker warps with coarsening
        assert_eq!(r1.counters.child_launches, r8.counters.child_launches);
        assert!(r1.counters.warps > r8.counters.warps);
    }

    #[test]
    fn empty_g1_list_is_a_noop() {
        let m = long_tail_matrix();
        let dev = Device::new(presets::gtx_titan());
        let cfg = AcsrConfig::for_device(dev.config());
        let a = AcsrMatrix::from_csr(&dev, &m, &cfg);
        let xd = dev.alloc(vec![1.0f64; m.cols()]);
        let list = dev.alloc(Vec::<u32>::new());
        let y = dev.alloc_zeroed::<f64>(m.rows());
        let r = run_dp(&dev, &a, &list, 4, &xd, &y);
        assert_eq!(r.counters.child_launches, 0);
    }
}
