//! Property tests for the ACSR engine: for *arbitrary* matrices and
//! configurations, the simulated SpMV must match the sequential
//! reference exactly, binning must partition the rows, and device-side
//! updates must track the host reference through arbitrary batches.

use acsr::{AcsrConfig, AcsrEngine, AcsrMode, Binning};
use gpu_sim::{presets, Device};
use proptest::prelude::*;
use sparse_formats::{CsrMatrix, TripletMatrix, UpdateBatch};
use spmv_kernels::GpuSpmv;

fn arb_matrix() -> impl Strategy<Value = CsrMatrix<f64>> {
    (1usize..60, 1usize..60).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, 0.1f64..4.0);
        proptest::collection::vec(entry, 0..400).prop_map(move |entries| {
            let mut t = TripletMatrix::new(rows, cols);
            for (r, c, v) in entries {
                t.push(r, c, v).unwrap();
            }
            t.to_csr()
        })
    })
}

fn arb_config() -> impl Strategy<Value = AcsrConfig> {
    (
        1usize..16,                                     // bin_max
        prop::sample::select(vec![0usize, 1, 4, 2048]), // row_max
        1usize..8,                                      // thread_load
        prop::sample::select(vec![
            AcsrMode::DynamicParallelism,
            AcsrMode::BinningOnly,
            AcsrMode::StaticLongTail,
        ]),
        any::<bool>(), // texture_x
    )
        .prop_map(
            |(bin_max, row_max, thread_load, mode, texture_x)| AcsrConfig {
                bin_max,
                row_max: if mode == AcsrMode::BinningOnly {
                    0
                } else {
                    row_max
                },
                thread_load,
                mode,
                texture_x,
                slack_fraction: 1.0,
            },
        )
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.iter()
        .zip(b.iter())
        .all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn spmv_matches_reference_for_any_config((m, cfg, x) in
        (arb_matrix(), arb_config()).prop_flat_map(|(m, cfg)| {
            let cols = m.cols();
            (Just(m), Just(cfg), proptest::collection::vec(-3.0f64..3.0, cols..=cols))
        })
    ) {
        let dev = Device::new(presets::gtx_titan());
        let engine = AcsrEngine::from_csr(&dev, &m, cfg);
        let xd = dev.alloc(x.clone());
        let yd = dev.alloc(vec![f64::NAN; m.rows()]); // must be fully overwritten
        engine.spmv(&dev, &xd, &yd);
        let want = m.spmv(&x);
        prop_assert!(yd.as_slice().iter().all(|v| v.is_finite()));
        prop_assert!(close(yd.as_slice(), &want));
    }

    #[test]
    fn binning_partitions_rows_exactly_once((m, cfg) in (arb_matrix(), arb_config())) {
        let (binning, _) = Binning::build((0..m.rows()).map(|r| m.row_nnz(r)), &cfg);
        let mut count = vec![0usize; m.rows()];
        for b in 0..binning.n_bins() {
            for &r in binning.bin_rows(b) {
                count[r as usize] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
        // G1 + overflow rows are exactly the rows in bins above bin_max
        let bin_max = cfg.effective_bin_max();
        let expected_g1: usize = (0..m.rows())
            .filter(|&r| sparse_formats::stats::bin_index(m.row_nnz(r)) > bin_max)
            .count();
        prop_assert_eq!(
            binning.g1_rows().len() + binning.overflow_rows().len(),
            expected_g1
        );
        prop_assert!(binning.g1_rows().len() <= cfg.row_max);
    }

    #[test]
    fn matrix_round_trips_through_slack_layout((m, cfg) in (arb_matrix(), arb_config())) {
        let dev = Device::new(presets::gtx_titan());
        let a = acsr::AcsrMatrix::from_csr(&dev, &m, &cfg);
        a.validate().unwrap();
        prop_assert_eq!(a.to_csr(), m);
    }
}

/// Random (valid) update batch against `m`.
fn arb_batch(m: CsrMatrix<f64>) -> impl Strategy<Value = (CsrMatrix<f64>, UpdateBatch<f64>)> {
    let rows = m.rows();
    let cols = m.cols();
    proptest::collection::btree_set(0..rows as u32, 0..rows.min(6)).prop_perturb(
        move |touched, mut rng| {
            use rand::Rng;
            let mut b = UpdateBatch::<f64>::empty();
            for r in touched {
                b.rows.push(r);
                let (rcols, _) = m.row(r as usize);
                for &c in rcols {
                    if rng.random::<f64>() < 0.5 {
                        b.delete_cols.push(c);
                    }
                }
                b.delete_offsets.push(b.delete_cols.len() as u32);
                let mut ins: Vec<u32> = Vec::new();
                for _ in 0..rng.random_range(0..4usize) {
                    let c = rng.random_range(0..cols as u32);
                    if rcols.binary_search(&c).is_err() && !ins.contains(&c) {
                        ins.push(c);
                    }
                }
                ins.sort_unstable();
                for c in ins {
                    b.insert_cols.push(c);
                    b.insert_vals.push(0.5 + (c % 7) as f64);
                }
                b.insert_offsets.push(b.insert_cols.len() as u32);
            }
            (m.clone(), b)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn device_updates_track_host_reference((m, batch) in
        arb_matrix().prop_flat_map(arb_batch)
    ) {
        batch.validate().unwrap();
        let dev = Device::new(presets::gtx_titan());
        let mut engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        let report = engine.apply_update(&dev, &batch);
        let want = batch.apply_to_csr(&m);
        prop_assert_eq!(engine.matrix().to_csr(), want.clone());
        prop_assert_eq!(report.nnz_after, want.nnz());
        engine.matrix().validate().unwrap();
    }

    #[test]
    fn sequences_of_updates_stay_consistent((m, b1) in
        arb_matrix().prop_flat_map(arb_batch)
    ) {
        // apply the same batch twice through fresh generation each time:
        // second application must be a no-op for deletes of now-absent
        // columns and overwrite already-present inserts
        let dev = Device::new(presets::gtx_titan());
        let mut engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
        engine.apply_update(&dev, &b1);
        let after_one = engine.matrix().to_csr();
        engine.apply_update(&dev, &b1);
        let want = b1.apply_to_csr(&after_one);
        prop_assert_eq!(engine.matrix().to_csr(), want);
    }
}
