//! Multi-vector (batched) ACSR must be a pure throughput optimization:
//! for ANY matrix, batch size, mode and host worker width, `spmv_multi`
//! over k vectors must produce outputs **bit-identical** to k sequential
//! `spmv` calls — same bins, same kernels, same float-op order per
//! vector (see `acsr::kernels`' multi variants).
//!
//! Width coverage follows the simulator's determinism envelope: in
//! `StaticLongTail` and `BinningOnly` modes every output value is
//! bit-stable at any `ACSR_SIM_THREADS` width (a row's atomics never
//! cross a shard), so batched and sequential runs are compared at widths
//! 1, 2 and 4. `DynamicParallelism` spreads a row's child blocks across
//! shards — its float accumulation order is only pinned at width 1
//! (`gpu-sim/tests/proptest_determinism.rs`), so DP is compared there.

use acsr::{AcsrConfig, AcsrEngine, AcsrMode};
use gpu_sim::{presets, set_sim_threads, Device, DeviceBuffer, RunReport};
use graphgen::{generate_power_law, PowerLawConfig};
use proptest::prelude::*;
use spmv_kernels::{GpuSpmv, GpuSpmvMulti};
use std::sync::Mutex;

/// `set_sim_threads` is process-global; hold this across width changes.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn arb_matrix() -> impl Strategy<Value = sparse_formats::CsrMatrix<f64>> {
    (100usize..700, 4u64..2000, 0usize..3, any::<bool>()).prop_map(|(rows, seed, pinned, wide)| {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 7.0,
            // with `wide`, some rows exceed the 1024-nnz G1 threshold
            max_degree: if wide { 1500 } else { rows / 2 + 4 },
            pinned_max_rows: pinned,
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    })
}

fn batch_x(cols: usize, k: usize) -> Vec<Vec<f64>> {
    (0..k)
        .map(|v| {
            (0..cols)
                .map(|i| 0.25 + ((i * (v + 3) + v) % 23) as f64 * 0.125)
                .collect()
        })
        .collect()
}

/// Run k sequential SpMVs and one batched SpMM on `engine`; assert every
/// output pair is bit-identical. Returns the batched report.
fn assert_batch_matches_sequential(
    dev: &Device,
    engine: &AcsrEngine<f64>,
    xs_host: &[Vec<f64>],
) -> RunReport {
    let rows = engine.rows();
    let xs: Vec<DeviceBuffer<f64>> = xs_host.iter().map(|x| dev.alloc(x.clone())).collect();
    // garbage fill: spmv must fully overwrite its rows
    let ys_seq: Vec<DeviceBuffer<f64>> = xs.iter().map(|_| dev.alloc(vec![-7.0; rows])).collect();
    let ys_multi: Vec<DeviceBuffer<f64>> = xs.iter().map(|_| dev.alloc(vec![-9.0; rows])).collect();
    for (x, y) in xs.iter().zip(&ys_seq) {
        engine.spmv(dev, x, y);
    }
    let xr: Vec<&DeviceBuffer<f64>> = xs.iter().collect();
    let yr: Vec<&DeviceBuffer<f64>> = ys_multi.iter().collect();
    let report = engine.spmv_multi(dev, &xr, &yr);
    for (v, (ys, ym)) in ys_seq.iter().zip(&ys_multi).enumerate() {
        for (r, (a, b)) in ys.as_slice().iter().zip(ym.as_slice()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "vector {v} row {r}: sequential {a} vs batched {b}"
            );
        }
    }
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// StaticLongTail / BinningOnly: bit-identical at every worker width,
    /// and the batched report itself is width-independent.
    #[test]
    fn batched_matches_sequential_across_widths(
        m in arb_matrix(),
        k in 1usize..6,
        static_tail in any::<bool>(),
    ) {
        let _g = WIDTH_LOCK.lock().unwrap();
        let dev = Device::new(presets::gtx_titan());
        let cfg = if static_tail {
            AcsrConfig::static_long_tail()
        } else {
            AcsrConfig::for_device(&presets::gtx_580())
        };
        prop_assert_ne!(cfg.mode, AcsrMode::DynamicParallelism);
        let engine = AcsrEngine::from_csr(&dev, &m, cfg);
        let xs_host = batch_x(m.cols(), k);
        let mut reports: Vec<RunReport> = Vec::new();
        for width in [1usize, 2, 4] {
            set_sim_threads(width);
            reports.push(assert_batch_matches_sequential(&dev, &engine, &xs_host));
        }
        set_sim_threads(0);
        for r in &reports[1..] {
            prop_assert_eq!(&reports[0].counters, &r.counters);
            prop_assert_eq!(reports[0].time_s.to_bits(), r.time_s.to_bits());
        }
    }

    /// DynamicParallelism: bit-identical at width 1 (the width at which
    /// cross-shard atomic order — batched or not — is pinned).
    #[test]
    fn batched_matches_sequential_dp_mode(m in arb_matrix(), k in 1usize..6) {
        let _g = WIDTH_LOCK.lock().unwrap();
        let dev = Device::new(presets::gtx_titan());
        let cfg = AcsrConfig::for_device(dev.config());
        prop_assert_eq!(cfg.mode, AcsrMode::DynamicParallelism);
        let engine = AcsrEngine::from_csr(&dev, &m, cfg);
        let xs_host = batch_x(m.cols(), k);
        set_sim_threads(1);
        assert_batch_matches_sequential(&dev, &engine, &xs_host);
        set_sim_threads(0);
    }

    /// Batching must strictly beat sequential launches on modeled time
    /// (the launch floor and matrix traffic are amortized across the
    /// batch) while issuing the same kernel count as ONE SpMV.
    #[test]
    fn batching_amortizes_modeled_time(m in arb_matrix(), k in 2usize..6) {
        let _g = WIDTH_LOCK.lock().unwrap();
        set_sim_threads(1);
        let dev = Device::new(presets::gtx_titan());
        let engine = AcsrEngine::from_csr(&dev, &m, AcsrConfig::static_long_tail());
        let xs_host = batch_x(m.cols(), k);
        let xs: Vec<DeviceBuffer<f64>> = xs_host.iter().map(|x| dev.alloc(x.clone())).collect();
        let ys: Vec<DeviceBuffer<f64>> =
            xs.iter().map(|_| dev.alloc_zeroed::<f64>(m.rows())).collect();
        let single = engine.spmv(&dev, &xs[0], &ys[0]);
        let mut seq = RunReport::default();
        for (x, y) in xs.iter().zip(&ys) {
            seq = seq.then(&engine.spmv(&dev, x, y));
        }
        let xr: Vec<&DeviceBuffer<f64>> = xs.iter().collect();
        let yr: Vec<&DeviceBuffer<f64>> = ys.iter().collect();
        let multi = engine.spmv_multi(&dev, &xr, &yr);
        set_sim_threads(0);
        prop_assert_eq!(multi.launches, single.launches);
        prop_assert!(multi.time_s < seq.time_s,
            "batched {} s should beat {} s sequential (k={})", multi.time_s, seq.time_s, k);
    }
}
