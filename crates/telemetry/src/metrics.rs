//! The named-metric registry: counters, gauges, and log-bucketed
//! histograms behind one mutex, snapshotting to a byte-stable
//! `acsr-metrics-v1` JSON document.
//!
//! Counters are `u64` and integer-exact — they are what the
//! reconciliation checks compare against `ServeReport` / maintenance
//! -ledger fields. Gauges are last-write-wins `f64`. Histograms are
//! [`LogHistogram`]s. Names sort the snapshot (`BTreeMap`), and every
//! float serializes with `{:?}`, so the same run produces byte-identical
//! output on every `ACSR_SIM_THREADS` width — the golden and proptests
//! rely on this.

use crate::hist::LogHistogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One metric's current value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(LogHistogram),
}

/// A thread-safe registry of named metrics. Recording takes one short
/// mutex hold; consumers that hold no registry (`Option` = `None`) pay
/// a single branch — telemetry is zero-cost when disabled.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, MetricValue>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to the counter `name` (created at 0).
    /// Panics if `name` is already a gauge or histogram.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += delta,
            other => panic!("metric '{name}' is not a counter: {other:?}"),
        }
    }

    /// Set the gauge `name` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert(MetricValue::Gauge(0.0))
        {
            MetricValue::Gauge(v) => *v = value,
            other => panic!("metric '{name}' is not a gauge: {other:?}"),
        }
    }

    /// Record one sample into the histogram `name`.
    pub fn observe(&self, name: &str, sample: f64) {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(LogHistogram::new()))
        {
            MetricValue::Histogram(h) => h.observe(sample),
            other => panic!("metric '{name}' is not a histogram: {other:?}"),
        }
    }

    /// Current value of the counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.inner.lock().get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Fold a snapshot into this registry: counters add, gauges take the
    /// snapshot's value, histograms merge. This is how a scoped per-run
    /// registry (already reconciled against its run's report) folds into
    /// the shared process registry.
    pub fn merge_snapshot(&self, snap: &MetricsSnapshot) {
        let mut inner = self.inner.lock();
        for (name, value) in &snap.entries {
            match value {
                MetricValue::Counter(d) => {
                    match inner.entry(name.clone()).or_insert(MetricValue::Counter(0)) {
                        MetricValue::Counter(v) => *v += d,
                        other => panic!("metric '{name}' is not a counter: {other:?}"),
                    }
                }
                MetricValue::Gauge(g) => {
                    inner.insert(name.clone(), MetricValue::Gauge(*g));
                }
                MetricValue::Histogram(h) => {
                    match inner
                        .entry(name.clone())
                        .or_insert_with(|| MetricValue::Histogram(LogHistogram::new()))
                    {
                        MetricValue::Histogram(v) => v.merge(h),
                        other => panic!("metric '{name}' is not a histogram: {other:?}"),
                    }
                }
            }
        }
    }

    /// Name-sorted snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .inner
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Drop every metric.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// An immutable, name-sorted copy of a registry's metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, ascending by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value (`None` when absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value (`None` when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram (`None` when absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Serialize under the `acsr-metrics-v1` schema. Hand-rolled with a
    /// fixed field order and `{:?}` float formatting — same snapshot,
    /// same bytes (the golden test and cross-width proptests pin this).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"acsr-metrics-v1\",\"metrics\":[\n");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"type\":\"counter\",\"value\":{v}}}",
                        escape(name)
                    );
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"type\":\"gauge\",\"value\":{v:?}}}",
                        escape(name)
                    );
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"type\":\"histogram\",\"count\":{},\
                         \"sum\":{:?},\"min\":{:?},\"max\":{:?},\
                         \"p50\":{:?},\"p95\":{:?},\"p99\":{:?},\"buckets\":[",
                        escape(name),
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                    );
                    for (j, (k, c)) in h.bucket_counts().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{k},{c}]");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.add("a.count", 3);
        reg.add("a.count", 2);
        reg.set_gauge("b.gauge", 1.5);
        reg.set_gauge("b.gauge", 2.5);
        reg.observe("c.hist", 0.1);
        reg.observe("c.hist", 0.2);
        assert_eq!(reg.counter("a.count"), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), Some(5));
        assert_eq!(snap.gauge("b.gauge"), Some(2.5));
        assert_eq!(snap.histogram("c.hist").unwrap().count(), 2);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn snapshot_json_is_sorted_schema_tagged_and_stable() {
        let reg = MetricsRegistry::new();
        reg.set_gauge("z.last", 0.25);
        reg.add("a.first", 1);
        reg.observe("m.mid", 3.0);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert_eq!(json, snap.to_json(), "same snapshot, same bytes");
        assert!(json.starts_with("{\"schema\":\"acsr-metrics-v1\""));
        let a = json.find("a.first").unwrap();
        let m = json.find("m.mid").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < m && m < z, "entries must be name-sorted");
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"buckets\":[["));
    }

    #[test]
    fn merge_snapshot_adds_counters_and_merges_histograms() {
        let a = MetricsRegistry::new();
        a.add("n", 2);
        a.observe("h", 1.0);
        a.set_gauge("g", 1.0);
        let b = MetricsRegistry::new();
        b.add("n", 3);
        b.observe("h", 2.0);
        b.set_gauge("g", 9.0);
        a.merge_snapshot(&b.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.counter("n"), Some(5));
        assert_eq!(snap.histogram("h").unwrap().count(), 2);
        assert_eq!(snap.gauge("g"), Some(9.0), "gauges take the merged value");
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn type_confusion_panics() {
        let reg = MetricsRegistry::new();
        reg.set_gauge("x", 1.0);
        reg.add("x", 1);
    }
}
