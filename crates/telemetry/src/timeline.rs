//! Correlated timeline export: kernel spans + request spans, one file.
//!
//! [`timeline_json`] lays the trace ledger's chrome events (devices as
//! processes, exactly as [`gpu_sim::trace::TraceLedger::chrome_trace_json`]
//! emits them) next to a synthetic "serving" process holding one track of
//! wave spans and one track per query's lifecycle. The *authoritative
//! join key* is the `wave` id in each event's `args`: a kernel span's
//! `args.wave` names the [`crate::WaveRecord`] whose `queries` list (and
//! whose riding queries' `active` spans) it executed for. Times inside
//! the serving process run on the serving clock; device tracks keep the
//! ledger's own virtual clock (launches laid end to end) — the two axes
//! are schematic side by side, the wave ids are exact.
//!
//! The export validates the correlation before serializing: a kernel
//! span stamped with a wave id that no wave record announced, an
//! admission pointing at an unknown wave, or a duplicated wave record is
//! an `Err`, not a malformed file.

use crate::request::{RequestEvent, ShedKind};
use crate::Telemetry;
use gpu_sim::trace::TraceLedger;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Serialize the correlated timeline under the `acsr-timeline-v1`
/// schema. Byte-stable: fixed field order, `{:?}` floats, deterministic
/// track assignment (queries take lanes in first-appearance order).
pub fn timeline_json(ledger: &TraceLedger, tel: &Telemetry) -> Result<String, String> {
    let (kernel_events, device_count) = ledger.chrome_trace_events();
    let waves = tel.requests.waves();
    let events = tel.requests.events();

    let mut wave_ids = BTreeSet::new();
    for w in &waves {
        if !wave_ids.insert(w.wave) {
            return Err(format!("wave id {} recorded twice", w.wave));
        }
    }
    let mut kernel_spans = 0usize;
    for (i, span) in ledger.spans().iter().enumerate() {
        if let Some(w) = span.wave {
            kernel_spans += 1;
            if !wave_ids.contains(&w) {
                return Err(format!(
                    "kernel span {i} ('{}') is stamped with wave {w}, but no wave record announced it",
                    span.name
                ));
            }
        }
    }
    for e in &events {
        if let RequestEvent::Admitted { wave, query, .. } = e {
            if !wave_ids.contains(wave) {
                return Err(format!(
                    "query {query} was admitted into unknown wave {wave}"
                ));
            }
        }
    }

    // The serving plane gets its own chrome process after the devices.
    let pid = device_count;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":\"acsr-timeline-v1\",\"request_events\":{},\"wave_spans\":{},\
         \"kernel_spans\":{kernel_spans},\"traceEvents\":[",
        events.len(),
        waves.len(),
    );
    out.push_str(&kernel_events);
    let mut first = kernel_events.is_empty();
    sep(&mut out, &mut first);
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"serving\"}}}}"
    );
    sep(&mut out, &mut first);
    let _ = write!(
        out,
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"waves\"}}}}"
    );
    for w in &waves {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"wave{}\",\"cat\":\"wave\",\"ph\":\"X\",\"ts\":{:?},\"dur\":{:?},\
             \"pid\":{pid},\"tid\":0,\"args\":{{\"wave\":{},\"width\":{},\"devices\":{},\
             \"queries\":[",
            w.wave,
            w.t_start_s * 1e6,
            w.dur_s * 1e6,
            w.wave,
            w.width,
            w.devices,
        );
        for (i, q) in w.queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{q}");
        }
        out.push_str("]}}");
    }

    // One lane per query, in first-appearance order of the event stream.
    let mut lane_of: Vec<u64> = Vec::new();
    for e in &events {
        if !lane_of.contains(&e.query()) {
            lane_of.push(e.query());
        }
    }
    for (lane, &query) in lane_of.iter().enumerate() {
        let tid = 1 + lane;
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"query{query}\"}}}}"
        );
        let mut arrival: Option<(f64, u32)> = None;
        let mut admitted: Option<(f64, u64)> = None;
        for e in events.iter().filter(|e| e.query() == query) {
            match *e {
                RequestEvent::Arrival { t_s, tenant, .. } => arrival = Some((t_s, tenant)),
                RequestEvent::Admitted {
                    t_s,
                    tenant,
                    wave,
                    queue_wait_s,
                    ..
                } => {
                    sep(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"name\":\"queued\",\"cat\":\"request\",\"ph\":\"X\",\
                         \"ts\":{:?},\"dur\":{:?},\"pid\":{pid},\"tid\":{tid},\
                         \"args\":{{\"query\":{query},\"tenant\":{tenant}}}}}",
                        (t_s - queue_wait_s) * 1e6,
                        queue_wait_s * 1e6,
                    );
                    admitted = Some((t_s, wave));
                }
                RequestEvent::Completed {
                    t_s,
                    tenant,
                    iterations,
                    converged,
                    latency_s,
                    ..
                } => {
                    let (adm_t, wave) = admitted.unwrap_or((t_s - latency_s, 0));
                    sep(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"name\":\"active\",\"cat\":\"request\",\"ph\":\"X\",\
                         \"ts\":{:?},\"dur\":{:?},\"pid\":{pid},\"tid\":{tid},\
                         \"args\":{{\"query\":{query},\"tenant\":{tenant},\"wave\":{wave},\
                         \"iterations\":{iterations},\"converged\":{converged}}}}}",
                        adm_t * 1e6,
                        (t_s - adm_t) * 1e6,
                    );
                }
                RequestEvent::Shed {
                    t_s, tenant, kind, ..
                } => {
                    if let Some((arr_t, _)) = arrival {
                        if kind == ShedKind::Deadline {
                            sep(&mut out, &mut first);
                            let _ = write!(
                                out,
                                "{{\"name\":\"queued\",\"cat\":\"request\",\"ph\":\"X\",\
                                 \"ts\":{:?},\"dur\":{:?},\"pid\":{pid},\"tid\":{tid},\
                                 \"args\":{{\"query\":{query},\"tenant\":{tenant}}}}}",
                                arr_t * 1e6,
                                (t_s - arr_t) * 1e6,
                            );
                        }
                    }
                    let name = match kind {
                        ShedKind::Capacity => "shed.capacity",
                        ShedKind::Deadline => "shed.deadline",
                    };
                    sep(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"name\":\"{name}\",\"cat\":\"request\",\"ph\":\"i\",\"ts\":{:?},\
                         \"pid\":{pid},\"tid\":{tid},\"s\":\"t\",\
                         \"args\":{{\"query\":{query},\"tenant\":{tenant}}}}}",
                        t_s * 1e6,
                    );
                }
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    Ok(out)
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::WaveRecord;
    use gpu_sim::config::presets;
    use gpu_sim::Device;

    fn serve_like_fixture() -> (Device, std::sync::Arc<TraceLedger>, Telemetry) {
        let mut dev = Device::new(presets::gtx_titan());
        let ledger = dev.enable_tracing();
        let tel = Telemetry::new();
        let wave = tel.next_wave_id();
        tel.requests.record(RequestEvent::Arrival {
            t_s: 0.0,
            query: 11,
            tenant: 0,
        });
        tel.requests.record(RequestEvent::Admitted {
            t_s: 0.25,
            query: 11,
            tenant: 0,
            wave,
            queue_wait_s: 0.25,
        });
        ledger.set_wave(Some(wave));
        dev.launch("spmv", 2, 32, &|_b| {});
        ledger.set_wave(None);
        tel.requests.record_wave(WaveRecord {
            wave,
            t_start_s: 0.25,
            dur_s: 0.5,
            width: 1,
            devices: 1,
            queries: vec![11],
        });
        tel.requests.record(RequestEvent::Completed {
            t_s: 0.75,
            query: 11,
            tenant: 0,
            iterations: 3,
            converged: true,
            latency_s: 0.75,
        });
        (dev, ledger, tel)
    }

    #[test]
    fn timeline_joins_kernel_spans_to_request_spans() {
        let (_dev, ledger, tel) = serve_like_fixture();
        let json = timeline_json(&ledger, &tel).expect("correlation validates");
        assert_eq!(json, timeline_json(&ledger, &tel).unwrap(), "byte-stable");
        assert!(json.starts_with("{\"schema\":\"acsr-timeline-v1\""));
        assert!(json.contains("\"request_events\":3"));
        assert!(json.contains("\"wave_spans\":1"));
        // Launch span of `spmv` carries the wave id in its args...
        assert!(json.contains("\"name\":\"spmv\""));
        assert!(json.contains("\"wave\":1"));
        // ...and the serving process has the wave track + query lane.
        assert!(json.contains("\"name\":\"serving\""));
        assert!(json.contains("\"name\":\"wave1\""));
        assert!(json.contains("\"name\":\"query11\""));
        assert!(json.contains("\"name\":\"queued\""));
        assert!(json.contains("\"name\":\"active\""));
    }

    #[test]
    fn orphan_kernel_wave_is_an_error() {
        let (dev, ledger, tel) = serve_like_fixture();
        ledger.set_wave(Some(999));
        dev.launch("stray", 2, 32, &|_b| {});
        ledger.set_wave(None);
        let err = timeline_json(&ledger, &tel).unwrap_err();
        assert!(err.contains("wave 999"), "unexpected error: {err}");
    }

    #[test]
    fn unknown_admission_wave_is_an_error() {
        let tel = Telemetry::new();
        tel.requests.record(RequestEvent::Admitted {
            t_s: 0.0,
            query: 5,
            tenant: 0,
            wave: 7,
            queue_wait_s: 0.0,
        });
        let ledger = TraceLedger::new();
        let err = timeline_json(&ledger, &tel).unwrap_err();
        assert!(err.contains("unknown wave 7"), "unexpected error: {err}");
    }

    #[test]
    fn shed_queries_emit_instants() {
        let tel = Telemetry::new();
        tel.requests.record(RequestEvent::Arrival {
            t_s: 0.0,
            query: 3,
            tenant: 1,
        });
        tel.requests.record(RequestEvent::Shed {
            t_s: 0.0,
            query: 3,
            tenant: 1,
            kind: ShedKind::Capacity,
        });
        tel.requests.record(RequestEvent::Arrival {
            t_s: 0.1,
            query: 4,
            tenant: 1,
        });
        tel.requests.record(RequestEvent::Shed {
            t_s: 0.9,
            query: 4,
            tenant: 1,
            kind: ShedKind::Deadline,
        });
        let ledger = TraceLedger::new();
        let json = timeline_json(&ledger, &tel).expect("no waves needed");
        assert!(json.contains("\"name\":\"shed.capacity\""));
        assert!(json.contains("\"name\":\"shed.deadline\""));
        // The deadline-shed query shows its wasted queue time.
        assert!(json.contains("\"name\":\"queued\""));
        assert!(json.contains("\"kernel_spans\":0"));
    }
}
