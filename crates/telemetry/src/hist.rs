//! Log-bucketed histograms plus the exact nearest-rank quantile the
//! serving stack summarizes latencies with.
//!
//! The histogram buckets by *float bit pattern* — exponent plus the top
//! two mantissa bits, four sub-buckets per octave — so indexing is pure
//! integer arithmetic: no `log2`, no libm, and therefore bit-identical
//! buckets on every platform and worker width. Four sub-buckets per
//! octave bound the quantile's relative overestimate at 25%
//! ([`LogHistogram::quantile`] returns the containing bucket's upper
//! edge, so `exact ≤ quantile ≤ 1.25 × exact` for positive samples —
//! pinned by a regression test).

use std::collections::BTreeMap;

/// Sub-buckets per power of two. Two mantissa bits → 4.
const SUBBUCKETS: i64 = 4;

/// Bucket index of every non-positive (or non-finite-negative) sample.
/// `BTreeMap` iteration order puts it before every real bucket.
const ZERO_BUCKET: i64 = i64::MIN;

/// Bucket index of a sample: `exponent × 4 + top-2-mantissa-bits`,
/// derived from the raw IEEE-754 encoding.
fn bucket_index(v: f64) -> i64 {
    if !v.is_finite() || v <= 0.0 {
        return ZERO_BUCKET;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    if exp == -1023 {
        // Subnormals: fold into the smallest normal bucket; nothing the
        // serving stack measures lives below 2^-1022 seconds.
        return -1022 * SUBBUCKETS;
    }
    let sub = ((bits >> 50) & 0x3) as i64;
    exp * SUBBUCKETS + sub
}

/// Exclusive upper edge of a bucket: `2^exp × (1 + (sub+1)/4)`, computed
/// from bit-assembled powers of two so the edge is a deterministic
/// function of the index alone.
fn bucket_upper(index: i64) -> f64 {
    if index == ZERO_BUCKET {
        return 0.0;
    }
    let exp = index.div_euclid(SUBBUCKETS);
    let sub = index.rem_euclid(SUBBUCKETS);
    let pow2 = if exp >= 1024 {
        f64::INFINITY
    } else if exp < -1022 {
        0.0
    } else {
        f64::from_bits(((exp + 1023) as u64) << 52)
    };
    pow2 * (1.0 + (sub + 1) as f64 * 0.25)
}

/// A mergeable log-bucketed histogram with exact count/sum/min/max.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LogHistogram {
    buckets: BTreeMap<i64, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Record one sample. Non-positive samples land in a dedicated
    /// zero bucket (queue depths start at 0).
    pub fn observe(&mut self, v: f64) {
        assert!(!v.is_nan(), "histogram samples must not be NaN");
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Fold `other` into `self` (bucket-wise addition; sums accumulate
    /// in `other`'s bucket order, which is deterministic).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observed sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observed sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank quantile over the buckets: the upper edge of the
    /// bucket holding the rank-`⌈p·n⌉` sample. Empty histograms report
    /// 0.0. For positive samples the result overestimates the exact
    /// nearest-rank value by at most 25% (see module docs).
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (&k, &c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return bucket_upper(k);
            }
        }
        self.max()
    }

    /// Sorted `(bucket index, count)` pairs — the serialized form.
    pub fn bucket_counts(&self) -> Vec<(i64, u64)> {
        self.buckets.iter().map(|(&k, &c)| (k, c)).collect()
    }
}

/// Exact nearest-rank quantile of an ascending-sorted slice: the
/// smallest sample with at least `p` of the mass at or below it. This is
/// the single authoritative implementation — `acsr-serve`'s
/// `LatencyStats` calls it — so p50/p95/p99 cannot drift between the
/// report path and the histogram path. Empty input yields 0.0.
pub fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "nearest_rank needs an ascending-sorted slice"
    );
    sorted[((p * n as f64).ceil() as usize).clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(nearest_rank(&[], 0.99), 0.0);
    }

    #[test]
    fn single_sample_quantiles_cover_it() {
        let mut h = LogHistogram::new();
        h.observe(2.5e-3);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 2.5e-3);
        assert_eq!(h.max(), 2.5e-3);
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let q = h.quantile(p);
            assert!(
                (2.5e-3..=2.5e-3 * 1.25).contains(&q),
                "p={p}: quantile {q} outside the bucket bound"
            );
        }
        assert_eq!(nearest_rank(&[2.5e-3], 0.5), 2.5e-3);
        assert_eq!(nearest_rank(&[2.5e-3], 0.99), 2.5e-3);
    }

    #[test]
    fn zero_and_negative_samples_take_the_zero_bucket() {
        let mut h = LogHistogram::new();
        h.observe(0.0);
        h.observe(-1.0);
        h.observe(4.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.5), 0.0, "rank 2 of [-1, 0, 4]-ish mass");
        assert!(h.quantile(1.0) >= 4.0);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 4.0);
    }

    /// The pinned error bound of the satellite task: against the exact
    /// nearest-rank quantile, the histogram answer is never below it and
    /// never more than 25% above it.
    #[test]
    fn quantile_error_vs_exact_nearest_rank_is_bounded() {
        // Deterministic pseudo-random positive samples over ~9 decades.
        let mut samples: Vec<f64> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..4096 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            samples.push(1e-6 * (1e9f64).powf(u));
        }
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.observe(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = nearest_rank(&sorted, p);
            let approx = h.quantile(p);
            assert!(
                approx >= exact && approx <= exact * 1.25,
                "p={p}: exact {exact:e}, histogram {approx:e} breaks the 25% bound"
            );
        }
    }

    /// Merged histograms answer exactly like a histogram fed the
    /// concatenated stream.
    #[test]
    fn merge_matches_concatenated_observation() {
        let a_samples: Vec<f64> = (1..=50).map(|i| i as f64 * 0.017).collect();
        let b_samples: Vec<f64> = (1..=80).map(|i| i as f64 * 0.41).collect();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for &s in &a_samples {
            a.observe(s);
            whole.observe(s);
        }
        for &s in &b_samples {
            b.observe(s);
            whole.observe(s);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.bucket_counts(), whole.bucket_counts());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        assert!((merged.sum() - whole.sum()).abs() < 1e-9);
        for p in [0.25, 0.5, 0.95, 0.99] {
            assert_eq!(merged.quantile(p).to_bits(), whole.quantile(p).to_bits());
        }
        // merging into an empty histogram preserves min/max
        let mut empty = LogHistogram::new();
        empty.merge(&b);
        assert_eq!(empty.min(), b.min());
        assert_eq!(empty.max(), b.max());
    }

    #[test]
    fn nearest_rank_matches_latency_stats_formula() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(nearest_rank(&sorted, 0.50), 50.0);
        assert_eq!(nearest_rank(&sorted, 0.95), 95.0);
        assert_eq!(nearest_rank(&sorted, 0.99), 99.0);
        assert_eq!(nearest_rank(&sorted, 1.0), 100.0);
    }

    #[test]
    fn bucket_edges_bound_their_samples() {
        for &v in &[1e-9, 3.7e-4, 0.124, 1.0, 1.49, 777.3, 1e12] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(v < upper, "{v} must sit below its bucket edge {upper}");
            assert!(
                upper <= v * 1.25 * (1.0 + 1e-12),
                "{v} edge {upper} too far"
            );
        }
    }
}
