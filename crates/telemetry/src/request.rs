//! Per-query request spans: the serving plane's event stream.
//!
//! `acsr-serve`'s `serve_slo` appends one event per lifecycle edge —
//! arrival, capacity/deadline shed, admission (with the wave the query
//! first rides), completion — plus one [`WaveRecord`] per executed wave.
//! Everything is keyed on the *virtual* serving clock and the
//! process-unique wave ids handed out by
//! [`crate::Telemetry::next_wave_id`], so the stream is a deterministic
//! function of the workload: bit-identical across `ACSR_SIM_THREADS`
//! widths (pinned by proptests) and joinable to `gpu_sim::trace` kernel
//! spans through the same wave ids.

use parking_lot::Mutex;

/// Why a query never reached a batch slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedKind {
    /// The submission queue was full at the query's arrival instant.
    Capacity,
    /// Its queue wait had already consumed the tenant's SLO budget.
    Deadline,
}

/// One edge of a query's lifecycle, stamped with the virtual clock.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestEvent {
    /// The query was offered to the submission queue.
    Arrival { t_s: f64, query: u64, tenant: u32 },
    /// The query was dropped (see [`ShedKind`]).
    Shed {
        t_s: f64,
        query: u64,
        tenant: u32,
        kind: ShedKind,
    },
    /// The query won a batch slot; `wave` is the wave it first rides.
    Admitted {
        t_s: f64,
        query: u64,
        tenant: u32,
        wave: u64,
        queue_wait_s: f64,
    },
    /// The query retired at the end of a wave.
    Completed {
        t_s: f64,
        query: u64,
        tenant: u32,
        iterations: usize,
        converged: bool,
        latency_s: f64,
    },
}

impl RequestEvent {
    /// The query id the event belongs to.
    pub fn query(&self) -> u64 {
        match self {
            RequestEvent::Arrival { query, .. }
            | RequestEvent::Shed { query, .. }
            | RequestEvent::Admitted { query, .. }
            | RequestEvent::Completed { query, .. } => *query,
        }
    }

    /// The virtual-clock timestamp of the event.
    pub fn t_s(&self) -> f64 {
        match self {
            RequestEvent::Arrival { t_s, .. }
            | RequestEvent::Shed { t_s, .. }
            | RequestEvent::Admitted { t_s, .. }
            | RequestEvent::Completed { t_s, .. } => *t_s,
        }
    }
}

/// One executed wave: the correlation anchor between request spans and
/// the kernel spans the wave launched (which carry the same `wave` id
/// in their trace `args`).
#[derive(Clone, Debug, PartialEq)]
pub struct WaveRecord {
    /// Process-unique wave id.
    pub wave: u64,
    /// Wave start on the serving clock, seconds.
    pub t_start_s: f64,
    /// Modeled wave duration, seconds.
    pub dur_s: f64,
    /// Batch width (queries riding the wave).
    pub width: usize,
    /// Devices that executed a shard of the wave.
    pub devices: usize,
    /// Ids of the riding queries, in batch-slot order.
    pub queries: Vec<u64>,
}

#[derive(Default)]
struct Inner {
    events: Vec<RequestEvent>,
    waves: Vec<WaveRecord>,
}

/// Append-only store of request events and wave records.
#[derive(Default)]
pub struct RequestTrace {
    inner: Mutex<Inner>,
}

impl RequestTrace {
    pub fn new() -> RequestTrace {
        RequestTrace::default()
    }

    /// Append one lifecycle event.
    pub fn record(&self, event: RequestEvent) {
        self.inner.lock().events.push(event);
    }

    /// Append one executed wave.
    pub fn record_wave(&self, wave: WaveRecord) {
        self.inner.lock().waves.push(wave);
    }

    /// Snapshot of all events, in record order.
    pub fn events(&self) -> Vec<RequestEvent> {
        self.inner.lock().events.clone()
    }

    /// Snapshot of all wave records, in record order.
    pub fn waves(&self) -> Vec<WaveRecord> {
        self.inner.lock().waves.clone()
    }

    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock();
        inner.events.is_empty() && inner.waves.is_empty()
    }

    /// Drop everything recorded so far.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.events.clear();
        inner.waves.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_and_waves_record_in_order() {
        let t = RequestTrace::new();
        t.record(RequestEvent::Arrival {
            t_s: 0.0,
            query: 7,
            tenant: 1,
        });
        t.record(RequestEvent::Admitted {
            t_s: 0.5,
            query: 7,
            tenant: 1,
            wave: 3,
            queue_wait_s: 0.5,
        });
        t.record_wave(WaveRecord {
            wave: 3,
            t_start_s: 0.5,
            dur_s: 0.1,
            width: 1,
            devices: 1,
            queries: vec![7],
        });
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].query(), 7);
        assert_eq!(events[1].t_s(), 0.5);
        assert_eq!(t.waves().len(), 1);
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
    }
}
