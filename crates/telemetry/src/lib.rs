//! Deterministic virtual-clock telemetry for the serving stack.
//!
//! `gpu-sim`'s [`gpu_sim::trace::TraceLedger`] sees the kernel plane:
//! launches, counters, modeled times. This crate adds the *serving*
//! plane on top of it — and keeps the two joinable:
//!
//! * [`MetricsRegistry`] — named counters / gauges / log-bucketed
//!   histograms ([`LogHistogram`]), snapshotting to a byte-stable
//!   `acsr-metrics-v1` JSON document. Counters are integer-exact and are
//!   reconciled against the existing end-of-run reports (`ServeReport`,
//!   the maintenance [`LedgerTotals`](../acsr_stream), the trace
//!   ledger's merged [`gpu_sim::RunReport`]) — the registry is an
//!   *accounting mirror*, never a second source of truth.
//! * [`RequestTrace`] — per-query lifecycle events through `serve_slo`
//!   (arrival, shed, admission, completion) plus one [`WaveRecord`] per
//!   executed batch wave.
//! * [`timeline_json`] — a chrome-trace export that lays the trace
//!   ledger's kernel spans and the request spans side by side, joined by
//!   the wave ids this crate allocates ([`Telemetry::next_wave_id`]) and
//!   the serving scheduler stamps into kernel spans via
//!   [`gpu_sim::trace::TraceLedger::set_wave`].
//!
//! # Determinism invariants
//!
//! Everything here is driven by the *model* clock and by data already
//! bit-identical across `ACSR_SIM_THREADS` worker widths, so metric
//! snapshots, request-event streams, and timeline exports are themselves
//! bit-identical across widths (pinned by cross-width proptests and a
//! golden `METRICS_serve_small.json`). No host wall-clock, no host RNG,
//! no iteration over unordered maps.
//!
//! # Zero cost when disabled
//!
//! Instrumented subsystems hold an `Option<Arc<Telemetry>>`; with `None`
//! every record site is one branch. Like the trace ledger's global
//! capture, [`enable_global_capture`] arms a process-global [`Telemetry`]
//! that subsequently constructed engines pick up — the hook behind
//! `repro metrics <exp>` / `repro timeline <exp>`.

mod hist;
mod metrics;
mod request;
mod timeline;

pub use hist::{nearest_rank, LogHistogram};
pub use metrics::{MetricValue, MetricsRegistry, MetricsSnapshot};
pub use request::{RequestEvent, RequestTrace, ShedKind, WaveRecord};
pub use timeline::timeline_json;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// One telemetry domain: a metrics registry, a request trace, and the
/// wave-id allocator that correlates request spans with kernel spans.
/// Shared by every instrumented engine in a process (`Arc`).
#[derive(Default)]
pub struct Telemetry {
    /// Named counters / gauges / histograms.
    pub metrics: MetricsRegistry,
    /// Per-query lifecycle events and wave records.
    pub requests: RequestTrace,
    wave_ids: AtomicU64,
}

impl Telemetry {
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Allocate the next wave correlation id (1-based, process-unique
    /// until [`reset`](Telemetry::reset)). The serving scheduler stamps
    /// this into both its [`WaveRecord`]s and — via
    /// [`gpu_sim::trace::TraceLedger::set_wave`] — the kernel spans the
    /// wave launches.
    pub fn next_wave_id(&self) -> u64 {
        self.wave_ids.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Drop all metrics and request events and restart wave ids at 1 —
    /// the clean-slate reset `repro metrics` performs before a run so
    /// artifacts are reproducible.
    pub fn reset(&self) {
        self.metrics.clear();
        self.requests.clear();
        self.wave_ids.store(0, Ordering::SeqCst);
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty() && self.requests.is_empty()
    }
}

/// Process-global capture flag, mirroring `gpu_sim::trace`'s.
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Arc<Telemetry>> = OnceLock::new();

/// Make every *subsequently constructed* instrumented engine (serve,
/// stream, plan cache, …) record into the shared [`global`] telemetry.
/// Used by the bench binary's `metrics`/`timeline` modes, whose
/// experiments construct their engines internally.
pub fn enable_global_capture() {
    GLOBAL_ENABLED.store(true, Ordering::SeqCst);
}

/// Stop handing the global telemetry to new engines (already-attached
/// engines keep recording).
pub fn disable_global_capture() {
    GLOBAL_ENABLED.store(false, Ordering::SeqCst);
}

/// Whether [`enable_global_capture`] is in effect.
pub fn global_capture_enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::SeqCst)
}

/// The process-wide shared telemetry (created on first use).
pub fn global() -> Arc<Telemetry> {
    GLOBAL.get_or_init(|| Arc::new(Telemetry::new())).clone()
}

/// `Some(global())` while global capture is armed, else `None` — the
/// one-liner engines call at construction time to pick up telemetry.
pub fn active() -> Option<Arc<Telemetry>> {
    if global_capture_enabled() {
        Some(global())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_ids_start_at_one_and_reset() {
        let tel = Telemetry::new();
        assert_eq!(tel.next_wave_id(), 1);
        assert_eq!(tel.next_wave_id(), 2);
        tel.metrics.add("x", 1);
        assert!(!tel.is_empty());
        tel.reset();
        assert!(tel.is_empty());
        assert_eq!(tel.next_wave_id(), 1, "reset restarts the allocator");
    }

    #[test]
    fn global_capture_flag_gates_active() {
        // Not armed by default in this test process.
        disable_global_capture();
        assert!(active().is_none());
        enable_global_capture();
        assert!(global_capture_enabled());
        let a = active().expect("armed capture yields the global handle");
        let b = global();
        assert!(Arc::ptr_eq(&a, &b));
        disable_global_capture();
        assert!(active().is_none());
    }
}
