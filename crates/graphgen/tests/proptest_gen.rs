//! Property tests for the generators: structural invariants must hold
//! for arbitrary configurations, and update streams must always be valid
//! against their source matrix.

use graphgen::powerlaw::DegreeModel;
use graphgen::{
    generate_power_law, generate_rmat, generate_update_batch, DiscreteAlias, PowerLawConfig,
    RmatConfig, UpdateConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn power_law_respects_structural_bounds(
        rows in 8usize..400,
        mean in 1.5f64..12.0,
        max_deg in 4usize..64,
        skew in 0.0f64..1.0,
        seed in any::<u64>(),
        thin in any::<bool>(),
    ) {
        let cfg = PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: mean,
            max_degree: max_deg,
            pinned_max_rows: 1,
            col_skew: skew,
            seed,
            degree_model: if thin { DegreeModel::ThinTail } else { DegreeModel::PowerLaw },
        };
        let m = generate_power_law::<f64>(&cfg);
        let stats = m.row_stats();
        // no row exceeds the cap; every row has at least one entry
        prop_assert!(stats.max_row <= max_deg.min(rows));
        prop_assert!(stats.min_row >= 1);
        // columns sorted + unique per row is a CSR invariant already
        // checked by construction; verify values are in generator range
        prop_assert!(m.values().iter().all(|&v| (0.5..1.5).contains(&v)));
        // deterministic
        prop_assert_eq!(m, generate_power_law::<f64>(&cfg));
    }

    #[test]
    fn rmat_stays_within_declared_shape(
        scale in 3u32..10,
        edge_factor in 1usize..12,
        seed in any::<u64>(),
    ) {
        let cfg = RmatConfig { scale, edge_factor, seed, ..Default::default() };
        let m = generate_rmat::<f64>(&cfg);
        let n = 1usize << scale;
        prop_assert_eq!(m.shape(), (n, n));
        prop_assert!(m.nnz() <= edge_factor * n);
        // total weight is conserved through duplicate merging
        let total: f64 = m.values().iter().sum();
        prop_assert!((total - (edge_factor * n) as f64).abs() < 1e-9);
    }

    #[test]
    fn update_batches_are_always_valid(
        rows in 8usize..300,
        fraction in 0.01f64..0.9,
        delete_p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let m = generate_power_law::<f64>(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 5.0,
            max_degree: (rows / 2).max(2),
            pinned_max_rows: 1,
            col_skew: 0.3,
            seed: seed ^ 0xabc,
            ..Default::default()
        });
        let batch = generate_update_batch(&m, &UpdateConfig {
            row_fraction: fraction,
            delete_probability: delete_p,
            seed,
        });
        batch.validate().unwrap();
        // applying never panics and keeps shape
        let updated = batch.apply_to_csr(&m);
        prop_assert_eq!(updated.shape(), m.shape());
    }

    #[test]
    fn alias_table_only_emits_positive_weight_outcomes(
        weights in proptest::collection::vec(0.0f64..5.0, 1..40),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        use rand::SeedableRng;
        let table = DiscreteAlias::new(&weights);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let k = table.sample(&mut rng);
            prop_assert!(k < weights.len());
            // zero-weight outcomes may appear only with negligible alias
            // residue; assert they carry *some* weight neighborhood-wise
            if weights[k] == 0.0 {
                // allowed only via floating-point residue; must be rare —
                // tolerate but count
            }
        }
    }
}
