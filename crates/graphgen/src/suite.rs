//! The Table I analog suite.
//!
//! One [`MatrixSpec`] per matrix in the paper's Table I, carrying the
//! published statistics (rows, μ, σ, max, NNZ). [`MatrixSpec::generate`]
//! produces a seeded synthetic analog at a chosen `scale` divisor: rows
//! shrink by `scale`, the mean degree μ is preserved (it determines the
//! binning histogram's body), and the maximum degree is clamped to half
//! the scaled row count (it determines the tail).
//!
//! `AMZ` and `DBL` are deliberately *low-skew* (the paper keeps them as
//! contrast cases where HYB beats ACSR); `RAL` is the rectangular
//! non-power-law outlier.

use crate::powerlaw::{generate_power_law, DegreeModel, PowerLawConfig};
use serde::{Deserialize, Serialize};
use sparse_formats::{CsrMatrix, Scalar};

/// Published statistics of one Table I matrix plus generation knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MatrixSpec {
    /// Full collection name (e.g. "hollywood-2009").
    pub name: &'static str,
    /// Paper abbreviation (e.g. "HOL").
    pub abbrev: &'static str,
    /// Rows at full (paper) size.
    pub rows: usize,
    /// Columns at full size (== rows except RAL).
    pub cols: usize,
    /// Published mean non-zeros per row (μ).
    pub mu: f64,
    /// Published standard deviation (σ) — recorded for the Table I
    /// printout; the generator does not target it directly.
    pub sigma: f64,
    /// Published maximum non-zeros per row.
    pub max: usize,
    /// Whether the paper treats the matrix as power-law.
    pub power_law: bool,
}

/// The 17-matrix suite of Table I. Statistics transcribed from the paper.
pub const TABLE1_SUITE: &[MatrixSpec] = &[
    MatrixSpec {
        name: "amazon-2008",
        abbrev: "AMZ",
        rows: 735_000,
        cols: 735_000,
        mu: 7.7,
        sigma: 4.7,
        max: 10,
        power_law: false,
    },
    MatrixSpec {
        name: "cnr-2000",
        abbrev: "CNR",
        rows: 845_000,
        cols: 845_000,
        mu: 10.2,
        sigma: 7.8,
        max: 2216,
        power_law: true,
    },
    MatrixSpec {
        name: "dblp-2010",
        abbrev: "DBL",
        rows: 320_000,
        cols: 320_000,
        mu: 5.8,
        sigma: 5.3,
        max: 238,
        power_law: false,
    },
    MatrixSpec {
        name: "enron",
        abbrev: "ENR",
        rows: 69_000,
        cols: 69_000,
        mu: 4.7,
        sigma: 28.0,
        max: 1392,
        power_law: true,
    },
    MatrixSpec {
        name: "eu-2005",
        abbrev: "EU2",
        rows: 862_000,
        cols: 862_000,
        mu: 22.7,
        sigma: 29.0,
        max: 6985,
        power_law: true,
    },
    MatrixSpec {
        name: "flickr",
        abbrev: "FLI",
        rows: 1_800_000,
        cols: 1_800_000,
        mu: 12.0,
        sigma: 101.0,
        max: 2615,
        power_law: true,
    },
    MatrixSpec {
        name: "hollywood-2009",
        abbrev: "HOL",
        rows: 1_100_000,
        cols: 1_100_000,
        mu: 100.0,
        sigma: 272.0,
        max: 11_468,
        power_law: true,
    },
    MatrixSpec {
        name: "in-2004",
        abbrev: "IN2",
        rows: 1_380_000,
        cols: 1_380_000,
        mu: 12.0,
        sigma: 37.0,
        max: 7753,
        power_law: true,
    },
    MatrixSpec {
        name: "indochina-2004",
        abbrev: "IND",
        rows: 7_400_000,
        cols: 7_400_000,
        mu: 26.0,
        sigma: 216.0,
        max: 6985,
        power_law: true,
    },
    MatrixSpec {
        name: "internet",
        abbrev: "INT",
        rows: 65_000,
        cols: 65_000,
        mu: 2.7,
        sigma: 24.0,
        max: 693,
        power_law: true,
    },
    MatrixSpec {
        name: "livejournal",
        abbrev: "LIV",
        rows: 5_200_000,
        cols: 5_200_000,
        mu: 13.0,
        sigma: 22.0,
        max: 9186,
        power_law: true,
    },
    MatrixSpec {
        name: "ljournal-2008",
        abbrev: "LJ2",
        rows: 5_360_000,
        cols: 5_360_000,
        mu: 15.0,
        sigma: 37.0,
        max: 2469,
        power_law: true,
    },
    MatrixSpec {
        name: "uk-2002",
        abbrev: "UK2",
        rows: 18_500_000,
        cols: 18_500_000,
        mu: 16.0,
        sigma: 27.0,
        max: 2450,
        power_law: true,
    },
    MatrixSpec {
        name: "wikipedia",
        abbrev: "WIK",
        rows: 1_300_000,
        cols: 1_300_000,
        mu: 31.0,
        sigma: 42.0,
        max: 20_975,
        power_law: true,
    },
    MatrixSpec {
        name: "youtube",
        abbrev: "YOT",
        rows: 1_160_000,
        cols: 1_160_000,
        mu: 4.7,
        sigma: 48.0,
        max: 2894,
        power_law: true,
    },
    MatrixSpec {
        name: "webbase-1M",
        abbrev: "WEB",
        rows: 1_000_000,
        cols: 1_000_000,
        mu: 3.1,
        sigma: 25.0,
        max: 4700,
        power_law: true,
    },
    MatrixSpec {
        name: "rail4284",
        abbrev: "RAL",
        rows: 4284,
        cols: 1_096_894,
        mu: 2633.0,
        sigma: 2409.0,
        max: 56_181,
        power_law: false,
    },
];

/// A generated suite matrix: the spec it came from, the scale used, and
/// the CSR analog.
#[derive(Clone, Debug)]
pub struct SuiteMatrix<T> {
    /// Source specification.
    pub spec: MatrixSpec,
    /// Scale divisor the analog was generated at.
    pub scale: usize,
    /// The synthetic matrix.
    pub csr: CsrMatrix<T>,
}

impl MatrixSpec {
    /// Look up a spec by paper abbreviation (case-insensitive).
    pub fn by_abbrev(abbrev: &str) -> Option<&'static MatrixSpec> {
        TABLE1_SUITE
            .iter()
            .find(|s| s.abbrev.eq_ignore_ascii_case(abbrev))
    }

    /// Scaled row count at divisor `scale` (minimum 2048 so binning and
    /// HYB heuristics stay in their intended regimes).
    pub fn scaled_rows(&self, scale: usize) -> usize {
        (self.rows / scale.max(1)).max(2048)
    }

    /// Scaled column count.
    pub fn scaled_cols(&self, scale: usize) -> usize {
        if self.rows == self.cols {
            self.scaled_rows(scale)
        } else {
            (self.cols / scale.max(1)).max(2048)
        }
    }

    /// Scaled maximum degree: the published max, clamped so a single row
    /// cannot exceed half the scaled column count.
    pub fn scaled_max(&self, scale: usize) -> usize {
        self.max.min(self.scaled_cols(scale) / 2).max(1)
    }

    /// Generate the synthetic analog at divisor `scale`.
    ///
    /// Power-law specs get a fitted heavy tail and two pinned max-degree
    /// rows; low-skew specs (AMZ, DBL) get a mild tail with no pinning,
    /// preserving the paper's contrast cases.
    pub fn generate<T: Scalar>(&self, scale: usize, seed: u64) -> SuiteMatrix<T> {
        let rows = self.scaled_rows(scale);
        let cols = self.scaled_cols(scale);
        let cfg = PowerLawConfig {
            rows,
            cols,
            mean_degree: self.mu,
            max_degree: self.scaled_max(scale),
            pinned_max_rows: if self.power_law { 2 } else { 0 },
            col_skew: if self.power_law { 0.75 } else { 0.1 },
            seed: seed ^ fnv1a(self.abbrev.as_bytes()),
            degree_model: if self.power_law {
                DegreeModel::PowerLaw
            } else {
                DegreeModel::ThinTail
            },
        };
        SuiteMatrix {
            spec: *self,
            scale,
            csr: generate_power_law(&cfg),
        }
    }
}

/// Generate the full suite at `scale` (deterministic per seed).
pub fn generate_suite<T: Scalar>(scale: usize, seed: u64) -> Vec<SuiteMatrix<T>> {
    TABLE1_SUITE
        .iter()
        .map(|s| s.generate(scale, seed))
        .collect()
}

/// FNV-1a, used to derive stable per-matrix seeds from abbreviations.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seventeen_matrices() {
        assert_eq!(TABLE1_SUITE.len(), 17);
        // abbreviations unique
        let mut ab: Vec<_> = TABLE1_SUITE.iter().map(|s| s.abbrev).collect();
        ab.sort_unstable();
        ab.dedup();
        assert_eq!(ab.len(), 17);
    }

    #[test]
    fn by_abbrev_finds_case_insensitively() {
        assert_eq!(MatrixSpec::by_abbrev("hol").unwrap().abbrev, "HOL");
        assert_eq!(MatrixSpec::by_abbrev("RAL").unwrap().cols, 1_096_894);
        assert!(MatrixSpec::by_abbrev("nope").is_none());
    }

    #[test]
    fn scaled_analog_preserves_mu_and_tail() {
        let spec = MatrixSpec::by_abbrev("ENR").unwrap();
        let m = spec.generate::<f64>(8, 1);
        let stats = m.csr.row_stats();
        assert!(
            (stats.mean - spec.mu).abs() / spec.mu < 0.25,
            "mean {} vs μ {}",
            stats.mean,
            spec.mu
        );
        assert_eq!(stats.max_row, spec.scaled_max(8));
        assert!(stats.looks_power_law());
    }

    #[test]
    fn amz_analog_stays_low_skew() {
        let spec = MatrixSpec::by_abbrev("AMZ").unwrap();
        let m = spec.generate::<f64>(64, 1);
        let stats = m.csr.row_stats();
        assert!(stats.max_row <= 10);
        assert!(!stats.looks_power_law());
    }

    #[test]
    fn ral_is_rectangular() {
        let spec = MatrixSpec::by_abbrev("RAL").unwrap();
        let m = spec.generate::<f32>(4, 1);
        let (r, c) = m.csr.shape();
        assert!(c > 10 * r, "rows {r} cols {c}");
    }

    #[test]
    fn scaling_reduces_size_monotonically() {
        let spec = MatrixSpec::by_abbrev("EU2").unwrap();
        let big = spec.generate::<f64>(64, 1);
        let small = spec.generate::<f64>(256, 1);
        assert!(big.csr.rows() > small.csr.rows());
        assert!(big.csr.nnz() > small.csr.nnz());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = MatrixSpec::by_abbrev("INT").unwrap();
        let a = spec.generate::<f64>(8, 5);
        let b = spec.generate::<f64>(8, 5);
        assert_eq!(a.csr, b.csr);
        let c = spec.generate::<f64>(8, 6);
        assert_ne!(a.csr, c.csr);
    }
}
