//! Uniform (Erdős–Rényi-style) matrix generator — the zero-skew limiting
//! case used by ablations to show where ACSR's binning stops paying off.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse_formats::{CsrMatrix, Scalar, TripletMatrix};

/// Generate a `rows x cols` matrix with `nnz ≈ rows * mean_degree`
/// uniformly placed entries (duplicates merged). Deterministic per seed.
pub fn generate_uniform<T: Scalar>(
    rows: usize,
    cols: usize,
    mean_degree: f64,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(rows > 0 && cols > 0);
    let edges = (rows as f64 * mean_degree).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::with_capacity(rows, cols, edges);
    for _ in 0..edges {
        let r = rng.random_range(0..rows as u32);
        let c = rng.random_range(0..cols as u32);
        t.push_unchecked(r, c, T::from_f64(0.5 + rng.random::<f64>()));
    }
    t.to_csr()
}

/// Generate a `rows x cols` matrix where *every* row has exactly
/// `degree` distinct entries — the fully regular, zero-padding-waste
/// limiting case (ELL's best case, and the selector experiments'
/// uniform control). Deterministic per seed.
pub fn generate_regular<T: Scalar>(
    rows: usize,
    cols: usize,
    degree: usize,
    seed: u64,
) -> CsrMatrix<T> {
    assert!(rows > 0 && cols > 0 && degree <= cols);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::with_capacity(rows, cols, rows * degree);
    let mut seen = std::collections::BTreeSet::new();
    for r in 0..rows as u32 {
        seen.clear();
        while seen.len() < degree {
            seen.insert(rng.random_range(0..cols as u32));
        }
        for &c in &seen {
            t.push_unchecked(r, c, T::from_f64(0.5 + rng.random::<f64>()));
        }
    }
    t.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_rows_all_have_exact_degree() {
        let m: CsrMatrix<f64> = generate_regular(500, 500, 6, 3);
        let stats = m.row_stats();
        assert_eq!(stats.max_row, 6);
        assert_eq!(m.nnz(), 500 * 6);
        assert!(!stats.looks_power_law());
    }

    #[test]
    fn density_matches_request() {
        let m: CsrMatrix<f64> = generate_uniform(2000, 2000, 10.0, 1);
        let stats = m.row_stats();
        assert!((stats.mean - 10.0).abs() < 0.5, "mean {}", stats.mean);
    }

    #[test]
    fn degrees_are_not_skewed() {
        let m: CsrMatrix<f64> = generate_uniform(5000, 5000, 16.0, 2);
        let stats = m.row_stats();
        assert!(!stats.looks_power_law());
        // Poisson-ish: σ ≈ sqrt(μ)
        assert!(stats.std_dev < 2.0 * stats.mean.sqrt());
    }

    #[test]
    fn deterministic() {
        let a: CsrMatrix<f32> = generate_uniform(100, 50, 3.0, 7);
        let b: CsrMatrix<f32> = generate_uniform(100, 50, 3.0, 7);
        assert_eq!(a, b);
    }
}
