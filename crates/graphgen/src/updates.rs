//! Dynamic-graph update streams (paper §VII).
//!
//! Reproduces the paper's protocol verbatim: "We randomly selected 10% of
//! the rows to be updated. Scanning the columns of a row, we either
//! remove a column or add another column to the row, each with equal
//! probability. The total number of non-zeros in the matrix is thus kept
//! nearly constant."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse_formats::{CsrMatrix, Scalar, UpdateBatch};

/// Parameters for [`generate_update_batch`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UpdateConfig {
    /// Fraction of rows to touch (paper: 0.10).
    pub row_fraction: f64,
    /// Probability that a scanned column is deleted rather than paired
    /// with an insertion (paper: 0.5).
    pub delete_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        UpdateConfig {
            row_fraction: 0.10,
            delete_probability: 0.5,
            seed: 0xD1FF_2014,
        }
    }
}

/// Generate one §VII update batch for `m`.
pub fn generate_update_batch<T: Scalar>(m: &CsrMatrix<T>, cfg: &UpdateConfig) -> UpdateBatch<T> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rows = m.rows();
    let n_touch = ((rows as f64 * cfg.row_fraction).round() as usize).clamp(1, rows);

    // Random sample of rows without replacement (partial Fisher-Yates),
    // then sorted as the paper's kernel requires.
    let mut ids: Vec<u32> = (0..rows as u32).collect();
    for i in 0..n_touch {
        let j = rng.random_range(i..rows);
        ids.swap(i, j);
    }
    let mut touched: Vec<u32> = ids[..n_touch].to_vec();
    touched.sort_unstable();

    let mut delete_offsets = Vec::with_capacity(n_touch + 1);
    let mut delete_cols = Vec::new();
    let mut insert_offsets = Vec::with_capacity(n_touch + 1);
    let mut insert_cols: Vec<u32> = Vec::new();
    let mut insert_vals: Vec<T> = Vec::new();
    delete_offsets.push(0u32);
    insert_offsets.push(0u32);

    let cols = m.cols();
    let mut row_inserts: Vec<(u32, T)> = Vec::new();
    for &r in &touched {
        let (rcols, _) = m.row(r as usize);
        row_inserts.clear();
        let mut row_deletes: Vec<u32> = Vec::new();
        for &c in rcols {
            if rng.random::<f64>() < cfg.delete_probability {
                row_deletes.push(c);
            } else {
                // "add another column": draw a column not already present
                // (and not just queued for insertion).
                for _ in 0..16 {
                    let nc = rng.random_range(0..cols as u32);
                    if rcols.binary_search(&nc).is_err()
                        && !row_inserts.iter().any(|&(ic, _)| ic == nc)
                    {
                        row_inserts.push((nc, T::from_f64(0.5 + rng.random::<f64>())));
                        break;
                    }
                }
            }
        }
        row_inserts.sort_unstable_by_key(|&(c, _)| c);
        delete_cols.extend_from_slice(&row_deletes);
        delete_offsets.push(delete_cols.len() as u32);
        for (c, v) in row_inserts.drain(..) {
            insert_cols.push(c);
            insert_vals.push(v);
        }
        insert_offsets.push(insert_cols.len() as u32);
    }

    let batch = UpdateBatch {
        rows: touched,
        delete_offsets,
        delete_cols,
        insert_offsets,
        insert_cols,
        insert_vals,
    };
    debug_assert!(batch.validate().is_ok());
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::{generate_power_law, PowerLawConfig};

    fn matrix() -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows: 2000,
            cols: 2000,
            mean_degree: 10.0,
            max_degree: 256,
            pinned_max_rows: 2,
            col_skew: 0.4,
            seed: 11,
            ..Default::default()
        })
    }

    #[test]
    fn batch_touches_requested_fraction() {
        let m = matrix();
        let b = generate_update_batch(&m, &UpdateConfig::default());
        assert_eq!(b.touched_rows(), 200);
        b.validate().unwrap();
    }

    #[test]
    fn nnz_stays_nearly_constant() {
        let m = matrix();
        let b = generate_update_batch(&m, &UpdateConfig::default());
        let updated = b.apply_to_csr(&m);
        let drift = (updated.nnz() as f64 - m.nnz() as f64).abs() / m.nnz() as f64;
        assert!(drift < 0.05, "nnz drifted {:.1}%", drift * 100.0);
    }

    #[test]
    fn deletes_reference_existing_columns() {
        let m = matrix();
        let b = generate_update_batch(&m, &UpdateConfig::default());
        for (i, &r) in b.rows.iter().enumerate() {
            let (del, _, _) = b.row_ops(i);
            let (rcols, _) = m.row(r as usize);
            for c in del {
                assert!(rcols.binary_search(c).is_ok(), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn inserts_reference_new_columns() {
        let m = matrix();
        let b = generate_update_batch(&m, &UpdateConfig::default());
        for (i, &r) in b.rows.iter().enumerate() {
            let (_, ins, _) = b.row_ops(i);
            let (rcols, _) = m.row(r as usize);
            for c in ins {
                assert!(rcols.binary_search(c).is_err(), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = matrix();
        let a = generate_update_batch(&m, &UpdateConfig::default());
        let b = generate_update_batch(&m, &UpdateConfig::default());
        assert_eq!(a, b);
        let c = generate_update_batch(
            &m,
            &UpdateConfig {
                seed: 99,
                ..Default::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn delete_probability_one_only_deletes() {
        let m = matrix();
        let b = generate_update_batch(
            &m,
            &UpdateConfig {
                delete_probability: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(b.total_inserts(), 0);
        assert!(b.total_deletes() > 0);
        let updated = b.apply_to_csr(&m);
        assert!(updated.nnz() < m.nnz());
    }
}
