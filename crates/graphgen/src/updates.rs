//! Dynamic-graph update streams (paper §VII).
//!
//! Reproduces the paper's protocol verbatim: "We randomly selected 10% of
//! the rows to be updated. Scanning the columns of a row, we either
//! remove a column or add another column to the row, each with equal
//! probability. The total number of non-zeros in the matrix is thus kept
//! nearly constant."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse_formats::{CsrMatrix, Scalar, UpdateBatch};

/// Parameters for [`generate_update_batch`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UpdateConfig {
    /// Fraction of rows to touch (paper: 0.10).
    pub row_fraction: f64,
    /// Probability that a scanned column is deleted rather than paired
    /// with an insertion (paper: 0.5).
    pub delete_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        UpdateConfig {
            row_fraction: 0.10,
            delete_probability: 0.5,
            seed: 0xD1FF_2014,
        }
    }
}

/// Generate one §VII update batch for `m`.
pub fn generate_update_batch<T: Scalar>(m: &CsrMatrix<T>, cfg: &UpdateConfig) -> UpdateBatch<T> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rows = m.rows();
    let n_touch = ((rows as f64 * cfg.row_fraction).round() as usize).clamp(1, rows);

    // Random sample of rows without replacement (partial Fisher-Yates),
    // then sorted as the paper's kernel requires.
    let mut ids: Vec<u32> = (0..rows as u32).collect();
    for i in 0..n_touch {
        let j = rng.random_range(i..rows);
        ids.swap(i, j);
    }
    let mut touched: Vec<u32> = ids[..n_touch].to_vec();
    touched.sort_unstable();

    let mut delete_offsets = Vec::with_capacity(n_touch + 1);
    let mut delete_cols = Vec::new();
    let mut insert_offsets = Vec::with_capacity(n_touch + 1);
    let mut insert_cols: Vec<u32> = Vec::new();
    let mut insert_vals: Vec<T> = Vec::new();
    delete_offsets.push(0u32);
    insert_offsets.push(0u32);

    let cols = m.cols();
    let mut row_inserts: Vec<(u32, T)> = Vec::new();
    for &r in &touched {
        let (rcols, _) = m.row(r as usize);
        row_inserts.clear();
        let mut row_deletes: Vec<u32> = Vec::new();
        for &c in rcols {
            if rng.random::<f64>() < cfg.delete_probability {
                row_deletes.push(c);
            } else {
                // "add another column": draw a column not already present
                // (and not just queued for insertion).
                for _ in 0..16 {
                    let nc = rng.random_range(0..cols as u32);
                    if rcols.binary_search(&nc).is_err()
                        && !row_inserts.iter().any(|&(ic, _)| ic == nc)
                    {
                        row_inserts.push((nc, T::from_f64(0.5 + rng.random::<f64>())));
                        break;
                    }
                }
            }
        }
        row_inserts.sort_unstable_by_key(|&(c, _)| c);
        delete_cols.extend_from_slice(&row_deletes);
        delete_offsets.push(delete_cols.len() as u32);
        for (c, v) in row_inserts.drain(..) {
            insert_cols.push(c);
            insert_vals.push(v);
        }
        insert_offsets.push(insert_cols.len() as u32);
    }

    let batch = UpdateBatch {
        rows: touched,
        delete_offsets,
        delete_cols,
        insert_offsets,
        insert_cols,
        insert_vals,
    };
    debug_assert!(batch.validate().is_ok());
    batch
}

/// Parameters for [`generate_edge_stream`]: a sustained, rate-pinned
/// RMAT churn workload for streaming-maintenance experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnConfig {
    /// Nominal sustained edge-update rate (inserts + deletes per
    /// second of virtual time).
    pub updates_per_sec: f64,
    /// Batch cadence: updates accumulate for this long, then ship as one
    /// [`UpdateBatch`] stamped with the window's end time.
    pub batch_interval_s: f64,
    /// Stream duration, seconds of virtual time.
    pub horizon_s: f64,
    /// Probability an update is an insert (the rest are deletes of live
    /// edges). 0.5 keeps nnz nearly constant, like §VII.
    pub insert_fraction: f64,
    /// R-MAT quadrant probabilities for inserted edges (`d = 1-a-b-c`):
    /// new edges land with the same skew that built the graph, so churn
    /// keeps hammering the hot rows.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            updates_per_sec: 100_000.0,
            batch_interval_s: 0.01,
            horizon_s: 0.1,
            insert_fraction: 0.5,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0x57AE_A414,
        }
    }
}

/// One churn batch with its virtual-time stamp (the end of its
/// accumulation window).
#[derive(Clone, Debug, PartialEq)]
pub struct TimedBatch<T> {
    /// When the batch is due to be applied, seconds of virtual time.
    pub at_s: f64,
    /// Edge updates recorded for the batch (inserts + deletes, after
    /// within-batch net-effect folding).
    pub ops: usize,
    /// The batch, valid against the matrix state *before* it.
    pub batch: UpdateBatch<T>,
}

/// Pending net effect of this batch's updates on one edge.
enum Pending<T> {
    Insert(T),
    Delete,
}

/// Generate a sustained edge-churn stream against `m`: batches of RMAT
/// inserts and live-edge deletes, applied consecutively (batch `k` is
/// valid for the matrix after batches `0..k`). The stream is
/// *rate-pinned*: the number of updates emitted by the end of window `k`
/// is `round(rate · t_k)` — an error-free accumulator like the loadgen
/// mean-rate contract, so the empirical rate matches
/// `cfg.updates_per_sec` to well under 1% over any horizon. Updates that
/// cancel within one window (insert then delete of the same new edge)
/// still count toward the rate but fold out of the shipped batch.
pub fn generate_edge_stream<T: Scalar>(m: &CsrMatrix<T>, cfg: &ChurnConfig) -> Vec<TimedBatch<T>> {
    assert!(cfg.updates_per_sec > 0.0, "rate must be positive");
    assert!(cfg.batch_interval_s > 0.0, "interval must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.insert_fraction),
        "insert fraction must be a probability"
    );
    let (rows, cols) = (m.rows(), m.cols());
    let levels = usize::max(rows, cols).next_power_of_two().trailing_zeros();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Live-edge state, kept in lockstep with the emitted batches.
    let mut adj: Vec<Vec<u32>> = (0..rows).map(|r| m.row(r).0.to_vec()).collect();
    let mut edges: Vec<(u32, u32)> = (0..rows as u32)
        .flat_map(|r| {
            m.row(r as usize)
                .0
                .iter()
                .map(move |&c| (r, c))
                .collect::<Vec<_>>()
        })
        .collect();

    let mut out = Vec::new();
    let mut emitted = 0u64;
    let mut k = 0u64;
    loop {
        let t = (k + 1) as f64 * cfg.batch_interval_s;
        if t > cfg.horizon_s + 1e-12 {
            break;
        }
        k += 1;
        let due = (cfg.updates_per_sec * t).round() as u64;
        let ops = (due - emitted) as usize;
        emitted = due;

        // (row, col) -> (existed before this batch, net op)
        let mut pending: std::collections::BTreeMap<(u32, u32), (bool, Pending<T>)> =
            std::collections::BTreeMap::new();
        for _ in 0..ops {
            let mut insert = rng.random::<f64>() < cfg.insert_fraction || edges.is_empty();
            if insert {
                let mut placed = false;
                for _ in 0..16 {
                    // R-MAT quadrant descent, same recursion as the
                    // static generator, rejecting out-of-shape and live
                    // edges.
                    let (mut r, mut c) = (0u32, 0u32);
                    for level in (0..levels).rev() {
                        let p: f64 = rng.random();
                        let (dr, dc) = if p < cfg.a {
                            (0, 0)
                        } else if p < cfg.a + cfg.b {
                            (0, 1)
                        } else if p < cfg.a + cfg.b + cfg.c {
                            (1, 0)
                        } else {
                            (1, 1)
                        };
                        r |= dr << level;
                        c |= dc << level;
                    }
                    if r as usize >= rows || c as usize >= cols {
                        continue;
                    }
                    if let Err(pos) = adj[r as usize].binary_search(&c) {
                        let val = T::from_f64(0.5 + rng.random::<f64>());
                        adj[r as usize].insert(pos, c);
                        edges.push((r, c));
                        // first touch of a currently-dead edge means it
                        // was dead pre-batch too
                        let existed = pending.get(&(r, c)).map(|e| e.0).unwrap_or(false);
                        pending.insert((r, c), (existed, Pending::Insert(val)));
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    insert = false; // graph too dense here: delete instead
                }
            }
            if !insert {
                if edges.is_empty() {
                    continue; // nothing left to delete (degenerate)
                }
                let i = rng.random_range(0..edges.len());
                let (r, c) = edges.swap_remove(i);
                let pos = adj[r as usize]
                    .binary_search(&c)
                    .expect("edge list and adjacency must agree");
                adj[r as usize].remove(pos);
                match pending.get(&(r, c)).map(|e| e.0) {
                    Some(false) => {
                        // inserted earlier this batch: net no-op
                        pending.remove(&(r, c));
                    }
                    Some(true) | None => {
                        pending.insert((r, c), (true, Pending::Delete));
                    }
                }
            }
        }

        // Fold the pending map (sorted by row, then col) into the wire
        // format. An edge that was live pre-batch and is live again after
        // a delete→reinsert chain is a structural no-op; dropping it keeps
        // the invariant that every emitted insert targets a dead edge and
        // every emitted delete targets a live one.
        pending.retain(|_, entry| !matches!(entry, (true, Pending::Insert(_))));
        let mut batch = UpdateBatch::<T>::empty();
        let mut cur_row: Option<u32> = None;
        for (&(r, c), entry) in &pending {
            if cur_row != Some(r) {
                if cur_row.is_some() {
                    batch.delete_offsets.push(batch.delete_cols.len() as u32);
                    batch.insert_offsets.push(batch.insert_cols.len() as u32);
                }
                batch.rows.push(r);
                cur_row = Some(r);
            }
            match entry {
                (_, Pending::Insert(v)) => {
                    batch.insert_cols.push(c);
                    batch.insert_vals.push(*v);
                }
                (_, Pending::Delete) => batch.delete_cols.push(c),
            }
        }
        if cur_row.is_some() {
            batch.delete_offsets.push(batch.delete_cols.len() as u32);
            batch.insert_offsets.push(batch.insert_cols.len() as u32);
        }
        debug_assert!(batch.validate_for(rows, cols).is_ok());
        out.push(TimedBatch {
            at_s: t,
            ops,
            batch,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::{generate_power_law, PowerLawConfig};

    fn matrix() -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows: 2000,
            cols: 2000,
            mean_degree: 10.0,
            max_degree: 256,
            pinned_max_rows: 2,
            col_skew: 0.4,
            seed: 11,
            ..Default::default()
        })
    }

    #[test]
    fn batch_touches_requested_fraction() {
        let m = matrix();
        let b = generate_update_batch(&m, &UpdateConfig::default());
        assert_eq!(b.touched_rows(), 200);
        b.validate().unwrap();
    }

    #[test]
    fn nnz_stays_nearly_constant() {
        let m = matrix();
        let b = generate_update_batch(&m, &UpdateConfig::default());
        let updated = b.apply_to_csr(&m);
        let drift = (updated.nnz() as f64 - m.nnz() as f64).abs() / m.nnz() as f64;
        assert!(drift < 0.05, "nnz drifted {:.1}%", drift * 100.0);
    }

    #[test]
    fn deletes_reference_existing_columns() {
        let m = matrix();
        let b = generate_update_batch(&m, &UpdateConfig::default());
        for (i, &r) in b.rows.iter().enumerate() {
            let (del, _, _) = b.row_ops(i);
            let (rcols, _) = m.row(r as usize);
            for c in del {
                assert!(rcols.binary_search(c).is_ok(), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn inserts_reference_new_columns() {
        let m = matrix();
        let b = generate_update_batch(&m, &UpdateConfig::default());
        for (i, &r) in b.rows.iter().enumerate() {
            let (_, ins, _) = b.row_ops(i);
            let (rcols, _) = m.row(r as usize);
            for c in ins {
                assert!(rcols.binary_search(c).is_err(), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = matrix();
        let a = generate_update_batch(&m, &UpdateConfig::default());
        let b = generate_update_batch(&m, &UpdateConfig::default());
        assert_eq!(a, b);
        let c = generate_update_batch(
            &m,
            &UpdateConfig {
                seed: 99,
                ..Default::default()
            },
        );
        assert_ne!(a, c);
    }

    fn rmat_matrix() -> CsrMatrix<f64> {
        crate::rmat::generate_rmat(&crate::rmat::RmatConfig {
            scale: 10,
            edge_factor: 8,
            seed: 31,
            ..Default::default()
        })
    }

    #[test]
    fn edge_stream_rate_lands_within_two_percent_of_nominal() {
        // awkward non-round rate × interval, mirroring the loadgen
        // mean-rate contract fix
        let m = rmat_matrix();
        let cfg = ChurnConfig {
            updates_per_sec: 3333.3,
            batch_interval_s: 0.0123,
            horizon_s: 0.9,
            ..Default::default()
        };
        let stream = generate_edge_stream(&m, &cfg);
        assert!(stream.len() >= 70, "got {} batches", stream.len());
        let total_ops: usize = stream.iter().map(|b| b.ops).sum();
        let span = stream.last().unwrap().at_s;
        let empirical = total_ops as f64 / span;
        let err = (empirical - cfg.updates_per_sec).abs() / cfg.updates_per_sec;
        assert!(
            err < 0.02,
            "empirical {empirical:.1} vs nominal {} ({:.2}% off)",
            cfg.updates_per_sec,
            err * 100.0
        );
    }

    #[test]
    fn edge_stream_batches_apply_consecutively() {
        let m = rmat_matrix();
        let stream = generate_edge_stream(
            &m,
            &ChurnConfig {
                updates_per_sec: 20_000.0,
                batch_interval_s: 0.005,
                horizon_s: 0.05,
                ..Default::default()
            },
        );
        let mut cur = m.clone();
        for tb in &stream {
            tb.batch.validate_for(cur.rows(), cur.cols()).unwrap();
            // every delete targets a live edge; every insert a dead one
            for (i, &r) in tb.batch.rows.iter().enumerate() {
                let (del, ins, _) = tb.batch.row_ops(i);
                let (rcols, _) = cur.row(r as usize);
                for c in del {
                    assert!(rcols.binary_search(c).is_ok(), "row {r} col {c}");
                }
                for c in ins {
                    assert!(rcols.binary_search(c).is_err(), "row {r} col {c}");
                }
            }
            cur = tb.batch.apply_to_csr(&cur);
        }
        // balanced mix keeps nnz nearly constant
        let drift = (cur.nnz() as f64 - m.nnz() as f64).abs() / m.nnz() as f64;
        assert!(drift < 0.05, "nnz drifted {:.1}%", drift * 100.0);
    }

    #[test]
    fn edge_stream_insert_mix_controls_growth() {
        let m = rmat_matrix();
        let grow = generate_edge_stream(
            &m,
            &ChurnConfig {
                insert_fraction: 1.0,
                ..Default::default()
            },
        );
        let mut cur = m.clone();
        for tb in &grow {
            cur = tb.batch.apply_to_csr(&cur);
        }
        assert!(cur.nnz() > m.nnz());
        let shrink = generate_edge_stream(
            &m,
            &ChurnConfig {
                insert_fraction: 0.0,
                ..Default::default()
            },
        );
        let mut cur = m.clone();
        for tb in &shrink {
            cur = tb.batch.apply_to_csr(&cur);
        }
        assert!(cur.nnz() < m.nnz());
    }

    #[test]
    fn edge_stream_is_deterministic_per_seed() {
        let m = rmat_matrix();
        let cfg = ChurnConfig::default();
        let a = generate_edge_stream(&m, &cfg);
        let b = generate_edge_stream(&m, &cfg);
        assert_eq!(a, b);
        let c = generate_edge_stream(
            &m,
            &ChurnConfig {
                seed: 9,
                ..Default::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn delete_probability_one_only_deletes() {
        let m = matrix();
        let b = generate_update_batch(
            &m,
            &UpdateConfig {
                delete_probability: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(b.total_inserts(), 0);
        assert!(b.total_deletes() > 0);
        let updated = b.apply_to_csr(&m);
        assert!(updated.nnz() < m.nnz());
    }
}
