//! R-MAT recursive matrix generator (Chakrabarti, Zhan & Faloutsos).
//!
//! The classic Kronecker-style generator behind Graph500: each edge is
//! placed by recursively descending into one of four quadrants with
//! probabilities `(a, b, c, d)`. With the canonical skewed parameters it
//! produces power-law in- and out-degree distributions — an independent
//! second source of paper-shaped inputs alongside [`crate::powerlaw`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse_formats::{CsrMatrix, Scalar, TripletMatrix};

/// Configuration for [`generate_rmat`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatConfig {
    /// log2 of the number of vertices (matrix is `2^scale x 2^scale`).
    pub scale: u32,
    /// Average edges per vertex (Graph500 uses 16).
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to ~1. Graph500: (0.57, 0.19,
    /// 0.19, 0.05).
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 14,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0x5EED_0500,
        }
    }
}

impl RmatConfig {
    /// The implied `d` probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate an R-MAT matrix. Duplicate edges are merged (values summed),
/// so the realized nnz is slightly below `edge_factor * 2^scale`.
pub fn generate_rmat<T: Scalar>(cfg: &RmatConfig) -> CsrMatrix<T> {
    assert!(cfg.scale >= 1 && cfg.scale <= 30, "scale out of range");
    let d = cfg.d();
    assert!(
        cfg.a >= 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0 && d >= -1e-9,
        "quadrant probabilities must be non-negative"
    );
    let n = 1usize << cfg.scale;
    let edges = n * cfg.edge_factor;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = TripletMatrix::with_capacity(n, n, edges);
    for _ in 0..edges {
        let (mut r, mut c) = (0usize, 0usize);
        for level in (0..cfg.scale).rev() {
            let p: f64 = rng.random();
            let (dr, dc) = if p < cfg.a {
                (0, 0)
            } else if p < cfg.a + cfg.b {
                (0, 1)
            } else if p < cfg.a + cfg.b + cfg.c {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << level;
            c |= dc << level;
        }
        t.push_unchecked(r as u32, c as u32, T::ONE);
    }
    t.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_density_are_as_configured() {
        let cfg = RmatConfig {
            scale: 10,
            edge_factor: 8,
            ..Default::default()
        };
        let m: CsrMatrix<f64> = generate_rmat(&cfg);
        assert_eq!(m.shape(), (1024, 1024));
        // duplicates merge, so nnz ≤ edges but most survive
        assert!(m.nnz() <= 8 * 1024);
        assert!(m.nnz() > 4 * 1024, "nnz {}", m.nnz());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RmatConfig {
            scale: 9,
            ..Default::default()
        };
        let a: CsrMatrix<f32> = generate_rmat(&cfg);
        let b: CsrMatrix<f32> = generate_rmat(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn skewed_parameters_give_skewed_degrees() {
        let cfg = RmatConfig {
            scale: 12,
            edge_factor: 16,
            ..Default::default()
        };
        let m: CsrMatrix<f64> = generate_rmat(&cfg);
        let stats = m.row_stats();
        assert!(
            stats.max_row as f64 > 6.0 * stats.mean,
            "max {} mean {}",
            stats.max_row,
            stats.mean
        );
    }

    #[test]
    fn uniform_parameters_give_flat_degrees() {
        let cfg = RmatConfig {
            scale: 12,
            edge_factor: 16,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            seed: 7,
        };
        let m: CsrMatrix<f64> = generate_rmat(&cfg);
        let stats = m.row_stats();
        assert!(
            stats.std_dev < stats.mean,
            "σ {} μ {}",
            stats.std_dev,
            stats.mean
        );
    }

    #[test]
    fn duplicate_edges_sum_values() {
        // With scale 2 and many edges, duplicates are certain; all values
        // must be positive integers (sums of ONE).
        let cfg = RmatConfig {
            scale: 2,
            edge_factor: 64,
            ..Default::default()
        };
        let m: CsrMatrix<f64> = generate_rmat(&cfg);
        let total: f64 = m.values().iter().sum();
        assert_eq!(total, 4.0 * 64.0);
    }
}
