//! Discrete sampling utilities: Walker alias tables and truncated
//! power-law fitting.

use rand::Rng;

/// Walker alias-method sampler over a finite discrete distribution:
/// O(n) construction, O(1) sampling — essential when drawing hundreds of
/// millions of Zipf-distributed column indices.
#[derive(Clone, Debug)]
pub struct DiscreteAlias {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl DiscreteAlias {
    /// Build from (unnormalized, non-negative) weights. At least one
    /// weight must be positive.
    pub fn new(weights: &[f64]) -> DiscreteAlias {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one outcome");
        assert!(n <= u32::MAX as usize, "alias table too large");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "alias table weights must sum to a positive finite value"
        );
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            assert!(p >= 0.0, "negative weight at {i}");
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual numerical slack: everything left is probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        DiscreteAlias { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when the table has no outcomes (never — construction
    /// requires one), kept for API completeness.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// Unnormalized PMF of a truncated discrete power law:
/// `P(k) ∝ k^(-alpha)` for `k ∈ [1, k_max]`; index 0 of the returned
/// vector corresponds to outcome `k = 1`.
pub fn truncated_power_law_pmf(alpha: f64, k_max: usize) -> Vec<f64> {
    assert!(k_max >= 1);
    (1..=k_max).map(|k| (k as f64).powf(-alpha)).collect()
}

fn power_law_mean(alpha: f64, k_max: usize) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for k in 1..=k_max {
        let w = (k as f64).powf(-alpha);
        num += k as f64 * w;
        den += w;
    }
    num / den
}

/// Unnormalized PMF of a truncated geometric distribution:
/// `P(k) ∝ q^(k-1)` for `k ∈ [1, k_max]`.
pub fn truncated_geometric_pmf(q: f64, k_max: usize) -> Vec<f64> {
    assert!(k_max >= 1 && (0.0..1.0).contains(&q.min(0.9999999)));
    let mut w = Vec::with_capacity(k_max);
    let mut cur = 1.0f64;
    for _ in 0..k_max {
        w.push(cur);
        cur *= q;
        if cur < 1e-300 {
            cur = 1e-300;
        }
    }
    w
}

fn geometric_mean_deg(q: f64, k_max: usize) -> f64 {
    let w = truncated_geometric_pmf(q, k_max);
    let num: f64 = w.iter().enumerate().map(|(i, p)| (i + 1) as f64 * p).sum();
    let den: f64 = w.iter().sum();
    num / den
}

/// Unnormalized PMF of a Poisson(λ) truncated to `[1, k_max]` (log-space
/// construction, stable for large λ).
pub fn truncated_poisson_pmf(lambda: f64, k_max: usize) -> Vec<f64> {
    assert!(k_max >= 1 && lambda > 0.0);
    let ln_lambda = lambda.ln();
    let mut ln_fact = 0.0f64; // ln(k!)
    let mut lw = Vec::with_capacity(k_max);
    for k in 1..=k_max {
        ln_fact += (k as f64).ln();
        lw.push(k as f64 * ln_lambda - ln_fact);
    }
    let max = lw.iter().cloned().fold(f64::MIN, f64::max);
    lw.into_iter().map(|v| (v - max).exp()).collect()
}

/// PMF for the *thin-tailed* (non-power-law) matrices of Table I
/// (AMZ, DBL, RAL): a truncated geometric fitted to the target mean, or
/// a truncated Poisson when the geometric cannot reach the mean (which
/// happens when `target_mean` approaches `(k_max+1)/2`, e.g. AMZ's mean
/// 7.7 with max 10).
pub fn thin_tail_pmf(target_mean: f64, k_max: usize) -> Vec<f64> {
    let geometric_limit = geometric_mean_deg(1.0 - 1e-9, k_max);
    if target_mean < 0.95 * geometric_limit {
        // bisect q: mean is monotone increasing in q
        let (mut lo, mut hi) = (0.0f64, 1.0 - 1e-9);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if geometric_mean_deg(mid, k_max) < target_mean {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        truncated_geometric_pmf(0.5 * (lo + hi), k_max)
    } else {
        truncated_poisson_pmf(target_mean, k_max)
    }
}

/// Find the exponent α such that a power law truncated at `k_max` has the
/// requested mean degree. Bisection over α ∈ [0.01, 8]; the mean is
/// monotonically decreasing in α. Returns the clamped endpoint when the
/// target is outside the achievable range.
pub fn fit_alpha_for_mean(target_mean: f64, k_max: usize) -> f64 {
    assert!(k_max >= 1);
    let (mut lo, mut hi) = (0.01f64, 8.0f64);
    // mean(lo) is the largest achievable, mean(hi) the smallest.
    if target_mean >= power_law_mean(lo, k_max) {
        return lo;
    }
    if target_mean <= power_law_mean(hi, k_max) {
        return hi;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if power_law_mean(mid, k_max) > target_mean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alias_reproduces_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = DiscreteAlias::new(&weights);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        let n = 400_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "outcome {i}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn alias_single_outcome_always_samples_it() {
        let table = DiscreteAlias::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_handles_zero_weights() {
        let table = DiscreteAlias::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic]
    fn alias_rejects_all_zero() {
        DiscreteAlias::new(&[0.0, 0.0]);
    }

    #[test]
    fn power_law_mean_decreases_with_alpha() {
        let m1 = power_law_mean(1.0, 1000);
        let m2 = power_law_mean(2.0, 1000);
        let m3 = power_law_mean(3.0, 1000);
        assert!(m1 > m2 && m2 > m3);
    }

    #[test]
    fn fitted_alpha_hits_target_mean() {
        for (target, kmax) in [(5.0, 1000usize), (30.0, 10_000), (2.0, 100)] {
            let alpha = fit_alpha_for_mean(target, kmax);
            let achieved = power_law_mean(alpha, kmax);
            assert!(
                (achieved - target).abs() / target < 0.02,
                "target {target}: alpha {alpha} gives mean {achieved}"
            );
        }
    }

    #[test]
    fn fit_clamps_out_of_range_targets() {
        // mean larger than any power law can give at this k_max
        let alpha = fit_alpha_for_mean(1e6, 100);
        assert!(alpha <= 0.02);
        // mean of ~1 needs a huge alpha
        let alpha = fit_alpha_for_mean(1.0, 100);
        assert!(alpha >= 7.9);
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let pmf = truncated_power_law_pmf(1.5, 50);
        assert_eq!(pmf.len(), 50);
        assert!(pmf.windows(2).all(|w| w[0] > w[1]));
    }
}
