//! Power-law matrix generator.
//!
//! Produces matrices with the Figure-3 shape: a heavy concentration of
//! very short rows plus a long tail of very wide rows. Degrees are drawn
//! from a truncated discrete power law whose exponent is fitted to the
//! requested mean; a configurable number of rows are *pinned* to the
//! maximum degree so the tail the paper's dynamic-parallelism path targets
//! is guaranteed to exist at any scale.

use crate::sampling::{fit_alpha_for_mean, thin_tail_pmf, truncated_power_law_pmf, DiscreteAlias};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse_formats::{CsrMatrix, Scalar, TripletMatrix};

/// Row-degree distribution family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DegreeModel {
    /// Truncated power law fitted to the mean — the Figure 3 shape.
    #[default]
    PowerLaw,
    /// Thin tail (truncated geometric/Poisson) — the AMZ/DBL/RAL contrast
    /// cases whose σ stays near (or below) μ.
    ThinTail,
}

/// Configuration for [`generate_power_law`].
#[derive(Clone, Debug, PartialEq)]
pub struct PowerLawConfig {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns (== `rows` for adjacency matrices).
    pub cols: usize,
    /// Target mean non-zeros per row (Table I's μ).
    pub mean_degree: f64,
    /// Maximum non-zeros in any row (Table I's Max); also the power-law
    /// truncation point.
    pub max_degree: usize,
    /// Number of rows pinned to exactly `max_degree` (guarantees the long
    /// tail exists; the paper's matrices have a handful of such rows).
    pub pinned_max_rows: usize,
    /// Zipf exponent for *column* popularity (0.0 = uniform columns).
    /// Real web/social adjacency columns are themselves skewed; this
    /// shapes the x-vector reuse pattern the texture cache sees.
    pub col_skew: f64,
    /// RNG seed — all generation is deterministic given the config.
    pub seed: u64,
    /// Degree distribution family.
    pub degree_model: DegreeModel,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        PowerLawConfig {
            rows: 1 << 16,
            cols: 1 << 16,
            mean_degree: 12.0,
            max_degree: 2048,
            pinned_max_rows: 2,
            col_skew: 0.6,
            seed: 0xACE5_2014,
            degree_model: DegreeModel::PowerLaw,
        }
    }
}

/// Generate a power-law sparse matrix per `cfg`. Values are drawn from
/// `U(0.5, 1.5)` so no structural zeros appear and normalizations are
/// well-conditioned.
pub fn generate_power_law<T: Scalar>(cfg: &PowerLawConfig) -> CsrMatrix<T> {
    assert!(cfg.rows > 0 && cfg.cols > 0, "empty shape");
    let max_degree = cfg.max_degree.clamp(1, cfg.cols);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Degree distribution fitted to the target mean. The pinned max rows
    // contribute `pinned * max / rows` to the realized mean — significant
    // at small scales — so the sampled part is fitted to compensate.
    let pinned = cfg.pinned_max_rows.min(cfg.rows);
    let sampled_rows = (cfg.rows - pinned).max(1);
    let target_mean = ((cfg.mean_degree * cfg.rows as f64 - (pinned * max_degree) as f64)
        / sampled_rows as f64)
        .max(1.01);
    let pmf = match cfg.degree_model {
        DegreeModel::PowerLaw => {
            let alpha = fit_alpha_for_mean(target_mean, max_degree);
            truncated_power_law_pmf(alpha, max_degree)
        }
        DegreeModel::ThinTail => thin_tail_pmf(target_mean, max_degree),
    };
    let degree_table = DiscreteAlias::new(&pmf);

    // Column popularity: Zipf over a random permutation of columns so the
    // popular columns are not simply the low indices.
    let col_table = if cfg.col_skew > 0.0 {
        Some(DiscreteAlias::new(&zipf_weights(cfg.cols, cfg.col_skew)))
    } else {
        None
    };
    let mut col_perm: Vec<u32> = (0..cfg.cols as u32).collect();
    // Fisher-Yates shuffle.
    for i in (1..col_perm.len()).rev() {
        let j = rng.random_range(0..=i);
        col_perm.swap(i, j);
    }

    let mut degrees: Vec<usize> = (0..cfg.rows)
        .map(|_| degree_table.sample(&mut rng) + 1)
        .collect();
    // Pin the long tail.
    for d in degrees.iter_mut().take(cfg.pinned_max_rows.min(cfg.rows)) {
        *d = max_degree;
    }

    let est_nnz: usize = degrees.iter().sum();
    let mut t = TripletMatrix::with_capacity(cfg.rows, cfg.cols, est_nnz);
    let mut row_cols: Vec<u32> = Vec::with_capacity(max_degree);
    let mut seen = vec![false; cfg.cols];
    for (r, &d) in degrees.iter().enumerate() {
        sample_distinct_columns(
            d,
            cfg.cols,
            col_table.as_ref(),
            &col_perm,
            &mut rng,
            &mut row_cols,
            &mut seen,
        );
        for &c in &row_cols {
            let v = T::from_f64(0.5 + rng.random::<f64>());
            t.push_unchecked(r as u32, c, v);
        }
    }
    t.to_csr()
}

/// Zipf weights over `n` outcomes with exponent `s`.
fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (1..=n).map(|k| (k as f64).powf(-s)).collect()
}

/// Sample `d` distinct columns into `out`. Uses rejection against a
/// `seen` bitmap (reset on exit); falls back to dense selection when `d`
/// approaches the column count, where rejection would thrash.
fn sample_distinct_columns<R: Rng>(
    d: usize,
    cols: usize,
    table: Option<&DiscreteAlias>,
    perm: &[u32],
    rng: &mut R,
    out: &mut Vec<u32>,
    seen: &mut [bool],
) {
    out.clear();
    let d = d.min(cols);
    if d * 4 >= cols * 3 {
        // Dense case: choose which columns to *exclude*.
        let excluded = cols - d;
        for c in 0..cols as u32 {
            out.push(c);
        }
        for _ in 0..excluded {
            let i = rng.random_range(0..out.len());
            out.swap_remove(i);
        }
        return;
    }
    let mut attempts = 0usize;
    while out.len() < d {
        let raw = match table {
            Some(t) => perm[t.sample(rng)],
            None => rng.random_range(0..cols as u32),
        };
        if !seen[raw as usize] {
            seen[raw as usize] = true;
            out.push(raw);
        }
        attempts += 1;
        // Popular-column collisions can stall huge rows under heavy skew;
        // degrade gracefully to uniform sampling.
        if attempts > 20 * d + 100 {
            while out.len() < d {
                let raw = rng.random_range(0..cols as u32);
                if !seen[raw as usize] {
                    seen[raw as usize] = true;
                    out.push(raw);
                }
            }
            break;
        }
    }
    for &c in out.iter() {
        seen[c as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> PowerLawConfig {
        PowerLawConfig {
            rows: 4000,
            cols: 4000,
            mean_degree: 8.0,
            max_degree: 512,
            pinned_max_rows: 2,
            col_skew: 0.6,
            seed: 42,
            degree_model: DegreeModel::PowerLaw,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a: CsrMatrix<f64> = generate_power_law(&small_cfg());
        let b: CsrMatrix<f64> = generate_power_law(&small_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: CsrMatrix<f64> = generate_power_law(&small_cfg());
        let mut cfg = small_cfg();
        cfg.seed = 43;
        let b: CsrMatrix<f64> = generate_power_law(&cfg);
        assert_ne!(a, b);
    }

    #[test]
    fn mean_degree_is_close_to_target() {
        let m: CsrMatrix<f64> = generate_power_law(&small_cfg());
        let stats = m.row_stats();
        assert!(
            (stats.mean - 8.0).abs() / 8.0 < 0.15,
            "mean {} vs target 8",
            stats.mean
        );
    }

    #[test]
    fn max_degree_rows_are_pinned() {
        let m: CsrMatrix<f64> = generate_power_law(&small_cfg());
        let stats = m.row_stats();
        assert_eq!(stats.max_row, 512);
        assert_eq!(m.row_nnz(0), 512);
        assert_eq!(m.row_nnz(1), 512);
    }

    #[test]
    fn looks_power_law() {
        let m: CsrMatrix<f64> = generate_power_law(&small_cfg());
        assert!(m.row_stats().looks_power_law());
    }

    #[test]
    fn rows_have_distinct_sorted_columns() {
        let m: CsrMatrix<f64> = generate_power_law(&small_cfg());
        for r in 0..m.rows() {
            let (cols, _) = m.row(r);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {r}");
        }
    }

    #[test]
    fn zero_col_skew_is_supported() {
        let mut cfg = small_cfg();
        cfg.col_skew = 0.0;
        cfg.rows = 500;
        cfg.cols = 500;
        let m: CsrMatrix<f32> = generate_power_law(&cfg);
        assert!(m.nnz() > 0);
    }

    #[test]
    fn rectangular_shapes_work() {
        let cfg = PowerLawConfig {
            rows: 64,
            cols: 10_000,
            mean_degree: 200.0,
            max_degree: 3000,
            pinned_max_rows: 1,
            col_skew: 0.2,
            seed: 9,
            degree_model: DegreeModel::PowerLaw,
        };
        let m: CsrMatrix<f64> = generate_power_law(&cfg);
        assert_eq!(m.shape(), (64, 10_000));
        assert_eq!(m.row_stats().max_row, 3000);
    }

    #[test]
    fn near_dense_rows_use_exclusion_path() {
        let cfg = PowerLawConfig {
            rows: 8,
            cols: 32,
            mean_degree: 28.0,
            max_degree: 32,
            pinned_max_rows: 8,
            col_skew: 0.5,
            seed: 3,
            degree_model: DegreeModel::PowerLaw,
        };
        let m: CsrMatrix<f64> = generate_power_law(&cfg);
        for r in 0..8 {
            assert_eq!(m.row_nnz(r), 32);
        }
    }

    #[test]
    fn values_are_in_expected_range() {
        let m: CsrMatrix<f64> = generate_power_law(&small_cfg());
        assert!(m.values().iter().all(|&v| (0.5..1.5).contains(&v)));
    }
}
