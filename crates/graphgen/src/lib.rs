//! # graphgen — synthetic sparse matrices with paper-matched shape
//!
//! The paper evaluates on 17 matrices from the University of Florida
//! Sparse Matrix Collection (Table I). This environment has no access to
//! the collection, so this crate generates **seeded synthetic analogs**
//! whose *row-length distributions* match each matrix's published
//! statistics (rows, μ, max, power-law tail). ACSR's binning, dynamic
//! parallelism, and every comparison in the paper depend only on that
//! distribution plus the column access pattern, which the generators also
//! skew realistically (Zipf-distributed column popularity).
//!
//! Contents:
//! * [`sampling`] — alias-method discrete sampling, truncated power-law
//!   fitting;
//! * [`powerlaw`] — the main generator (degree sequence → distinct-column
//!   rows);
//! * [`rmat`] — recursive-matrix (R-MAT) Kronecker-style generator;
//! * [`uniform`] — Erdős–Rényi-style uniform matrices (the AMZ/DBL
//!   contrast cases are *low-skew*, not uniform, but uniform is the
//!   limiting case used in ablations);
//! * [`suite`] — the Table I analog suite;
//! * [`updates`] — the §VII dynamic-graph update-stream generator.

pub mod powerlaw;
pub mod rmat;
pub mod sampling;
pub mod suite;
pub mod uniform;
pub mod updates;

pub use powerlaw::{generate_power_law, PowerLawConfig};
pub use rmat::{generate_rmat, RmatConfig};
pub use sampling::{fit_alpha_for_mean, truncated_power_law_pmf, DiscreteAlias};
pub use suite::{generate_suite, MatrixSpec, SuiteMatrix, TABLE1_SUITE};
pub use uniform::{generate_regular, generate_uniform};
pub use updates::{
    generate_edge_stream, generate_update_batch, ChurnConfig, TimedBatch, UpdateConfig,
};
