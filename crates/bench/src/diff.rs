//! `repro bench-diff <baseline.json> <new.json>` — the perf-regression
//! gate.
//!
//! Both files are parsed as JSON and flattened into `path -> number`
//! maps. Arrays of keyed objects (anything carrying `device`/`name`/
//! `phase`/`matrix` string fields, like `PROFILE_*.json` kernel rows or
//! experiment row dumps) flatten by those keys rather than by index, so
//! reordering rows never shows up as a diff. Each shared numeric leaf
//! whose name identifies a *direction* (higher-better throughput/
//! efficiency metrics, lower-better times/imbalances) is compared under
//! a relative tolerance; any metric moving the wrong way by more than
//! the tolerance is a regression. Direction-less leaves (raw counters,
//! ids) are informational only.

use serde::Value;
use std::collections::BTreeMap;

/// Is a larger value better (`Some(true)`), worse (`Some(false)`), or
/// not a perf metric at all (`None`)? Decided from the leaf's own name.
fn direction(leaf: &str) -> Option<bool> {
    const HIGHER: &[&str] = &[
        "gflops",
        "per_sec",
        "speedup",
        "efficiency",
        "hit_rate",
        "occupancy",
        "throughput",
        "bandwidth",
        "dram_gbs",
        "attainment",
        "goodput",
    ];
    const LOWER: &[&str] = &[
        "time",
        "seconds",
        "latency",
        "p50",
        "p95",
        "p99",
        "imbalance",
        "serialization",
        "divergent",
        "overhead",
    ];
    if HIGHER.iter().any(|k| leaf.contains(k)) {
        return Some(true);
    }
    if LOWER.iter().any(|k| leaf.contains(k)) || leaf.ends_with("_s") || leaf.ends_with("_ms") {
        return Some(false);
    }
    None
}

/// Flatten a JSON tree into `path -> value` for every numeric leaf.
fn flatten(value: &Value, prefix: &str, out: &mut BTreeMap<String, f64>) {
    match value {
        Value::I64(v) => {
            out.insert(prefix.to_string(), *v as f64);
        }
        Value::U64(v) => {
            out.insert(prefix.to_string(), *v as f64);
        }
        Value::F64(v) => {
            out.insert(prefix.to_string(), *v);
        }
        Value::Object(entries) => {
            for (k, v) in entries {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}/{k}")
                };
                flatten(v, &path, out);
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                let seg = element_key(item).unwrap_or_else(|| i.to_string());
                flatten(item, &format!("{prefix}/{seg}"), out);
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

/// Stable identity for an object inside an array: the concatenation of
/// its well-known naming fields, if it has any.
fn element_key(item: &Value) -> Option<String> {
    let Value::Object(entries) = item else {
        return None;
    };
    let mut parts = Vec::new();
    for field in ["device", "phase", "matrix", "kind", "name", "kernel"] {
        if let Some(Value::Str(s)) = entries.iter().find(|(k, _)| k == field).map(|(_, v)| v) {
            parts.push(s.clone());
        }
    }
    (!parts.is_empty()).then(|| parts.join(":"))
}

/// One compared metric that moved beyond tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    pub path: String,
    pub baseline: f64,
    pub new: f64,
    /// Signed relative change `(new - baseline) / |baseline|`.
    pub rel: f64,
    /// True when the move is in the *bad* direction.
    pub regression: bool,
}

/// Outcome of a bench diff.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Directional metrics compared.
    pub compared: usize,
    /// Moves beyond tolerance, regressions and improvements alike.
    pub deltas: Vec<Delta>,
    /// Directional metrics present in the baseline but missing (or
    /// null) in the new file — always a gate failure.
    pub missing: Vec<String>,
}

impl DiffReport {
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.regression)
    }

    /// Does the gate pass?
    pub fn pass(&self) -> bool {
        self.missing.is_empty() && self.regressions().count() == 0
    }

    /// Human-readable summary.
    pub fn render(&self, tolerance: f64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for path in &self.missing {
            let _ = writeln!(out, "MISSING     {path} (present in baseline)");
        }
        for d in &self.deltas {
            let _ = writeln!(
                out,
                "{}  {:>+7.1}%  {}  {:.6} -> {:.6}",
                if d.regression {
                    "REGRESSION"
                } else {
                    "improved  "
                },
                100.0 * d.rel,
                d.path,
                d.baseline,
                d.new
            );
        }
        let n_reg = self.regressions().count() + self.missing.len();
        let _ = writeln!(
            out,
            "bench-diff: {} metrics compared, {} beyond ±{:.1}% tolerance, {} regression(s)",
            self.compared,
            self.deltas.len(),
            100.0 * tolerance,
            n_reg
        );
        let _ = writeln!(out, "{}", if self.pass() { "PASS" } else { "FAIL" });
        out
    }
}

/// Compare two parsed JSON documents under a relative tolerance.
pub fn diff_values(baseline: &Value, new: &Value, tolerance: f64) -> DiffReport {
    let mut base_map = BTreeMap::new();
    let mut new_map = BTreeMap::new();
    flatten(baseline, "", &mut base_map);
    flatten(new, "", &mut new_map);

    let mut report = DiffReport::default();
    for (path, &base) in &base_map {
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let Some(higher_better) = direction(leaf) else {
            continue;
        };
        let Some(&new) = new_map.get(path) else {
            report.missing.push(path.clone());
            continue;
        };
        report.compared += 1;
        if base == 0.0 {
            // No relative scale; only a wrong-direction move from
            // exactly zero counts (e.g. imbalance appearing from none).
            continue;
        }
        let rel = (new - base) / base.abs();
        if rel.abs() <= tolerance {
            continue;
        }
        let regression = if higher_better { rel < 0.0 } else { rel > 0.0 };
        report.deltas.push(Delta {
            path: path.clone(),
            baseline: base,
            new,
            rel,
            regression,
        });
    }
    report
}

/// File-level entry point: parse both documents and compare. `Err` is a
/// usage/parse problem, not a regression.
pub fn diff_files(baseline: &str, new: &str, tolerance: f64) -> Result<DiffReport, String> {
    let read = |path: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    Ok(diff_values(&read(baseline)?, &read(new)?, tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(time: f64, gflops: f64) -> Value {
        serde_json::from_str(&format!(
            "{{\"kernels\":[{{\"device\":\"GTX Titan\",\"name\":\"csr_vector\",\
             \"time_s\":{time:?},\"metrics\":{{\"achieved_gflops\":{gflops:?}}},\
             \"counters\":{{\"flops\":100}}}}]}}"
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let r = diff_values(&doc(1.0, 5.0), &doc(1.0, 5.0), 0.05);
        assert!(r.pass());
        assert_eq!(r.compared, 2, "time_s and achieved_gflops: {r:?}");
        assert!(r.deltas.is_empty());
    }

    #[test]
    fn slower_time_is_a_regression() {
        let r = diff_values(&doc(1.0, 5.0), &doc(1.2, 5.0), 0.05);
        assert!(!r.pass());
        let reg: Vec<_> = r.regressions().collect();
        assert_eq!(reg.len(), 1);
        assert!(reg[0].path.ends_with("time_s"), "{}", reg[0].path);
        assert!(reg[0].rel > 0.19 && reg[0].rel < 0.21);
    }

    #[test]
    fn lower_gflops_is_a_regression_but_higher_is_improvement() {
        let worse = diff_values(&doc(1.0, 5.0), &doc(1.0, 4.0), 0.05);
        assert!(!worse.pass());
        let better = diff_values(&doc(1.0, 5.0), &doc(1.0, 6.0), 0.05);
        assert!(better.pass(), "faster must pass the gate");
        assert_eq!(better.deltas.len(), 1, "still reported as a delta");
        assert!(!better.deltas[0].regression);
    }

    #[test]
    fn tolerance_gates_small_moves() {
        let r = diff_values(&doc(1.0, 5.0), &doc(1.04, 5.0), 0.05);
        assert!(r.pass());
        let r = diff_values(&doc(1.0, 5.0), &doc(1.051, 5.0), 0.05);
        assert!(!r.pass());
    }

    #[test]
    fn row_reordering_is_invisible() {
        let a: Value = serde_json::from_str(
            "{\"rows\":[{\"name\":\"k1\",\"time_s\":1.0},{\"name\":\"k2\",\"time_s\":2.0}]}",
        )
        .unwrap();
        let b: Value = serde_json::from_str(
            "{\"rows\":[{\"name\":\"k2\",\"time_s\":2.0},{\"name\":\"k1\",\"time_s\":1.0}]}",
        )
        .unwrap();
        assert!(diff_values(&a, &b, 0.0).pass());
    }

    #[test]
    fn missing_metric_fails_the_gate() {
        let a: Value = serde_json::from_str("{\"time_s\":1.0}").unwrap();
        let b: Value = serde_json::from_str("{}").unwrap();
        let r = diff_values(&a, &b, 0.05);
        assert!(!r.pass());
        assert_eq!(r.missing, vec!["time_s".to_string()]);
    }

    #[test]
    fn counters_are_informational_only() {
        let a: Value = serde_json::from_str("{\"counters\":{\"flops\":100}}").unwrap();
        let b: Value = serde_json::from_str("{\"counters\":{\"flops\":9000}}").unwrap();
        assert!(diff_values(&a, &b, 0.05).pass());
    }

    #[test]
    fn direction_classification() {
        assert_eq!(direction("achieved_gflops"), Some(true));
        assert_eq!(direction("warp_execution_efficiency"), Some(true));
        assert_eq!(direction("achieved_occupancy"), Some(true));
        assert_eq!(direction("attainment"), Some(true));
        assert_eq!(direction("goodput_qps"), Some(true));
        assert_eq!(direction("offered_qps"), None, "offered load is an input");
        assert_eq!(direction("time_s"), Some(false));
        assert_eq!(direction("load_imbalance"), Some(false));
        assert_eq!(direction("p99"), Some(false));
        assert_eq!(direction("flops"), None);
        assert_eq!(direction("span_ids"), None);
        assert_eq!(direction("launches"), None);
    }
}
