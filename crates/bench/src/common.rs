//! Shared harness plumbing: experiment options, suite selection, and a
//! fixed-width text table renderer.

use graphgen::{MatrixSpec, TABLE1_SUITE};

/// Options shared by all experiments.
#[derive(Clone, Debug)]
pub struct Options {
    /// Suite scale divisor (rows shrink by this; see `MatrixSpec`).
    pub scale: usize,
    /// Generator seed.
    pub seed: u64,
    /// Restrict to these abbreviations (empty = whole suite).
    pub matrices: Vec<String>,
    /// Emit JSON instead of text tables.
    pub json: bool,
    /// Capture a launch-level trace ledger per experiment and export it
    /// as chrome://tracing JSON under `results/` (see [`crate::tracing`]).
    pub trace: bool,
    /// Profile the experiment: derive per-kernel SIMT metrics from the
    /// trace ledger and write `results/PROFILE_<name>.json` (see
    /// [`crate::profile`]).
    pub profile: bool,
    /// Capture the telemetry registry + request trace and write
    /// `results/METRICS_<name>.json` (see [`crate::metrics`]).
    pub metrics: bool,
    /// With `metrics`: also export the correlated request/kernel
    /// timeline as `results/TIMELINE_<name>.json`.
    pub timeline: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 64,
            seed: 1,
            matrices: Vec::new(),
            json: false,
            trace: false,
            profile: false,
            metrics: false,
            timeline: false,
        }
    }
}

/// Resolve the selected matrix specs (in Table I order).
pub fn selected_specs(opts: &Options) -> Vec<&'static MatrixSpec> {
    if opts.matrices.is_empty() {
        TABLE1_SUITE.iter().collect()
    } else {
        opts.matrices
            .iter()
            .map(|a| {
                MatrixSpec::by_abbrev(a)
                    .unwrap_or_else(|| panic!("unknown matrix abbreviation '{a}'"))
            })
            .collect()
    }
}

/// Minimal fixed-width table renderer for the text reports.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "table row width mismatch");
        self.rows.push(cells);
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", cell, w = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format seconds human-readably (µs/ms/s).
pub fn fmt_secs(s: f64) -> String {
    if s == f64::INFINITY {
        "inf".into()
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}s", s)
    }
}

/// Format a ratio like the paper's speedup cells.
pub fn fmt_x(v: f64) -> String {
    if v == f64::INFINITY {
        "inf".into()
    } else if v >= 1000.0 {
        format!("{:.0}x", v)
    } else {
        format!("{:.2}x", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_selection_is_whole_suite() {
        let specs = selected_specs(&Options::default());
        assert_eq!(specs.len(), 17);
    }

    #[test]
    fn explicit_selection_filters() {
        let opts = Options {
            matrices: vec!["HOL".into(), "enr".into()],
            ..Default::default()
        };
        let specs = selected_specs(&opts);
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].abbrev, "HOL");
        assert_eq!(specs[1].abbrev, "ENR");
    }

    #[test]
    #[should_panic(expected = "unknown matrix")]
    fn unknown_abbrev_panics() {
        let opts = Options {
            matrices: vec!["NOPE".into()],
            ..Default::default()
        };
        selected_specs(&opts);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["12345".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[2].contains("12345"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(5e-6), "5.0us");
        assert_eq!(fmt_secs(5e-3), "5.00ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_x(f64::INFINITY), "inf");
        assert_eq!(fmt_x(2.0), "2.00x");
        assert_eq!(fmt_x(161000.0), "161000x");
    }
}
