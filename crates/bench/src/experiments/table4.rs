//! Table IV — per-format SpMV times plus the break-even iteration count
//! `n` of Eq. 4 (how many SpMVs an iterative solver must run before an
//! expensive-to-build format overtakes ACSR). ∞ = ACSR wins at any n;
//! ∅ = format infeasible at full scale.

use crate::common::{fmt_secs, Options, Table};
use crate::experiments::formats::{self, FormatComparison};

/// Compute Table IV (reuses the shared comparison).
pub fn run(opts: &Options) -> Vec<FormatComparison> {
    formats::run(opts)
}

fn n_cell(c: &FormatComparison, idx: usize) -> String {
    let o = &c.others[idx];
    if !o.feasible {
        "∅".into()
    } else {
        match c.break_even_n(o) {
            Some(n) => format!("{n}"),
            None => "∞".into(),
        }
    }
}

/// Render as text.
pub fn render(rows: &[FormatComparison]) -> String {
    let mut t = Table::new(&[
        "Matrix", "ACSR st", "BCCOO st", "BRC st", "TCOO st", "HYB st", "n BCCOO", "n BRC",
        "n TCOO", "n HYB",
    ]);
    for c in rows {
        let st = |o: &formats::FormatCost| {
            if o.feasible {
                fmt_secs(o.spmv_seconds)
            } else {
                "∅".into()
            }
        };
        t.row(vec![
            c.abbrev.clone(),
            fmt_secs(c.acsr.spmv_seconds),
            st(&c.others[0]),
            st(&c.others[1]),
            st(&c.others[2]),
            st(&c.others[3]),
            n_cell(c, 0),
            n_cell(c, 1),
            n_cell(c, 2),
            n_cell(c, 3),
        ]);
    }
    format!(
        "Table IV: SpMV time (st) and break-even iterations n (Eq. 4), f32, GTX Titan:\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Options;

    #[test]
    fn break_even_cells_render() {
        let opts = Options {
            scale: 512,
            matrices: vec!["ENR".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        let s = render(&rows);
        assert!(s.contains("Table IV") && s.contains("ENR"));
        // every n-cell is a number, ∞ or ∅
        assert!(s.contains('∞') || s.chars().any(|c| c.is_ascii_digit()));
    }

    #[test]
    fn break_even_formula_matches_eq4() {
        // hand-check Eq. 4 with synthetic costs
        use crate::experiments::formats::{FormatComparison, FormatCost};
        let acsr = FormatCost {
            format: "ACSR".into(),
            preprocess_seconds: 1.0,
            spmv_seconds: 10.0,
            feasible: true,
        };
        let fast_but_costly = FormatCost {
            format: "X".into(),
            preprocess_seconds: 101.0,
            spmv_seconds: 5.0,
            feasible: true,
        };
        let c = FormatComparison {
            abbrev: "T".into(),
            nnz: 0,
            acsr,
            others: vec![fast_but_costly],
        };
        // n >= (101 - 1) / (10 - 5) = 20
        assert_eq!(c.break_even_n(&c.others[0]), Some(20));
    }
}
