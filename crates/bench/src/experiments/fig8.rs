//! Figure 8 — dual-GPU SpMV on the Tesla K10 (§VIII).
//!
//! Each bin is split half-and-half across the two GK104 devices; ACSR
//! runs its static long-tail configuration (the K10 lacks dynamic
//! parallelism). Shape targets: ~1.6-1.7x average speedup, near-perfect
//! scaling on the big matrices, and *no* benefit (or a slowdown) on the
//! small ones (ENR, INT, ...) whose work can't saturate one GPU.

use crate::common::{selected_specs, Options, Table};
use acsr::AcsrConfig;
use gpu_sim::presets;
use multi_gpu::MultiGpuAcsr;
use serde::Serialize;
use sparse_formats::Scalar;

/// Dual- vs single-GPU throughput on one matrix/precision.
#[derive(Clone, Debug, Serialize)]
pub struct Fig8Row {
    pub abbrev: String,
    pub precision: &'static str,
    pub single_gflops: f64,
    pub dual_gflops: f64,
    pub speedup: f64,
}

fn measure<T: Scalar>(abbrev: &str, m: &sparse_formats::CsrMatrix<T>) -> Fig8Row {
    let flops = 2 * m.nnz() as u64;
    let x: Vec<T> = (0..m.cols())
        .map(|i| T::from_f64(1.0 + (i % 5) as f64 * 0.2))
        .collect();
    let mut y = vec![T::ZERO; m.rows()];
    let k10 = presets::tesla_k10_single();
    let single = MultiGpuAcsr::new(m, &k10, 1, AcsrConfig::static_long_tail());
    let t1 = single.spmv(&x, &mut y).seconds();
    let dual = MultiGpuAcsr::new(m, &k10, 2, AcsrConfig::static_long_tail());
    let t2 = dual.spmv(&x, &mut y).seconds();
    Fig8Row {
        abbrev: abbrev.to_string(),
        precision: T::NAME,
        single_gflops: flops as f64 / t1 / 1e9,
        dual_gflops: flops as f64 / t2 / 1e9,
        speedup: t1 / t2,
    }
}

/// Run Figure 8 over the selected suite, both precisions.
pub fn run(opts: &Options) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for spec in selected_specs(opts) {
        let m32 = spec.generate::<f32>(opts.scale, opts.seed);
        rows.push(measure(spec.abbrev, &m32.csr));
        let m64 = spec.generate::<f64>(opts.scale, opts.seed);
        rows.push(measure(spec.abbrev, &m64.csr));
    }
    rows
}

/// Render as text per precision.
pub fn render(rows: &[Fig8Row]) -> String {
    let mut out =
        String::from("Figure 8: dual-GPU (Tesla K10) ACSR SpMV, per-bin half/half split:\n");
    for precision in ["f32", "f64"] {
        let mut t = Table::new(&["Matrix", "1 GPU GF/s", "2 GPU GF/s", "speedup"]);
        let mut sp = Vec::new();
        for r in rows.iter().filter(|r| r.precision == precision) {
            sp.push(r.speedup);
            t.row(vec![
                r.abbrev.clone(),
                format!("{:.1}", r.single_gflops),
                format!("{:.1}", r.dual_gflops),
                format!("{:.2}", r.speedup),
            ]);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        out.push_str(&format!(
            "\n== {precision} (average speedup {:.2}x) ==\n{}",
            mean(&sp),
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_matrices_scale_small_ones_do_not() {
        let opts = Options {
            scale: 64,
            matrices: vec!["LJ2".into(), "INT".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        let lj = rows
            .iter()
            .find(|r| r.abbrev == "LJ2" && r.precision == "f32")
            .unwrap();
        let int = rows
            .iter()
            .find(|r| r.abbrev == "INT" && r.precision == "f32")
            .unwrap();
        assert!(lj.speedup > 1.5, "LJ2 speedup {}", lj.speedup);
        assert!(
            int.speedup < lj.speedup,
            "INT {} should scale worse than LJ2 {}",
            int.speedup,
            lj.speedup
        );
    }
}
