//! Figure 7 — PageRank on dynamic graphs (§VII).
//!
//! Top: per-epoch speedup trend on FLI (the paper's representative).
//! Bottom: per-matrix average speedup across all epochs.
//!
//! ACSR ships only deltas and updates in place; CSR re-uploads the whole
//! matrix; HYB re-uploads *and* re-transforms. Epoch 0 is the cold start,
//! where ACSR must also pay a full upload ("the cost of copying the
//! complete matrix for ACSR is only paid in the first time period").

use crate::common::{selected_specs, Options, Table};
use gpu_sim::{presets, Device};
use graph_apps::dynamic::{dynamic_pagerank, DynamicConfig, EpochStats, Strategy};
use graph_apps::pagerank::pagerank_operator;
use graph_apps::IterParams;
use serde::Serialize;
use sparse_formats::HostModel;

/// Dynamic-PageRank trajectories of all three strategies on one matrix.
#[derive(Clone, Debug, Serialize)]
pub struct Fig7Row {
    pub abbrev: String,
    pub acsr: Vec<EpochStats>,
    pub csr: Vec<EpochStats>,
    pub hyb: Vec<EpochStats>,
}

impl Fig7Row {
    /// Per-epoch speedups `(vs CSR, vs HYB)`.
    pub fn epoch_speedups(&self) -> Vec<(f64, f64)> {
        self.acsr
            .iter()
            .zip(self.csr.iter())
            .zip(self.hyb.iter())
            .map(|((a, c), h)| {
                (
                    c.total_seconds() / a.total_seconds(),
                    h.total_seconds() / a.total_seconds(),
                )
            })
            .collect()
    }

    /// Average speedup across all epochs (Figure 7-bottom's bars).
    pub fn average_speedups(&self) -> (f64, f64) {
        let v = self.epoch_speedups();
        let n = v.len().max(1) as f64;
        (
            v.iter().map(|s| s.0).sum::<f64>() / n,
            v.iter().map(|s| s.1).sum::<f64>() / n,
        )
    }
}

/// Run Figure 7 over the selected matrices.
pub fn run(opts: &Options) -> Vec<Fig7Row> {
    let dev = Device::new(presets::gtx_titan());
    let host = HostModel::default();
    let cfg = DynamicConfig {
        epochs: 10,
        params: IterParams {
            epsilon: 1e-6,
            max_iters: 500,
        },
        ..Default::default()
    };
    selected_specs(opts)
        .into_iter()
        .filter(|spec| spec.rows == spec.cols) // RAL: no adjacency (§VII)
        .map(|spec| {
            let m = spec.generate::<f64>(opts.scale, opts.seed);
            let op = pagerank_operator(&m.csr);
            Fig7Row {
                abbrev: spec.abbrev.into(),
                acsr: dynamic_pagerank(&dev, &op, Strategy::AcsrIncremental, &cfg, &host),
                csr: dynamic_pagerank(&dev, &op, Strategy::CsrReupload, &cfg, &host),
                hyb: dynamic_pagerank(&dev, &op, Strategy::HybReupload, &cfg, &host),
            }
        })
        .collect()
}

/// Render as text: the first matrix's per-epoch trend (Fig 7-top) plus
/// per-matrix averages (Fig 7-bottom).
pub fn render(rows: &[Fig7Row]) -> String {
    let mut out = String::from("Figure 7: dynamic-graph PageRank (10 epochs, 10% row churn):\n");
    if let Some(first) = rows.first() {
        let mut t = Table::new(&["Epoch", "iters", "ACSR total", "vs CSR", "vs HYB"]);
        for (e, (sc, sh)) in first.epoch_speedups().iter().enumerate() {
            t.row(vec![
                format!("{e}"),
                format!("{}", first.acsr[e].iterations),
                crate::common::fmt_secs(first.acsr[e].total_seconds()),
                format!("{:.2}", sc),
                format!("{:.2}", sh),
            ]);
        }
        out.push_str(&format!(
            "\n== per-epoch trend on {} (top) ==\n{}",
            first.abbrev,
            t.render()
        ));
    }
    let mut t = Table::new(&["Matrix", "avg vs CSR", "avg vs HYB"]);
    let mut all_c = Vec::new();
    let mut all_h = Vec::new();
    for r in rows {
        let (sc, sh) = r.average_speedups();
        all_c.push(sc);
        all_h.push(sh);
        t.row(vec![
            r.abbrev.clone(),
            format!("{:.2}", sc),
            format!("{:.2}", sh),
        ]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    out.push_str(&format!(
        "\n== per-matrix averages (bottom; AVG vs CSR {:.2}, vs HYB {:.2}) ==\n{}",
        mean(&all_c),
        mean(&all_h),
        t.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn later_epochs_favor_acsr_more_than_the_cold_start() {
        let opts = Options {
            scale: 128,
            matrices: vec!["FLI".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        let r = &rows[0];
        let sp = r.epoch_speedups();
        // epoch 0 (cold): everyone pays a full upload, so near parity
        let (c0, _h0) = sp[0];
        // update epochs: ACSR's advantage must exceed the cold epoch's
        let later_avg: f64 = sp[1..].iter().map(|s| s.1).sum::<f64>() / (sp.len() - 1) as f64;
        let later_avg_csr: f64 = sp[1..].iter().map(|s| s.0).sum::<f64>() / (sp.len() - 1) as f64;
        assert!(
            later_avg_csr > c0 * 0.95,
            "later vs-CSR speedup {later_avg_csr} should exceed cold {c0}"
        );
        assert!(later_avg > 1.0, "avg vs HYB in update epochs {later_avg}");
    }

    #[test]
    fn warm_start_shrinks_iteration_counts() {
        // Scale 64 (not 128): at /128 the YOT analog is tiny enough that
        // one unlucky 10%-churn stream can move the eigenvector more
        // than a cold start costs, making the average flip on specific
        // RNG streams. The paper's claim is about realistically sized
        // graphs; /64 is robust across generator seeds.
        let opts = Options {
            scale: 64,
            matrices: vec!["YOT".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        let acsr = &rows[0].acsr;
        // individual early epochs can exceed the cold start (10% churn can
        // move the eigenvector a lot), but warm starting must win on
        // average — the paper's "often just tens of iterations"
        let warm_avg: f64 =
            acsr[1..].iter().map(|e| e.iterations as f64).sum::<f64>() / (acsr.len() - 1) as f64;
        assert!(
            warm_avg < acsr[0].iterations as f64,
            "warm avg {warm_avg} vs cold {}",
            acsr[0].iterations
        );
    }
}
