//! Shared format-comparison engine behind Table III, Figure 4 and
//! Table IV: for every suite matrix, the preprocessing cost and
//! single-SpMV time of ACSR and each comparator format (BCCOO incl. its
//! auto-tuning, BRC, TCOO incl. its tile search, HYB), all on the
//! simulated GTX Titan in single precision — matching the paper's setup
//! ("since BCCOO and TCOO are only available for single precision, data
//! in Figure 4 and Tables III and IV are only for single precision...
//! performed on a GTX Titan").
//!
//! **Full-scale projection.** The analogs are generated `scale` times
//! smaller than the paper's matrices, but preprocessing/SpMV *ratios*
//! only match the paper's regime at full size (at toy sizes, fixed launch
//! overheads and `n log n` sort terms are distorted). Costs measured at
//! the generated size are therefore projected to full scale: linear terms
//! (bytes streamed, trial SpMVs, kernel memory/compute/latency time)
//! multiply by `scale`; comparison sorts become `n·scale·log2(n·scale)`;
//! per-launch overheads stay fixed. The projection is exact for the
//! bandwidth-bound quantities that dominate every entry.

use crate::common::{selected_specs, Options};
use gpu_sim::{presets, Device, DeviceBuffer};
use serde::Serialize;
use sparse_formats::{CsrMatrix, HostModel};
use spmv_kernels::GpuSpmv;
use spmv_pipeline::{FormatRegistry, PlanBudget};

/// Row cap for the BCCOO tuning sample (cost extrapolated to full size;
/// DESIGN.md §1).
pub const BCCOO_TUNE_SAMPLE_ROWS: usize = 8192;

/// Cost profile of one format on one matrix.
#[derive(Clone, Debug, Serialize)]
pub struct FormatCost {
    /// Format name.
    pub format: String,
    /// Modeled preprocessing seconds (host transformation + any
    /// auto-tuning trials' device time).
    pub preprocess_seconds: f64,
    /// Modeled seconds for one SpMV.
    pub spmv_seconds: f64,
    /// Whether the format fits device memory *at full (paper) matrix
    /// scale* — `false` reproduces the paper's ∅ cells.
    pub feasible: bool,
}

impl FormatCost {
    /// Preprocessing expressed in SpMVs (Figure 4's y-axis).
    pub fn preprocess_over_spmv(&self) -> f64 {
        self.preprocess_seconds / self.spmv_seconds
    }
}

/// All formats' costs on one matrix.
#[derive(Clone, Debug, Serialize)]
pub struct FormatComparison {
    pub abbrev: String,
    pub nnz: usize,
    /// ACSR's profile.
    pub acsr: FormatCost,
    /// BCCOO, BRC, TCOO, HYB (paper order).
    pub others: Vec<FormatCost>,
}

impl FormatComparison {
    /// Table III's cell: ACSR speedup for a single cold SpMV
    /// (preprocessing + one SpMV), against `other`.
    pub fn single_spmv_speedup(&self, other: &FormatCost) -> f64 {
        if !other.feasible {
            return f64::INFINITY;
        }
        (other.preprocess_seconds + other.spmv_seconds)
            / (self.acsr.preprocess_seconds + self.acsr.spmv_seconds)
    }

    /// Table IV's cell: iterations needed for `other` to overtake ACSR
    /// (Eq. 4). `None` encodes the paper's ∞ (ACSR wins at any n);
    /// infeasible formats return `None` too (the caller distinguishes via
    /// `feasible`).
    pub fn break_even_n(&self, other: &FormatCost) -> Option<u64> {
        if !other.feasible || other.spmv_seconds >= self.acsr.spmv_seconds {
            return None;
        }
        let num = other.preprocess_seconds - self.acsr.preprocess_seconds;
        let den = self.acsr.spmv_seconds - other.spmv_seconds;
        Some((num / den).ceil().max(1.0) as u64)
    }
}

/// One SpMV, projected to full matrix scale: throughput-bound components
/// (compute issue, DRAM traffic) grow linearly with matrix size, while
/// per-warp critical paths (set by the longest row, which the suite specs
/// clamp) and launch overheads stay fixed.
fn one_spmv<T: sparse_formats::Scalar>(
    dev: &Device,
    engine: &dyn GpuSpmv<T>,
    x: &DeviceBuffer<T>,
    scale: usize,
) -> f64 {
    let y = dev.alloc_zeroed::<T>(engine.rows());
    let r = engine.spmv(dev, x, &y);
    let s = scale as f64;
    let work = (r.breakdown.compute_s * s)
        .max(r.breakdown.memory_s * s)
        .max(r.breakdown.latency_s);
    r.breakdown.launch_s + r.breakdown.dynamic_launch_s + work
}

/// Project a measured preprocessing cost to full matrix scale
/// ([`sparse_formats::PreprocessCost::scaled`]).
fn project_cost(
    cost: &sparse_formats::PreprocessCost,
    scale: usize,
) -> sparse_formats::PreprocessCost {
    cost.scaled(scale as u64)
}

/// `true` when `bytes_at_this_scale * scale` fits the device memory —
/// the full-size feasibility test behind the ∅ cells.
fn fits_full_scale(dev: &Device, bytes: u64, scale: usize) -> bool {
    bytes.saturating_mul(scale as u64) <= dev.config().memory_bytes() as u64
}

/// Compare ACSR against every comparator format on one matrix.
pub fn compare_matrix(
    abbrev: &str,
    m: &CsrMatrix<f32>,
    scale: usize,
    host: &HostModel,
) -> FormatComparison {
    let dev = Device::new(presets::gtx_titan());
    let x: Vec<f32> = (0..m.cols()).map(|i| 1.0 + (i % 7) as f32 * 0.1).collect();
    let xd = dev.alloc(x);

    let reg = FormatRegistry::<f32>::with_all();
    let budget = PlanBudget {
        bccoo_sample_rows: BCCOO_TUNE_SAMPLE_ROWS,
        ..PlanBudget::for_device(dev.config())
    };
    let cost_of = |name: &'static str| -> FormatCost {
        match reg.plan(name, &dev, m, &budget) {
            Ok(plan) => FormatCost {
                format: name.into(),
                preprocess_seconds: project_cost(plan.preprocess_cost(), scale)
                    .modeled_host_seconds(host),
                spmv_seconds: one_spmv(&dev, &plan, &xd, scale),
                feasible: fits_full_scale(&dev, plan.device_bytes(), scale),
            },
            Err(_) => infeasible(name),
        }
    };

    let acsr = cost_of("ACSR");
    let others: Vec<FormatCost> = ["BCCOO", "BRC", "TCOO", "HYB"]
        .into_iter()
        .map(cost_of)
        .collect();

    FormatComparison {
        abbrev: abbrev.to_string(),
        nnz: m.nnz(),
        acsr,
        others,
    }
}

fn infeasible(name: &str) -> FormatCost {
    FormatCost {
        format: name.into(),
        preprocess_seconds: f64::INFINITY,
        spmv_seconds: f64::INFINITY,
        feasible: false,
    }
}

/// Run the comparison over the selected suite.
pub fn run(opts: &Options) -> Vec<FormatComparison> {
    let host = HostModel::default();
    selected_specs(opts)
        .into_iter()
        .map(|spec| {
            let m = spec.generate::<f32>(opts.scale, opts.seed);
            compare_matrix(spec.abbrev, &m.csr, opts.scale, &host)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_comparison() -> FormatComparison {
        let opts = Options {
            scale: 512,
            matrices: vec!["ENR".into()],
            ..Default::default()
        };
        run(&opts).pop().unwrap()
    }

    #[test]
    fn acsr_preprocessing_is_cheapest() {
        let c = small_comparison();
        for other in &c.others {
            if other.feasible {
                assert!(
                    c.acsr.preprocess_seconds < other.preprocess_seconds,
                    "{}: {} vs acsr {}",
                    other.format,
                    other.preprocess_seconds,
                    c.acsr.preprocess_seconds
                );
            }
        }
    }

    #[test]
    fn bccoo_preprocessing_dominates_all() {
        let c = small_comparison();
        let bccoo = &c.others[0];
        assert_eq!(bccoo.format, "BCCOO");
        // auto-tuning makes BCCOO by far the most expensive to prepare
        for other in &c.others[1..] {
            assert!(bccoo.preprocess_seconds > other.preprocess_seconds);
        }
        // and its preprocess/spmv ratio is orders of magnitude above ACSR's
        assert!(bccoo.preprocess_over_spmv() > 100.0 * c.acsr.preprocess_over_spmv());
    }

    #[test]
    fn single_spmv_speedups_favor_acsr() {
        let c = small_comparison();
        for other in &c.others {
            assert!(
                c.single_spmv_speedup(other) > 1.0,
                "{} speedup {}",
                other.format,
                c.single_spmv_speedup(other)
            );
        }
    }

    #[test]
    fn break_even_is_none_or_large() {
        let c = small_comparison();
        for other in &c.others {
            if let Some(n) = c.break_even_n(other) {
                assert!(n > 1, "{}: n = {n}", other.format);
            }
        }
    }
}
