//! Table I — the matrix suite and its statistics.
//!
//! Generates each synthetic analog and reports both the paper's published
//! statistics and the generated matrix's realized statistics, so the
//! fidelity of the substitution is visible in every run.

use crate::common::{selected_specs, Options, Table};
use serde::Serialize;
use sparse_formats::RowLengthStats;

/// One suite row: published vs realized statistics.
#[derive(Clone, Debug, Serialize)]
pub struct Table1Row {
    pub abbrev: String,
    pub name: String,
    pub scale: usize,
    pub paper_rows: usize,
    pub paper_mu: f64,
    pub paper_sigma: f64,
    pub paper_max: usize,
    pub realized: RowLengthStats,
    pub power_law: bool,
}

/// Generate the suite and collect statistics.
pub fn run(opts: &Options) -> Vec<Table1Row> {
    selected_specs(opts)
        .into_iter()
        .map(|spec| {
            let m = spec.generate::<f64>(opts.scale, opts.seed);
            Table1Row {
                abbrev: spec.abbrev.into(),
                name: spec.name.into(),
                scale: opts.scale,
                paper_rows: spec.rows,
                paper_mu: spec.mu,
                paper_sigma: spec.sigma,
                paper_max: spec.max,
                realized: m.csr.row_stats(),
                power_law: spec.power_law,
            }
        })
        .collect()
}

/// Render as text.
pub fn render(rows: &[Table1Row]) -> String {
    let mut t = Table::new(&[
        "Matrix",
        "Abbrev",
        "NNZ",
        "Rows",
        "Cols",
        "mu",
        "sigma",
        "Max",
        "PowerLaw",
        "paper mu",
        "paper max",
    ]);
    for r in rows {
        t.row(vec![
            r.name.clone(),
            r.abbrev.clone(),
            format!("{}", r.realized.nnz),
            format!("{}", r.realized.rows),
            format!("{}", r.realized.cols),
            format!("{:.1}", r.realized.mean),
            format!("{:.1}", r.realized.std_dev),
            format!("{}", r.realized.max_row),
            format!("{}", r.realized.looks_power_law()),
            format!("{:.1}", r.paper_mu),
            format!("{}", r.paper_max),
        ]);
    }
    format!(
        "Table I analog suite (scale 1/{}):\n{}",
        rows.first().map(|r| r.scale).unwrap_or(0),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_statistics_track_paper_shape() {
        let opts = Options {
            scale: 256,
            ..Default::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), 17);
        for r in &rows {
            // μ within 30% of the paper's value
            let err = (r.realized.mean - r.paper_mu).abs() / r.paper_mu;
            assert!(
                err < 0.3,
                "{}: mu {} vs paper {}",
                r.abbrev,
                r.realized.mean,
                r.paper_mu
            );
            // power-law flags match the paper's classification
            assert_eq!(
                r.realized.looks_power_law(),
                r.power_law,
                "{} power-law mismatch",
                r.abbrev
            );
        }
    }

    #[test]
    fn render_contains_all_abbrevs() {
        let opts = Options {
            scale: 512,
            matrices: vec!["ENR".into(), "INT".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        let s = render(&rows);
        assert!(s.contains("ENR") && s.contains("INT"));
    }
}
