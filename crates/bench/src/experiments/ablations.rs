//! Ablations of the design choices DESIGN.md §4 calls out:
//!
//! 1. long-tail mode: dynamic parallelism vs binning-only vs static;
//! 2. `ThreadLoad` (child-grid thread coarsening) sweep;
//! 3. `BinMax` (G1/G2 split point) sweep;
//! 4. texture-cache reads of `x` on/off.

use crate::common::{Options, Table};
use acsr::{AcsrConfig, AcsrEngine, AcsrMode};
use gpu_sim::{presets, Device};
use graphgen::MatrixSpec;
use serde::Serialize;
use spmv_kernels::GpuSpmv;

/// One ablation measurement.
#[derive(Clone, Debug, Serialize)]
pub struct AblationRow {
    pub study: &'static str,
    pub variant: String,
    pub spmv_seconds: f64,
    pub gflops: f64,
}

fn spmv_time(dev: &Device, engine: &AcsrEngine<f64>, x: &[f64]) -> f64 {
    let xd = dev.alloc(x.to_vec());
    let yd = dev.alloc_zeroed::<f64>(engine.rows());
    engine.spmv(dev, &xd, &yd).time_s
}

/// Run all ablations on one heavy-tailed matrix (default HOL).
pub fn run(opts: &Options) -> Vec<AblationRow> {
    let abbrev = opts
        .matrices
        .first()
        .cloned()
        .unwrap_or_else(|| "HOL".to_string());
    let spec = MatrixSpec::by_abbrev(&abbrev).expect("known abbreviation");
    let m = spec.generate::<f64>(opts.scale, opts.seed).csr;
    let dev = Device::new(presets::gtx_titan());
    let flops = 2 * m.nnz() as u64;
    let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let mut rows = Vec::new();
    let mut push = |study: &'static str, variant: String, t: f64| {
        rows.push(AblationRow {
            study,
            variant,
            spmv_seconds: t,
            gflops: flops as f64 / t / 1e9,
        });
    };

    // 1) long-tail mode
    for (name, cfg) in [
        ("dynamic-parallelism", AcsrConfig::for_device(dev.config())),
        ("static-long-tail", AcsrConfig::static_long_tail()),
        (
            "binning-only",
            AcsrConfig {
                mode: AcsrMode::BinningOnly,
                row_max: 0,
                ..AcsrConfig::for_device(dev.config())
            },
        ),
    ] {
        let engine = AcsrEngine::from_csr(&dev, &m, cfg);
        push("tail-mode", name.into(), spmv_time(&dev, &engine, &x));
    }

    // 2) ThreadLoad sweep
    for tl in [1usize, 2, 4, 8, 16] {
        let cfg = AcsrConfig {
            thread_load: tl,
            ..AcsrConfig::for_device(dev.config())
        };
        let engine = AcsrEngine::from_csr(&dev, &m, cfg);
        push(
            "thread-load",
            format!("ThreadLoad={tl}"),
            spmv_time(&dev, &engine, &x),
        );
    }

    // 3) BinMax sweep
    for bm in [6usize, 8, 10, 12, 14] {
        let cfg = AcsrConfig {
            bin_max: bm,
            ..AcsrConfig::for_device(dev.config())
        };
        let engine = AcsrEngine::from_csr(&dev, &m, cfg);
        push(
            "bin-max",
            format!("BinMax={bm}"),
            spmv_time(&dev, &engine, &x),
        );
    }

    // 4) texture on/off
    for tex in [true, false] {
        let cfg = AcsrConfig {
            texture_x: tex,
            ..AcsrConfig::for_device(dev.config())
        };
        let engine = AcsrEngine::from_csr(&dev, &m, cfg);
        push(
            "texture-x",
            format!("texture={tex}"),
            spmv_time(&dev, &engine, &x),
        );
    }

    rows
}

/// Render as text.
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::from("ACSR ablations (GTX Titan, f64):\n");
    for study in ["tail-mode", "thread-load", "bin-max", "texture-x"] {
        let mut t = Table::new(&["Variant", "SpMV", "GFLOP/s"]);
        for r in rows.iter().filter(|r| r.study == study) {
            t.row(vec![
                r.variant.clone(),
                crate::common::fmt_secs(r.spmv_seconds),
                format!("{:.1}", r.gflops),
            ]);
        }
        out.push_str(&format!("\n== {study} ==\n{}", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_parallelism_beats_binning_only_on_heavy_tail() {
        let rows = run(&Options {
            scale: 128,
            matrices: vec!["HOL".into()],
            ..Default::default()
        });
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap().spmv_seconds;
        assert!(
            get("dynamic-parallelism") < get("binning-only"),
            "dp {} vs binning {}",
            get("dynamic-parallelism"),
            get("binning-only")
        );
    }

    #[test]
    fn texture_helps_on_skewed_columns() {
        let rows = run(&Options {
            scale: 256,
            matrices: vec!["ENR".into()],
            ..Default::default()
        });
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap().spmv_seconds;
        assert!(get("texture=true") <= get("texture=false"));
    }

    #[test]
    fn all_studies_present() {
        let rows = run(&Options {
            scale: 512,
            matrices: vec!["INT".into()],
            ..Default::default()
        });
        for study in ["tail-mode", "thread-load", "bin-max", "texture-x"] {
            assert!(rows.iter().any(|r| r.study == study), "missing {study}");
        }
        let s = render(&rows);
        assert!(s.contains("ThreadLoad=4"));
    }
}
