//! Figure 5 — SpMV throughput (GFLOP/s) of CSR, HYB and ACSR on the
//! three Table II devices, single and double precision.
//!
//! Shape targets from the paper: on the Titan, ACSR beats HYB by ~1.2x
//! on average (up to ~1.7x) and CSR by ~2x+ on power-law matrices; on the
//! GTX 580 (binning only) the ACSR margin shrinks; AMZ/DBL are the
//! counter-examples where HYB stays ahead.

use crate::common::{selected_specs, Options, Table};
use gpu_sim::{presets, Device, DeviceConfig};
use serde::Serialize;
use sparse_formats::{CsrMatrix, Scalar};
use spmv_kernels::GpuSpmv;
use spmv_pipeline::{FormatRegistry, PlanBudget, SpmvPlan};

/// GFLOP/s of the three engines on one matrix/device/precision.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5Row {
    pub device: String,
    pub precision: &'static str,
    pub abbrev: String,
    /// `None` = the format does not fit device memory at full scale (∅).
    pub csr_gflops: Option<f64>,
    pub hyb_gflops: Option<f64>,
    pub acsr_gflops: Option<f64>,
}

fn measure<T: Scalar>(
    device_cfg: &DeviceConfig,
    abbrev: &str,
    m: &CsrMatrix<T>,
    scale: usize,
    reps: usize,
) -> Fig5Row {
    let dev = Device::new(device_cfg.clone());
    let flops = 2 * m.nnz() as u64;
    let mem = dev.config().memory_bytes() as u64;
    let x: Vec<T> = (0..m.cols())
        .map(|i| T::from_f64(1.0 + (i % 7) as f64 * 0.1))
        .collect();
    let xd = dev.alloc(x);
    let fits = |bytes: u64| bytes.saturating_mul(scale as u64) <= mem;
    let avg = |plan: &SpmvPlan<T>| -> f64 {
        // "each SpMV experiment was repeated 50 times and the average is
        // reported" — the simulator is deterministic, so one rep IS the
        // 50-rep average; `reps` exists for cache-warmup studies.
        let mut total = 0.0;
        let y = dev.alloc_zeroed::<T>(plan.rows());
        for _ in 0..reps {
            total += plan.spmv(&dev, &xd, &y).time_s;
        }
        flops as f64 / (total / reps as f64) / 1e9
    };

    // Full-scale feasibility (the ∅ cells) is the *projected* footprint;
    // the generated analog always fits, so plan within `mem` and filter
    // by the scaled device bytes afterwards.
    let reg = FormatRegistry::<T>::with_all();
    let budget = PlanBudget::for_device(dev.config());
    let gflops_of = |name: &str| -> Option<f64> {
        reg.plan(name, &dev, m, &budget)
            .ok()
            .filter(|p| fits(p.device_bytes()))
            .map(|p| avg(&p))
    };
    let csr_gflops = gflops_of("CSR-vector");
    let hyb_gflops = gflops_of("HYB");
    let acsr_gflops = gflops_of("ACSR");

    Fig5Row {
        device: dev.config().name.clone(),
        precision: T::NAME,
        abbrev: abbrev.to_string(),
        csr_gflops,
        hyb_gflops,
        acsr_gflops,
    }
}

/// Run Figure 5 over devices × precisions × matrices.
pub fn run(opts: &Options) -> Vec<Fig5Row> {
    let reps = 1;
    let mut rows = Vec::new();
    for device_cfg in [
        presets::gtx_titan(),
        presets::gtx_580(),
        presets::tesla_k10_single(),
    ] {
        for spec in selected_specs(opts) {
            let m32 = spec.generate::<f32>(opts.scale, opts.seed);
            rows.push(measure(
                &device_cfg,
                spec.abbrev,
                &m32.csr,
                opts.scale,
                reps,
            ));
            let m64 = spec.generate::<f64>(opts.scale, opts.seed);
            rows.push(measure(
                &device_cfg,
                spec.abbrev,
                &m64.csr,
                opts.scale,
                reps,
            ));
        }
    }
    rows
}

fn fmt_opt(g: Option<f64>) -> String {
    match g {
        Some(v) => format!("{:.1}", v),
        None => "∅".into(),
    }
}

/// Render as text, one block per device/precision.
pub fn render(rows: &[Fig5Row]) -> String {
    let mut out = String::from("Figure 5: SpMV GFLOP/s (CSR=cuSPARSE-style vector kernel):\n");
    let mut keys: Vec<(String, &'static str)> = Vec::new();
    for r in rows {
        let k = (r.device.clone(), r.precision);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    for (device, precision) in keys {
        let mut t = Table::new(&["Matrix", "CSR", "HYB", "ACSR", "ACSR/HYB", "ACSR/CSR"]);
        let mut rel_hyb = Vec::new();
        let mut rel_csr = Vec::new();
        for r in rows
            .iter()
            .filter(|r| r.device == device && r.precision == precision)
        {
            let ratio = |a: Option<f64>, b: Option<f64>| -> String {
                match (a, b) {
                    (Some(x), Some(y)) if y > 0.0 => format!("{:.2}", x / y),
                    _ => "-".into(),
                }
            };
            if let (Some(a), Some(h)) = (r.acsr_gflops, r.hyb_gflops) {
                rel_hyb.push(a / h);
            }
            if let (Some(a), Some(c)) = (r.acsr_gflops, r.csr_gflops) {
                rel_csr.push(a / c);
            }
            t.row(vec![
                r.abbrev.clone(),
                fmt_opt(r.csr_gflops),
                fmt_opt(r.hyb_gflops),
                fmt_opt(r.acsr_gflops),
                ratio(r.acsr_gflops, r.hyb_gflops),
                ratio(r.acsr_gflops, r.csr_gflops),
            ]);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        out.push_str(&format!(
            "\n== {device} / {precision} (avg ACSR/HYB {:.2}, avg ACSR/CSR {:.2}) ==\n{}",
            mean(&rel_hyb),
            mean(&rel_csr),
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acsr_wins_on_power_law_loses_nothing_on_low_skew() {
        // YOT: small mu (narrow CSR-vector groups) + heavy tail — the
        // regime where the paper's CSR baseline loses hardest.
        let opts = Options {
            scale: 64,
            matrices: vec!["YOT".into(), "AMZ".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        // Titan / f32 block
        let titan_f32: Vec<&Fig5Row> = rows
            .iter()
            .filter(|r| r.device == "GTX Titan" && r.precision == "f32")
            .collect();
        let yot = titan_f32.iter().find(|r| r.abbrev == "YOT").unwrap();
        let amz = titan_f32.iter().find(|r| r.abbrev == "AMZ").unwrap();
        // power-law: ACSR > CSR
        assert!(
            yot.acsr_gflops.unwrap() > yot.csr_gflops.unwrap(),
            "YOT acsr {:?} csr {:?}",
            yot.acsr_gflops,
            yot.csr_gflops
        );
        // paper: AMZ is the case where HYB can stay ahead — we only
        // require ACSR not to collapse there
        assert!(amz.acsr_gflops.unwrap() > 0.3 * amz.hyb_gflops.unwrap());
    }

    #[test]
    fn every_device_precision_block_is_produced() {
        let opts = Options {
            scale: 512,
            matrices: vec!["INT".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), 3 * 2); // 3 devices x 2 precisions
        let s = render(&rows);
        assert!(s.contains("GTX Titan / f32") && s.contains("GTX 580 / f64"));
    }
}
