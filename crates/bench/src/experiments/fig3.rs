//! Figure 3 — the power-law row-length histogram.
//!
//! Prints the ACSR-binned frequency distribution of one matrix (the
//! paper's figure shows the generic shape: heavy mass at tiny rows, a
//! long tail on the right).

use crate::common::{Options, Table};
use graphgen::MatrixSpec;
use serde::Serialize;
use sparse_formats::stats::bin_range;
use sparse_formats::DegreeHistogram;

/// Histogram of one matrix.
#[derive(Clone, Debug, Serialize)]
pub struct Fig3Result {
    pub abbrev: String,
    pub histogram: DegreeHistogram,
}

/// Histogram the first selected matrix (default FLI, the paper's §VII
/// representative).
pub fn run(opts: &Options) -> Fig3Result {
    let abbrev = opts
        .matrices
        .first()
        .cloned()
        .unwrap_or_else(|| "FLI".to_string());
    let spec = MatrixSpec::by_abbrev(&abbrev).expect("known abbreviation");
    let m = spec.generate::<f64>(opts.scale, opts.seed);
    let hist = DegreeHistogram::from_lengths((0..m.csr.rows()).map(|r| m.csr.row_nnz(r)));
    Fig3Result {
        abbrev: spec.abbrev.into(),
        histogram: hist,
    }
}

/// Render as text with an ASCII bar per bin.
pub fn render(res: &Fig3Result) -> String {
    let freqs = res.histogram.frequencies();
    let mut t = Table::new(&["Bin", "nnz range", "rows", "freq", "bar"]);
    for (i, (&count, &freq)) in res.histogram.counts.iter().zip(freqs.iter()).enumerate() {
        let (lo, hi) = bin_range(i);
        let bar = "#".repeat((freq * 60.0).round() as usize);
        t.row(vec![
            format!("{i}"),
            format!("{lo}..{hi}"),
            format!("{count}"),
            format!("{:.4}", freq),
            bar,
        ]);
    }
    format!(
        "Figure 3: row-length distribution of {} ({} rows):\n{}",
        res.abbrev,
        res.histogram.total_rows,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fli_histogram_has_long_tail_shape() {
        let res = run(&Options {
            scale: 256,
            ..Default::default()
        });
        let freqs = res.histogram.frequencies();
        // heavy concentration in the small bins...
        let small: f64 = freqs.iter().take(4).sum();
        assert!(small > 0.5, "small-bin mass {small}");
        // ...and a non-empty long tail several bins out
        assert!(
            res.histogram.max_bin() >= 8,
            "max bin {}",
            res.histogram.max_bin()
        );
        // monotone-ish decay: the last bin is rare
        assert!(*freqs.last().unwrap() < 0.01);
    }

    #[test]
    fn render_shows_bars() {
        let res = run(&Options {
            scale: 512,
            matrices: vec!["ENR".into()],
            ..Default::default()
        });
        let s = render(&res);
        assert!(s.contains("Figure 3") && s.contains("ENR"));
        assert!(s.contains('#'));
    }
}
