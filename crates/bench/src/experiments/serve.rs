//! `repro serve` — the batched RWR/PPR serving experiment.
//!
//! Not a paper figure: this measures what the paper's single-query SpMV
//! numbers imply for a *serving* deployment. A saturated Poisson stream
//! of personalized RWR queries is pushed through [`acsr_serve`]'s
//! continuous-batching scheduler at batch widths k ∈ {1, 4, 16, 64} on
//! the GTX Titan preset; throughput (queries/sec, GFLOPS) should rise
//! with k as the multi-vector ACSR kernels amortize launch floors and
//! row-structure reads, while per-query latency percentiles show the
//! price each query pays for riding in a wider wave.
//!
//! The experiment serves the **first** selected matrix (default AMZ;
//! pick one with `--matrices`). Answers are batch-invariant by
//! construction, so every k row answers the same queries identically.

use crate::common::{selected_specs, Options, Table};
use acsr_serve::{ArrivalPattern, ServeConfig, ServeEngine};
use serde::Serialize;

/// Batch widths swept by the experiment.
pub const BATCH_WIDTHS: [usize; 4] = [1, 4, 16, 64];

/// Queries in the generated stream.
const N_QUERIES: usize = 96;

/// Serving metrics at one batch width.
#[derive(Clone, Debug, Serialize)]
pub struct ServeRow {
    pub abbrev: String,
    pub rows: usize,
    pub nnz: usize,
    pub max_batch: usize,
    pub queries: usize,
    pub completed: usize,
    pub rejected: usize,
    pub waves: usize,
    pub qps: f64,
    pub gflops: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub mean_iterations: f64,
}

/// Sweep batch widths over the first selected matrix.
pub fn run(opts: &Options) -> Vec<ServeRow> {
    let spec = selected_specs(opts)[0];
    assert_eq!(
        spec.rows, spec.cols,
        "serve needs a square (graph) matrix; '{}' is rectangular",
        spec.abbrev
    );
    let m = spec.generate::<f64>(opts.scale, opts.seed);
    let mut out = Vec::new();
    for &max_batch in &BATCH_WIDTHS {
        let engine = ServeEngine::new(
            &m.csr,
            ServeConfig {
                max_batch,
                queue_capacity: 2 * N_QUERIES,
                ..ServeConfig::default()
            },
        );
        // saturated load: arrivals far faster than service, so every
        // wave fills to max_batch while queries remain
        let report = engine.serve_generated(
            ArrivalPattern::Poisson { rate_qps: 2e5 },
            N_QUERIES,
            0.85,
            opts.seed,
        );
        let lat = report.latency_stats();
        out.push(ServeRow {
            abbrev: spec.abbrev.to_string(),
            rows: m.csr.rows(),
            nnz: m.csr.nnz(),
            max_batch,
            queries: N_QUERIES,
            completed: report.outcomes.len(),
            rejected: report.rejected.len(),
            waves: report.waves,
            qps: report.throughput_qps(),
            gflops: report.gflops(),
            p50_ms: lat.p50_s * 1e3,
            p95_ms: lat.p95_s * 1e3,
            p99_ms: lat.p99_s * 1e3,
            mean_iterations: report.mean_iterations(),
        });
    }
    out
}

/// Render as text.
pub fn render(rows: &[ServeRow]) -> String {
    let mut out = String::new();
    if let Some(first) = rows.first() {
        out.push_str(&format!(
            "Serving: batched RWR on {} ({} rows, {} nnz), saturated Poisson, GTX Titan:\n",
            first.abbrev, first.rows, first.nnz
        ));
    }
    let mut t = Table::new(&[
        "k", "done", "shed", "waves", "q/s", "GFLOPS", "p50 ms", "p95 ms", "p99 ms", "iters",
    ]);
    for r in rows {
        t.row(vec![
            r.max_batch.to_string(),
            r.completed.to_string(),
            r.rejected.to_string(),
            r.waves.to_string(),
            format!("{:.0}", r.qps),
            format!("{:.2}", r.gflops),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p95_ms),
            format!("{:.3}", r.p99_ms),
            format!("{:.1}", r.mean_iterations),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rises_with_batch_width() {
        let opts = Options {
            scale: 256,
            matrices: vec!["INT".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), BATCH_WIDTHS.len());
        assert!(rows.iter().all(|r| r.completed == N_QUERIES));
        // the acceptance shape: strictly increasing queries/sec from
        // k = 1 through k = 16
        for pair in rows[..3].windows(2) {
            assert!(
                pair[1].qps > pair[0].qps,
                "qps must rise with k: {} at k={} vs {} at k={}",
                pair[0].qps,
                pair[0].max_batch,
                pair[1].qps,
                pair[1].max_batch
            );
        }
    }
}
