//! `repro selector` — the adaptive format selector's decisions over the
//! suite, at several amortization horizons.
//!
//! This is the paper's break-even analysis (Fig. 4 / Table IV) promoted
//! to a runtime decision: for each matrix the
//! [`spmv_pipeline::AdaptiveSelector`] analyzes the row structure,
//! plans the shortlisted formats, probes one SpMV each, and ranks by
//! `preprocess + upload + horizon × spmv` — all projected to full
//! (paper) matrix scale with `probe_scale = --scale`. The expected
//! shape: ACSR wins on power-law matrices at app-like horizons (tens of
//! iterations), cheap-to-build formats win one-shot runs, and only
//! long horizons can flip to a faster-per-SpMV conversion.

use crate::common::{selected_specs, Options, Table};
use acsr_telemetry::Telemetry;
use gpu_sim::presets;
use gpu_sim::Device;
use graphgen::generate_regular;
use serde::Serialize;
use sparse_formats::CsrMatrix;
use spmv_pipeline::{
    record_selection, AdaptiveSelector, CandidateReport, FormatRegistry, PlanBudget, PlanCache,
};

/// Amortization horizons swept per matrix: one-shot, app-like
/// (PageRank-scale iteration counts), and long-running.
pub const HORIZONS: [u64; 3] = [1, 30, 1000];

/// One selector decision: matrix × horizon.
#[derive(Clone, Debug, Serialize)]
pub struct SelectorRow {
    /// Suite abbreviation (or "UNI" for the synthetic uniform control).
    pub matrix: String,
    pub rows: usize,
    pub nnz: usize,
    /// The analysis verdict the shortlist was derived from.
    pub power_law: bool,
    pub horizon: u64,
    /// The selected format.
    pub winner: String,
    /// Every evaluated candidate, ranked best-first.
    pub candidates: Vec<CandidateReport>,
}

impl SelectorRow {
    /// The winner's projected per-SpMV seconds.
    pub fn winner_spmv_s(&self) -> f64 {
        self.candidates
            .iter()
            .find(|c| c.format == self.winner)
            .map(|c| c.spmv_s)
            .unwrap_or(f64::NAN)
    }
}

/// The JSON artifact (`results/SELECTOR_report.json`).
#[derive(Clone, Debug, Serialize)]
pub struct SelectorReport {
    /// Artifact schema tag checked by `repro check-artifacts`.
    pub schema: &'static str,
    /// Suite scale divisor the probes were projected from.
    pub scale: usize,
    pub device: String,
    pub rows: Vec<SelectorRow>,
}

fn decide(
    abbrev: &str,
    m: &CsrMatrix<f64>,
    opts: &Options,
    cache: &mut PlanCache<f64>,
    tel: &Telemetry,
) -> Vec<SelectorRow> {
    let dev = Device::new(presets::gtx_titan());
    let stats = m.row_stats();
    HORIZONS
        .iter()
        .map(|&horizon| {
            let reg = FormatRegistry::<f64>::with_all();
            let budget = PlanBudget::for_device(dev.config())
                .with_iterations(horizon)
                .with_probe_scale(opts.scale);
            // Mirror fig5's ∅ cells: when not even the raw CSR operator
            // fits the device at full (projected) scale, there is
            // nothing to select for this matrix.
            let csr_full =
                (m.nnz() as u64 * 12 + (m.rows() as u64 + 1) * 4).saturating_mul(opts.scale as u64);
            if csr_full > budget.max_device_bytes {
                return SelectorRow {
                    matrix: abbrev.to_string(),
                    rows: m.rows(),
                    nnz: m.nnz(),
                    power_law: stats.looks_power_law(),
                    horizon,
                    winner: "∅".to_string(),
                    candidates: Vec::new(),
                };
            }
            let sel = AdaptiveSelector.select(&reg, &dev, m, &budget);
            record_selection(tel, &sel.winner, &sel.candidates);
            // Pin the winner's plan in the shared cache: across the
            // horizon sweep the structure never changes, so later
            // horizons that pick the same winner hit instead of
            // replanning (accounting goes to stderr in `run`).
            let _ = cache.get_or_plan(&reg, &sel.winner, &dev, m, &budget);
            SelectorRow {
                matrix: abbrev.to_string(),
                rows: m.rows(),
                nnz: m.nnz(),
                power_law: stats.looks_power_law(),
                horizon,
                winner: sel.winner,
                candidates: sel.candidates,
            }
        })
        .collect()
}

/// Run the selector over the selected suite plus a synthetic regular
/// control ("UNI": every row exactly 6 entries — the zero-skew,
/// zero-padding-waste case where padded formats shine).
pub fn run(opts: &Options) -> Vec<SelectorRow> {
    let mut rows = Vec::new();
    // Registry-backed accounting: the global telemetry when `repro
    // metrics selector` armed it, else a run-local registry dumped
    // through the shared stderr formatter.
    let (tel, local_tel) = match acsr_telemetry::active() {
        Some(t) => (t, false),
        None => (std::sync::Arc::new(Telemetry::new()), true),
    };
    let mut cache = PlanCache::<f64>::new();
    cache.attach_telemetry(tel.clone());
    for spec in selected_specs(opts) {
        let m = spec.generate::<f64>(opts.scale, opts.seed);
        rows.extend(decide(spec.abbrev, &m.csr, opts, &mut cache, &tel));
    }
    if opts.matrices.is_empty() {
        let uni: CsrMatrix<f64> = generate_regular(2000, 2000, 6, opts.seed.wrapping_add(97));
        rows.extend(decide("UNI", &uni, opts, &mut cache, &tel));
    }
    if local_tel {
        crate::metrics::print_metrics("selector", &tel.metrics.snapshot());
    }
    rows
}

/// Write the JSON artifact; returns its path.
pub fn write_report(rows: &[SelectorRow], opts: &Options) -> std::io::Result<String> {
    let report = SelectorReport {
        schema: "acsr-selector-v1",
        scale: opts.scale,
        device: presets::gtx_titan().name,
        rows: rows.to_vec(),
    };
    std::fs::create_dir_all("results")?;
    let path = "results/SELECTOR_report.json".to_string();
    std::fs::write(&path, serde_json::to_string_pretty(&report).unwrap())?;
    Ok(path)
}

/// Render as text, one block per horizon.
pub fn render(rows: &[SelectorRow]) -> String {
    let mut out = String::from(
        "Adaptive selector: winner per matrix and horizon (GTX Titan, f64,\n\
         probed at the generated size and projected to full scale):\n",
    );
    for &h in &HORIZONS {
        let mut t = Table::new(&[
            "Matrix",
            "pow-law",
            "winner",
            "spmv",
            "runner-up",
            "break-even",
        ]);
        for r in rows.iter().filter(|r| r.horizon == h) {
            let runner = r
                .candidates
                .iter()
                .filter(|c| c.feasible && c.format != r.winner)
                .min_by(|a, b| a.total_s.total_cmp(&b.total_s));
            t.row(vec![
                r.matrix.clone(),
                if r.power_law { "yes" } else { "no" }.into(),
                r.winner.clone(),
                if r.candidates.is_empty() {
                    "-".into()
                } else {
                    crate::common::fmt_secs(r.winner_spmv_s())
                },
                runner
                    .map(|c| c.format.clone())
                    .unwrap_or_else(|| "-".into()),
                runner
                    .and_then(|c| c.break_even_vs_winner)
                    .map(|n| format!("{n:.0}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        out.push_str(&format!("\n== horizon {h} ==\n{}", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_suite_matrix_picks_acsr_at_app_horizon() {
        let opts = Options {
            scale: 512,
            matrices: vec!["YOT".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), HORIZONS.len());
        let at = |h: u64| rows.iter().find(|r| r.horizon == h).unwrap();
        assert!(at(30).power_law);
        assert_eq!(at(30).winner, "ACSR", "{:?}", at(30).candidates);
        // candidates are ranked best-first and the report is non-trivial
        for r in &rows {
            assert!(r.candidates.len() >= 2, "horizon {}", r.horizon);
            assert_eq!(r.candidates[0].format, r.winner);
        }
    }

    #[test]
    fn uniform_control_avoids_acsr_shortlist_lock_in() {
        let opts = Options {
            scale: 512,
            matrices: vec!["AMZ".into()], // low-skew suite entry
            ..Default::default()
        };
        let rows = run(&opts);
        // the selector must at least have considered a CSR/padded format
        // on the low-skew structure
        let r = rows.iter().find(|r| r.horizon == 30).unwrap();
        assert!(
            r.candidates
                .iter()
                .any(|c| ["CSR-vector", "ELL", "CSR-scalar"].contains(&c.format.as_str())),
            "{:?}",
            r.candidates
        );
    }

    #[test]
    fn report_artifact_is_schema_tagged() {
        let rows = run(&Options {
            scale: 1024,
            matrices: vec!["ENR".into()],
            ..Default::default()
        });
        let report = SelectorReport {
            schema: "acsr-selector-v1",
            scale: 1024,
            device: "GTX Titan".into(),
            rows,
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"schema\":\"acsr-selector-v1\""));
        assert!(json.contains("\"winner\""));
    }
}
