//! One module per reproduced table/figure.

pub mod ablations;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod formats;
pub mod selector;
pub mod serve;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
