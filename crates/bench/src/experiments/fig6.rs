//! Figure 6 — PageRank / HITS / RWR speedups of ACSR over CSR and HYB
//! (GTX Titan; d = 0.85, c = 0.85, Euclidean ε = 1e-6).
//!
//! "In recording the time, the time for copying data to the device was
//! not included. HYB data transformation cost was also not included" —
//! i.e. this figure isolates the *kernel* advantage; the preprocessing
//! story is Figures 4/7.

use crate::common::{selected_specs, Options, Table};
use gpu_sim::{presets, Device};
use graph_apps::hits::{hits_gpu, hits_operator};
use graph_apps::pagerank::{pagerank_gpu, pagerank_operator};
use graph_apps::rwr::{rwr_gpu, rwr_operator};
use graph_apps::IterParams;
use serde::Serialize;
use sparse_formats::CsrMatrix;
use spmv_pipeline::{FormatRegistry, PlanBudget, SpmvPlan};

/// Per-application speedups on one matrix.
#[derive(Clone, Debug, Serialize)]
pub struct Fig6Row {
    pub app: &'static str,
    pub abbrev: String,
    pub iterations: usize,
    pub acsr_seconds: f64,
    pub speedup_vs_csr: f64,
    pub speedup_vs_hyb: f64,
}

fn plans_for(dev: &Device, op: &CsrMatrix<f64>) -> (SpmvPlan<f64>, SpmvPlan<f64>, SpmvPlan<f64>) {
    let reg = FormatRegistry::<f64>::with_all();
    let budget = PlanBudget::for_device(dev.config());
    let plan = |name| reg.plan(name, dev, op, &budget).expect(name);
    (plan("ACSR"), plan("CSR-vector"), plan("HYB"))
}

/// Run one application over the three plans and record speedups.
fn app_rows(
    app: &'static str,
    dev: &Device,
    abbrev: &str,
    op: &CsrMatrix<f64>,
    params: &IterParams,
    solve: impl Fn(&Device, &SpmvPlan<f64>) -> (usize, f64),
) -> Fig6Row {
    let (acsr, csr, hyb) = plans_for(dev, op);
    let (it_a, t_a) = solve(dev, &acsr);
    let (it_c, t_c) = solve(dev, &csr);
    let (it_h, t_h) = solve(dev, &hyb);
    debug_assert_eq!(it_a, it_c);
    debug_assert_eq!(it_a, it_h);
    let _ = params;
    Fig6Row {
        app,
        abbrev: abbrev.to_string(),
        iterations: it_a,
        acsr_seconds: t_a,
        speedup_vs_csr: t_c / t_a,
        speedup_vs_hyb: t_h / t_a,
    }
}

/// Run Figure 6 (all three applications over the selected suite).
pub fn run(opts: &Options) -> Vec<Fig6Row> {
    let dev = Device::new(presets::gtx_titan());
    let params = IterParams::default();
    let mut rows = Vec::new();
    for spec in selected_specs(opts) {
        if spec.rows != spec.cols {
            continue; // RAL is rectangular: no adjacency interpretation (§VI)
        }
        let m = spec.generate::<f64>(opts.scale, opts.seed);
        // PageRank
        let op = pagerank_operator(&m.csr);
        rows.push(app_rows(
            "PageRank",
            &dev,
            spec.abbrev,
            &op,
            &params,
            |d, e| {
                let r = pagerank_gpu(d, e, 0.85, &params);
                (r.iterations, r.seconds())
            },
        ));
        // HITS
        let op = hits_operator(&m.csr);
        rows.push(app_rows("HITS", &dev, spec.abbrev, &op, &params, |d, e| {
            let r = hits_gpu(d, e, &params);
            (r.iterations, r.seconds())
        }));
        // RWR (seed = highest-degree vertex, a natural restart node)
        let op = rwr_operator(&m.csr);
        let seed = (0..m.csr.rows())
            .max_by_key(|&r| m.csr.row_nnz(r))
            .unwrap_or(0);
        rows.push(app_rows("RWR", &dev, spec.abbrev, &op, &params, |d, e| {
            let r = rwr_gpu(d, e, seed, 0.85, &params);
            (r.iterations, r.seconds())
        }));
    }
    rows
}

/// Render as text, one block per application plus averages.
pub fn render(rows: &[Fig6Row]) -> String {
    let mut out =
        String::from("Figure 6: application speedup of ACSR over CSR and HYB (GTX Titan, f64):\n");
    for app in ["PageRank", "HITS", "RWR"] {
        let mut t = Table::new(&["Matrix", "iters", "ACSR time", "vs CSR", "vs HYB"]);
        let mut s_csr = Vec::new();
        let mut s_hyb = Vec::new();
        for r in rows.iter().filter(|r| r.app == app) {
            s_csr.push(r.speedup_vs_csr);
            s_hyb.push(r.speedup_vs_hyb);
            t.row(vec![
                r.abbrev.clone(),
                format!("{}", r.iterations),
                crate::common::fmt_secs(r.acsr_seconds),
                format!("{:.2}", r.speedup_vs_csr),
                format!("{:.2}", r.speedup_vs_hyb),
            ]);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        out.push_str(&format!(
            "\n== {app} (AVG vs CSR {:.2}, vs HYB {:.2}) ==\n{}",
            mean(&s_csr),
            mean(&s_hyb),
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acsr_speeds_up_apps_on_power_law_matrix() {
        // FLI at 1/128: large enough that launch overheads amortize and
        // the CSR baseline's narrow groups pay for the tail.
        let opts = Options {
            scale: 128,
            matrices: vec!["FLI".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.iterations > 1, "{} iterations {}", r.app, r.iterations);
            assert!(
                r.speedup_vs_csr > 0.8,
                "{} vs CSR {}",
                r.app,
                r.speedup_vs_csr
            );
        }
        // PageRank on a power-law matrix must favor ACSR over CSR
        let pr = rows.iter().find(|r| r.app == "PageRank").unwrap();
        assert!(
            pr.speedup_vs_csr > 1.0,
            "PageRank vs CSR {}",
            pr.speedup_vs_csr
        );
    }
}
