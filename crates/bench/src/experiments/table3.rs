//! Table III — ACSR speedup over BCCOO / BRC / TCOO / HYB for one cold
//! SpMV (preprocessing + a single multiplication), single precision,
//! GTX Titan.

use crate::common::{fmt_x, Options, Table};
use crate::experiments::formats::{self, FormatComparison};

/// Compute Table III.
pub fn run(opts: &Options) -> Vec<FormatComparison> {
    formats::run(opts)
}

/// Render as text.
pub fn render(rows: &[FormatComparison]) -> String {
    let mut t = Table::new(&["Matrix", "vs BCCOO", "vs BRC", "vs TCOO", "vs HYB"]);
    let mut sums = [0.0f64; 4];
    let mut counts = [0usize; 4];
    for c in rows {
        let mut cells = vec![c.abbrev.clone()];
        for (i, other) in c.others.iter().enumerate() {
            if !other.feasible {
                cells.push("∅".into());
            } else {
                let s = c.single_spmv_speedup(other);
                sums[i] += s;
                counts[i] += 1;
                cells.push(fmt_x(s));
            }
        }
        t.row(cells);
    }
    let mut avg = vec!["AVG".to_string()];
    for i in 0..4 {
        avg.push(if counts[i] > 0 {
            fmt_x(sums[i] / counts[i] as f64)
        } else {
            "-".into()
        });
    }
    t.row(avg);
    format!(
        "Table III: ACSR speedup for ONE SpMV (preprocessing + 1 multiply), f32, GTX Titan:\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_render_with_averages() {
        let opts = Options {
            scale: 512,
            matrices: vec!["INT".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        let s = render(&rows);
        assert!(s.contains("Table III") && s.contains("AVG") && s.contains("INT"));
    }
}
