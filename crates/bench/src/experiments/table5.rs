//! Table V — the number of bin-specific (BS) and row-specific (RS) grids
//! ACSR launches per matrix on the GTX Titan.

use crate::common::{selected_specs, Options, Table};
use acsr::{AcsrConfig, AcsrEngine, BinStats};
use gpu_sim::{presets, Device};
use serde::Serialize;

/// One Table V row.
#[derive(Clone, Debug, Serialize)]
pub struct Table5Row {
    pub abbrev: String,
    pub bin_grids: usize,
    pub row_grids: usize,
    pub max_bin: usize,
    pub overflow_rows: usize,
}

/// Compute Table V.
pub fn run(opts: &Options) -> Vec<Table5Row> {
    let dev = Device::new(presets::gtx_titan());
    selected_specs(opts)
        .into_iter()
        .map(|spec| {
            let m = spec.generate::<f32>(opts.scale, opts.seed);
            let engine = AcsrEngine::from_csr(&dev, &m.csr, AcsrConfig::for_device(dev.config()));
            let BinStats {
                bin_grids,
                row_grids,
                max_bin,
                overflow_rows,
            } = engine.bin_stats();
            Table5Row {
                abbrev: spec.abbrev.into(),
                bin_grids,
                row_grids,
                max_bin,
                overflow_rows,
            }
        })
        .collect()
}

/// Render as text.
pub fn render(rows: &[Table5Row]) -> String {
    let mut t = Table::new(&["Matrix", "BS", "RS", "max bin", "RowMax overflow"]);
    for r in rows {
        t.row(vec![
            r.abbrev.clone(),
            format!("{}", r.bin_grids),
            format!("{}", r.row_grids),
            format!("{}", r.max_bin),
            format!("{}", r.overflow_rows),
        ]);
    }
    format!(
        "Table V: bin-specific (BS) and row-specific (RS) grids per SpMV, GTX Titan:\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_matrices_use_dynamic_grids() {
        let opts = Options {
            scale: 256,
            matrices: vec!["HOL".into(), "AMZ".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        let hol = &rows[0];
        let amz = &rows[1];
        // HOL's tail needs row-specific grids; AMZ (max 10 nnz/row) never
        // triggers dynamic parallelism — the paper's exact contrast
        assert!(hol.row_grids > 0, "HOL row grids {}", hol.row_grids);
        assert_eq!(amz.row_grids, 0);
        assert!(amz.bin_grids <= 4, "AMZ bins {}", amz.bin_grids);
        assert!(hol.bin_grids >= 8, "HOL bins {}", hol.bin_grids);
    }

    #[test]
    fn row_grids_respect_pending_limit() {
        let rows = run(&Options {
            scale: 64,
            ..Default::default()
        });
        for r in &rows {
            assert!(r.row_grids <= 2048, "{}: RS {}", r.abbrev, r.row_grids);
        }
    }
}
