//! Table II — the simulated device testbed.

use crate::common::Table;
use gpu_sim::presets;
use gpu_sim::DeviceConfig;

/// The three Table II devices.
pub fn run() -> Vec<DeviceConfig> {
    presets::table2()
}

/// Render as text.
pub fn render(devices: &[DeviceConfig]) -> String {
    let mut t = Table::new(&[
        "Device",
        "SMs",
        "CC",
        "Clock(GHz)",
        "BW(GB/s)",
        "Mem(GiB)",
        "DynPar",
    ]);
    for d in devices {
        t.row(vec![
            d.name.clone(),
            format!("{}", d.sm_count),
            format!("{}.{}", d.compute_capability.0, d.compute_capability.1),
            format!("{:.3}", d.clock_ghz),
            format!("{:.1}", d.mem_bandwidth_gbs),
            format!("{:.1}", d.memory_gib),
            format!("{}", d.has_dynamic_parallelism()),
        ]);
    }
    format!("Table II simulated devices:\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_devices_reported() {
        let d = run();
        assert_eq!(d.len(), 3);
        let s = render(&d);
        assert!(s.contains("GTX Titan") && s.contains("GTX 580") && s.contains("K10"));
    }
}
