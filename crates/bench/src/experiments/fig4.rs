//! Figure 4 — preprocessing overhead expressed in SpMVs.
//!
//! The paper's averages: 161k (BCCOO), 87 (BRC), 3k (TCOO), 21 (HYB),
//! 3 (ACSR). The reproduction's shape target: ACSR ≈ a few SpMVs; HYB
//! tens; BRC tens-to-hundreds; TCOO thousands; BCCOO orders of magnitude
//! above everything.

use crate::common::{Options, Table};
use crate::experiments::formats::{self, FormatComparison};
use serde::Serialize;

/// Geometric-mean summary of the preprocess/SpMV ratios.
#[derive(Clone, Debug, Serialize)]
pub struct Fig4Summary {
    pub format: String,
    pub geomean_ratio: f64,
}

/// Compute Figure 4 (reuses the shared comparison).
pub fn run(opts: &Options) -> Vec<FormatComparison> {
    formats::run(opts)
}

/// Per-format geometric means over feasible matrices.
pub fn summarize(rows: &[FormatComparison]) -> Vec<Fig4Summary> {
    let mut out = Vec::new();
    let formats: Vec<String> = rows
        .first()
        .map(|c| c.others.iter().map(|o| o.format.clone()).collect())
        .unwrap_or_default();
    for (i, f) in formats.iter().enumerate() {
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for c in rows {
            let o = &c.others[i];
            if o.feasible {
                log_sum += o.preprocess_over_spmv().max(1e-9).ln();
                n += 1;
            }
        }
        out.push(Fig4Summary {
            format: f.clone(),
            geomean_ratio: if n > 0 {
                (log_sum / n as f64).exp()
            } else {
                f64::NAN
            },
        });
    }
    let mut log_sum = 0.0;
    for c in rows {
        log_sum += c.acsr.preprocess_over_spmv().max(1e-9).ln();
    }
    out.push(Fig4Summary {
        format: "ACSR".into(),
        geomean_ratio: (log_sum / rows.len().max(1) as f64).exp(),
    });
    out
}

/// Render as text.
pub fn render(rows: &[FormatComparison]) -> String {
    let mut t = Table::new(&["Matrix", "BCCOO", "BRC", "TCOO", "HYB", "ACSR"]);
    for c in rows {
        let mut cells = vec![c.abbrev.clone()];
        for o in &c.others {
            cells.push(if o.feasible {
                format!("{:.0}", o.preprocess_over_spmv())
            } else {
                "∅".into()
            });
        }
        cells.push(format!("{:.1}", c.acsr.preprocess_over_spmv()));
        t.row(cells);
    }
    let mut s = format!(
        "Figure 4: preprocessing time / one-SpMV time, f32, GTX Titan:\n{}",
        t.render()
    );
    s.push_str("\nGeometric means: ");
    for sum in summarize(rows) {
        s.push_str(&format!("{}={:.0}  ", sum.format, sum.geomean_ratio));
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_ordering_matches_paper() {
        let opts = Options {
            scale: 512,
            matrices: vec!["ENR".into(), "INT".into()],
            ..Default::default()
        };
        let rows = run(&opts);
        let sums = summarize(&rows);
        let get = |name: &str| {
            sums.iter()
                .find(|s| s.format == name)
                .unwrap()
                .geomean_ratio
        };
        // paper ordering: BCCOO >> TCOO > BRC > HYB > ACSR
        assert!(
            get("BCCOO") > get("TCOO"),
            "bccoo {} tcoo {}",
            get("BCCOO"),
            get("TCOO")
        );
        assert!(get("TCOO") > get("HYB"));
        assert!(get("BRC") > get("HYB"));
        assert!(get("HYB") > get("ACSR"));
        // ACSR costs only a handful of SpMVs
        assert!(get("ACSR") < 20.0, "acsr ratio {}", get("ACSR"));
    }
}
