//! `repro stream` — the streaming-maintenance benchmark.
//!
//! A live device-resident ACSR absorbs a sustained RMAT edge-churn
//! stream ([`graphgen::generate_edge_stream`]) through
//! [`acsr_stream::StreamEngine`], and three questions are answered:
//!
//! 1. **Throughput** — edge updates/sec of in-place maintenance vs the
//!    full-rebuild baseline (host applies the batch, re-plans ACSR from
//!    scratch, re-uploads the staged image). The paper's §VII claim,
//!    extended to the streaming regime.
//! 2. **Correctness** — after *every* batch the maintained engine is
//!    compared against a from-scratch [`StreamEngine::build`] of the
//!    same logical matrix: same elements, same occupancy, and one probe
//!    SpMV must agree bit-for-bit in values *and* modeled timing.
//! 3. **Serving impact** — p99 query latency of batched RWR serving
//!    with churn contending for the device
//!    ([`acsr_serve::serve_with_churn`]) vs the same query stream on a
//!    steady operator.
//!
//! The drift-tolerant [`PlanCache::probe_drift`] is exercised per batch
//! (anchored at build time). Its hit/survived/replan accounting and the
//! maintenance-ledger totals are recorded through the telemetry
//! registry (`plan_cache.*` / `stream.*`), reconciled integer-exactly
//! against [`acsr_stream::LedgerTotals`], and dumped through the shared
//! [`crate::metrics::print_metrics`] stderr formatter.
//!
//! Results go to `results/BENCH_stream.json` (`acsr-stream-v1` schema),
//! validated by `repro check-artifacts` and gated by `repro bench-diff`
//! against `baselines/BENCH_stream_ci.json`.

use acsr::AcsrConfig;
use acsr_serve::{
    generate_queries, serve_with_churn, ArrivalPattern, ChurnServeConfig, SteadyOperator,
};
use acsr_stream::{ChurnedStream, LedgerTotals, StreamEngine};
use acsr_telemetry::Telemetry;
use gpu_sim::{presets, Device};
use graphgen::{generate_edge_stream, generate_rmat, ChurnConfig, RmatConfig};
use sparse_formats::{CsrMatrix, HostModel};
use spmv_kernels::GpuSpmv;
use spmv_pipeline::{
    DriftKey, DriftOutcome, DriftTolerance, FormatRegistry, PlanBudget, PlanCache,
};

/// Schema tag of the emitted artifact.
pub const SCHEMA: &str = "acsr-stream-v1";

/// One applied maintenance batch.
pub struct BatchRow {
    /// Stable row key (`batch_01`, ...; `bench-diff` keys rows by this).
    pub name: String,
    /// Arrival time on the virtual clock.
    pub at_ms: f64,
    /// Edge operations in the batch (inserts + deletes).
    pub ops: usize,
    /// Modeled seconds of in-place maintenance (plan + merge + deltas).
    pub incremental_s: f64,
    /// Modeled seconds of the full-rebuild baseline for the same batch
    /// (host apply + ACSR re-plan + staged re-upload).
    pub rebuild_s: f64,
    /// Rows merged within their existing slack.
    pub in_place_rows: usize,
    /// Rows migrated to a different bin class.
    pub migrated_rows: usize,
    /// Bit-identity vs a from-scratch build after this batch.
    pub identical: bool,
    /// What the drift probe decided (`hit` / `survived` / `replan`).
    pub drift: &'static str,
}

/// Full report of one streaming run.
pub struct Report {
    pub quick: bool,
    pub rows: usize,
    pub nnz_initial: usize,
    pub nnz_final: usize,
    pub batches: usize,
    pub total_ops: usize,
    /// Every per-batch identity check passed.
    pub identical: bool,
    /// Edge updates per modeled second, in-place maintenance.
    pub updates_per_sec: f64,
    /// Edge updates per modeled second, full-rebuild baseline.
    pub rebuild_updates_per_sec: f64,
    /// `updates_per_sec / rebuild_updates_per_sec`.
    pub speedup: f64,
    /// Plan-cache accounting over the drift probes.
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_invalidations: u64,
    /// Probes answered `Survived` (plan kept despite drift).
    pub plans_survived: u64,
    /// Serving p99 with churn contending for the device, milliseconds.
    pub p99_churn_ms: f64,
    /// Serving p99 on a steady operator, same query stream.
    pub p99_steady_ms: f64,
    pub p50_churn_ms: f64,
    pub p50_steady_ms: f64,
    /// Maintenance events applied during the churn serving run.
    pub churn_events: usize,
    /// Maintenance ledger totals over the throughput run.
    pub ledger: LedgerTotals,
    pub batch_rows: Vec<BatchRow>,
}

/// Deterministic probe vector (same recipe as the identity tests).
fn xvec(cols: usize) -> Vec<f64> {
    (0..cols).map(|i| 0.25 + (i % 13) as f64 * 0.5).collect()
}

/// Maintained-vs-fresh bit identity: elements, occupancy, and one SpMV
/// agreeing in value bits, counters, and modeled-time bits.
fn bit_identical(dev: &Device, maintained: &StreamEngine<f64>, fresh: &StreamEngine<f64>) -> bool {
    if maintained.to_csr() != fresh.to_csr() || maintained.occupancy() != fresh.occupancy() {
        return false;
    }
    let x = dev.alloc(xvec(fresh.to_csr().cols()));
    let rows = fresh.to_csr().rows();
    let (ya, yb) = (dev.alloc_zeroed::<f64>(rows), dev.alloc_zeroed::<f64>(rows));
    let ra = maintained.spmv(dev, &x, &ya);
    let rb = fresh.spmv(dev, &x, &yb);
    let bits = |b: gpu_sim::DeviceBuffer<f64>| {
        b.into_vec()
            .into_iter()
            .map(f64::to_bits)
            .collect::<Vec<_>>()
    };
    bits(ya) == bits(yb) && ra.time_s.to_bits() == rb.time_s.to_bits() && ra.launches == rb.launches
}

/// Run the full streaming bench. `quick` shrinks the graph and the
/// stream for CI smoke runs — same schema, same per-batch identity
/// checks, still fully deterministic.
pub fn run(quick: bool) -> Report {
    // Below ~16k nnz a from-scratch rebuild is cheaper than the
    // incremental path's fixed per-batch floors (five delta transfers
    // at PCIe latency); the quick run sits just above that crossover,
    // the full run well past it where the paper-scale claim holds.
    let (scale, edge_factor, churn) = if quick {
        (
            12,
            8,
            ChurnConfig {
                updates_per_sec: 40_000.0,
                batch_interval_s: 0.005,
                horizon_s: 0.04,
                ..ChurnConfig::default()
            },
        )
    } else {
        (
            15,
            16,
            ChurnConfig {
                updates_per_sec: 200_000.0,
                batch_interval_s: 0.005,
                horizon_s: 0.06,
                ..ChurnConfig::default()
            },
        )
    };
    let m0: CsrMatrix<f64> = generate_rmat(&RmatConfig {
        scale,
        edge_factor,
        ..RmatConfig::default()
    });
    let dev = Device::new(presets::gtx_titan());
    let host = HostModel::default();
    let cfg = AcsrConfig::for_device(dev.config());
    let stream = generate_edge_stream(&m0, &churn);

    // --- throughput + identity: apply the stream batch by batch -------
    let reg = FormatRegistry::<f64>::with_all();
    let budget = PlanBudget::for_device(dev.config());
    let tol = DriftTolerance::default();
    // Registry-backed accounting: the global telemetry when `repro
    // metrics stream` armed it, else a run-local registry — either way
    // the `stream.*` counters are reconciled against the maintenance
    // ledger below, every run.
    let (tel, local_tel) = match acsr_telemetry::active() {
        Some(t) => (t, false),
        None => (std::sync::Arc::new(Telemetry::new()), true),
    };
    let mut cache = PlanCache::<f64>::new();
    cache.attach_telemetry(tel.clone());
    let mut engine = StreamEngine::build(&dev, &m0, cfg);
    engine.attach_telemetry(tel.clone());
    let mut mirror = m0.clone();
    // anchor the planning-time structure (the build's plan)
    let drift_key = |e: &StreamEngine<f64>, m: &CsrMatrix<f64>| DriftKey {
        rows: m.rows(),
        cols: m.cols(),
        epoch: e.epoch(),
        occupancy: e.occupancy(),
    };
    cache.probe_drift("acsr-stream", &drift_key(&engine, &mirror), &tol);

    let mut batch_rows = Vec::with_capacity(stream.len());
    let mut incremental_total = 0.0f64;
    let mut rebuild_total = 0.0f64;
    let mut total_ops = 0usize;
    let mut identical = true;
    let mut survived = 0u64;
    for (i, timed) in stream.iter().enumerate() {
        mirror = timed.batch.apply_to_csr(&mirror);
        let report = engine.apply_batch(&dev, &timed.batch);

        // The baseline pays the whole pipeline again: host-side apply
        // (stream the index+value arrays through memory), a fresh ACSR
        // plan, and the staged re-upload.
        let apply_host = (mirror.nnz() as u64 * 2 * (4 + 8)) as f64 / host.mem_bandwidth_bytes_s;
        let plan = reg
            .plan("ACSR", &dev, &mirror, &budget)
            .expect("rebuild plan within device memory");
        let rebuild_s =
            apply_host + plan.preprocess_seconds(&host) + dev.htod_seconds(plan.upload_bytes());

        let fresh = StreamEngine::build(&dev, &mirror, cfg);
        let ok = bit_identical(&dev, &engine, &fresh);
        identical &= ok;

        let outcome = cache.probe_drift("acsr-stream", &drift_key(&engine, &mirror), &tol);
        let drift = match &outcome {
            DriftOutcome::Hit => "hit",
            DriftOutcome::Survived { .. } => {
                survived += 1;
                tel.metrics.add("plan_cache.drift_survived", 1);
                "survived"
            }
            DriftOutcome::Replan { reason } => {
                eprintln!("stream: batch {:>2} replanned: {reason}", i + 1);
                "replan"
            }
        };

        incremental_total += report.total_seconds;
        rebuild_total += rebuild_s;
        total_ops += timed.ops;
        batch_rows.push(BatchRow {
            name: format!("batch_{:02}", i + 1),
            at_ms: timed.at_s * 1e3,
            ops: timed.ops,
            incremental_s: report.total_seconds,
            rebuild_s,
            in_place_rows: report.in_place_rows,
            migrated_rows: report.migrated_rows,
            identical: ok,
            drift,
        });
    }
    let ledger = engine.ledger().totals();

    // Hard gate: the registry's `stream.*` counters must equal the
    // maintenance ledger's totals integer-exactly. (Only `engine` has
    // applied batches into `tel` at this point.)
    acsr_stream::reconcile_stream(&tel.metrics, &ledger)
        .unwrap_or_else(|e| panic!("stream: metrics/ledger reconciliation failed: {e}"));
    if local_tel {
        crate::metrics::print_metrics("stream", &tel.metrics.snapshot());
    }

    // --- serving impact: same queries, with and without churn ---------
    // The serving study runs on its own fixed-size graph (the
    // throughput matrix above grows with `--quick`/full; query latency
    // contention doesn't need paper scale, it needs a sustained
    // maintenance timetable on the serving clock).
    let ms: CsrMatrix<f64> = generate_rmat(&RmatConfig {
        scale: 10,
        edge_factor: 8,
        ..RmatConfig::default()
    });
    let serve_churn = ChurnConfig {
        updates_per_sec: 40_000.0,
        batch_interval_s: 0.005,
        horizon_s: 0.04,
        ..ChurnConfig::default()
    };
    let serve_stream = generate_edge_stream(&ms, &serve_churn);
    let n_queries = if quick { 48 } else { 96 };
    let queries = generate_queries(
        ArrivalPattern::Poisson {
            rate_qps: n_queries as f64 / serve_churn.horizon_s,
        },
        n_queries,
        ms.rows(),
        0.85,
        21,
    );
    let serve_cfg = ChurnServeConfig::default();
    let steady_engine = StreamEngine::build(&dev, &ms, cfg);
    let mut steady = SteadyOperator::new(&steady_engine);
    let steady_report = serve_with_churn(&dev, &mut steady, &queries, &serve_cfg);
    let mut churned = ChurnedStream::new(StreamEngine::build(&dev, &ms, cfg), serve_stream);
    let churn_report = serve_with_churn(&dev, &mut churned, &queries, &serve_cfg);

    Report {
        quick,
        rows: m0.rows(),
        nnz_initial: m0.nnz(),
        nnz_final: mirror.nnz(),
        batches: stream.len(),
        total_ops,
        identical,
        updates_per_sec: total_ops as f64 / incremental_total,
        rebuild_updates_per_sec: total_ops as f64 / rebuild_total,
        speedup: rebuild_total / incremental_total,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        cache_invalidations: cache.invalidations(),
        plans_survived: survived,
        p99_churn_ms: churn_report.latency.p99_s * 1e3,
        p99_steady_ms: steady_report.latency.p99_s * 1e3,
        p50_churn_ms: churn_report.latency.p50_s * 1e3,
        p50_steady_ms: steady_report.latency.p50_s * 1e3,
        churn_events: churn_report.maintenance_events,
        ledger,
        batch_rows,
    }
}

/// Serialize under the `acsr-stream-v1` schema.
pub fn to_json(report: &Report) -> String {
    let mut rows = String::new();
    for (i, b) in report.batch_rows.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"at_ms\": {:.6}, \"ops\": {}, \
             \"incremental_s\": {:.9}, \"rebuild_s\": {:.9}, \
             \"in_place_rows\": {}, \"migrated_rows\": {}, \
             \"identical\": {}, \"drift\": \"{}\"}}",
            b.name,
            b.at_ms,
            b.ops,
            b.incremental_s,
            b.rebuild_s,
            b.in_place_rows,
            b.migrated_rows,
            b.identical,
            b.drift,
        ));
    }
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"bench\": \"streaming_maintenance\",\n  \
         \"rows\": {},\n  \"nnz_initial\": {},\n  \"nnz_final\": {},\n  \
         \"batches\": {},\n  \"total_ops\": {},\n  \"identical\": {},\n  \
         \"updates_per_sec\": {:.3},\n  \"rebuild_updates_per_sec\": {:.3},\n  \
         \"speedup\": {:.4},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_invalidations\": {},\n  \
         \"plans_survived\": {},\n  \
         \"p99_churn_ms\": {:.6},\n  \"p99_steady_ms\": {:.6},\n  \
         \"p50_churn_ms\": {:.6},\n  \"p50_steady_ms\": {:.6},\n  \
         \"churn_events\": {},\n  \
         \"ledger\": {{\"batches\": {}, \"in_place_rows\": {}, \"migrated_rows\": {}, \
         \"capacity_shift_rows\": {}, \"buffer_grows\": {}, \"bytes_rewritten\": {}}},\n  \
         \"batch_rows\": [\n{}\n  ]\n}}\n",
        report.rows,
        report.nnz_initial,
        report.nnz_final,
        report.batches,
        report.total_ops,
        report.identical,
        report.updates_per_sec,
        report.rebuild_updates_per_sec,
        report.speedup,
        report.cache_hits,
        report.cache_misses,
        report.cache_invalidations,
        report.plans_survived,
        report.p99_churn_ms,
        report.p99_steady_ms,
        report.p50_churn_ms,
        report.p50_steady_ms,
        report.churn_events,
        report.ledger.batches,
        report.ledger.in_place_rows,
        report.ledger.migrated_rows,
        report.ledger.capacity_shift_rows,
        report.ledger.buffer_grows,
        report.ledger.bytes_rewritten,
        rows,
    )
}

/// Write the artifact to `results/BENCH_stream.json` (resolved from the
/// workspace root or a crate dir) and return the path written.
pub fn write(report: &Report) -> std::io::Result<String> {
    let dir = if std::path::Path::new("results").is_dir() {
        std::path::PathBuf::from("results")
    } else {
        std::path::PathBuf::from("../../results")
    };
    let path = dir.join("BENCH_stream.json");
    std::fs::write(&path, to_json(report))?;
    Ok(path.display().to_string())
}

/// Human-readable tables.
pub fn render(report: &Report) -> String {
    let mut t = crate::Table::new(&[
        "batch",
        "at ms",
        "ops",
        "incr µs",
        "rebuild µs",
        "in-place",
        "migrated",
        "identical",
        "drift",
    ]);
    for b in &report.batch_rows {
        t.row(vec![
            b.name.clone(),
            format!("{:.1}", b.at_ms),
            b.ops.to_string(),
            format!("{:.1}", b.incremental_s * 1e6),
            format!("{:.1}", b.rebuild_s * 1e6),
            b.in_place_rows.to_string(),
            b.migrated_rows.to_string(),
            if b.identical { "yes" } else { "NO" }.to_string(),
            b.drift.to_string(),
        ]);
    }
    format!(
        "Streaming ACSR maintenance ({} rows, {} -> {} nnz, {} batches, {} edge ops)\n{}\
         in-place: {:.0} updates/s   full rebuild: {:.0} updates/s   speedup: {:.1}x\n\
         bit-identical to fresh build after every batch: {}\n\
         serving p99 under churn: {:.3} ms   steady: {:.3} ms   ({} maintenance events)\n",
        report.rows,
        report.nnz_initial,
        report.nnz_final,
        report.batches,
        report.total_ops,
        t.render(),
        report.updates_per_sec,
        report.rebuild_updates_per_sec,
        report.speedup,
        if report.identical { "yes" } else { "NO" },
        report.p99_churn_ms,
        report.p99_steady_ms,
        report.churn_events,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick run is what CI smokes and gates; pin its acceptance
    /// shape so a drive-by change can't silently ship a run that lost
    /// bit-identity or its throughput edge.
    #[test]
    fn quick_run_is_identical_and_beats_rebuild() {
        let report = run(true);
        assert!(
            report.identical,
            "maintained ACSR diverged from fresh build"
        );
        assert!(report.batches >= 4, "need a sustained stream");
        assert!(report.total_ops > 0);
        assert!(
            report.speedup > 1.0,
            "in-place maintenance must beat full rebuild, got {:.2}x",
            report.speedup
        );
        // the drift-tolerant cache must keep the plan alive across at
        // least part of the stream (the whole point of drift keys)
        assert!(
            report.cache_hits >= 1,
            "no probe survived drift: hits {}, misses {}",
            report.cache_hits,
            report.cache_misses
        );
        assert_eq!(
            report.cache_hits + report.cache_misses,
            report.batches as u64 + 1,
            "one probe per batch plus the build anchor"
        );
        // churn can only add latency, never remove it
        assert!(report.p99_churn_ms >= report.p99_steady_ms);
        assert!(report.churn_events > 0, "churn run applied no batches");
        for v in [
            report.updates_per_sec,
            report.rebuild_updates_per_sec,
            report.speedup,
            report.p99_churn_ms,
            report.p99_steady_ms,
        ] {
            assert!(v.is_finite() && v > 0.0, "non-finite metric {v}");
        }
        // JSON round-trips under the shim parser
        let json = to_json(&report);
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let serde::Value::Object(entries) = &v else {
            panic!("not an object")
        };
        let get = |k: &str| entries.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        assert!(matches!(get("schema"), Some(serde::Value::Str(s)) if s == SCHEMA));
        assert!(
            matches!(get("batch_rows"), Some(serde::Value::Array(a)) if a.len() == report.batches)
        );
    }
}
