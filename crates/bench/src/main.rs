//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale N] [--seed N] [--matrices A,B,C] [--json] [--trace]
//!
//! experiments:
//!   table1 table2 table3 table4 table5
//!   fig3 fig4 fig5 fig6 fig7 fig8
//!   serve      batched RWR/PPR serving throughput vs batch width
//!   ablations
//!   compare    Table III + Figure 4 + Table IV from one computation
//!   selector   adaptive format selection per matrix and horizon;
//!              writes results/SELECTOR_report.json
//!   formats    print the plan/execute pipeline's format registry
//!   all        every experiment at its default scope
//!
//! utilities:
//!   simbench [--quick]            host-simulator launches/sec sweep over
//!                                 kernels × worker widths; writes
//!                                 results/BENCH_sim_throughput.json
//!   slo [--quick]                 open-loop SLO-attainment sweep (offered
//!                                 qps vs p99-target attainment, plus
//!                                 diurnal/bursty/hot-key/tenant-mix
//!                                 traces); writes results/BENCH_slo.json
//!   fleet [--quick]               N-device sharded-fleet scaling (halo
//!                                 exchange reconciled against the trace
//!                                 ledger), per-shard format selection,
//!                                 and row-split vs query-split wave
//!                                 stealing; writes results/BENCH_fleet.json
//!   stream [--quick]              streaming ACSR maintenance: in-place
//!                                 edge-update throughput vs full rebuild,
//!                                 per-batch bit-identity, serving p99
//!                                 under churn; writes
//!                                 results/BENCH_stream.json
//!   profile <experiment> [opts]   run under the per-kernel profiler;
//!                                 writes results/PROFILE_<experiment>.json
//!   metrics <experiment> [opts]   run with the telemetry registry armed;
//!                                 writes results/METRICS_<experiment>.json
//!                                 (byte-stable acsr-metrics-v1 snapshot,
//!                                 reconciled against the run's reports)
//!   timeline <experiment> [opts]  metrics plus the correlated
//!                                 request/kernel chrome-trace export
//!                                 results/TIMELINE_<experiment>.json
//!   bench-diff <baseline> <new> [--tolerance F]
//!                                 perf-regression gate over two JSON
//!                                 reports; exit 1 on regression
//!   check-artifacts <file>...     validate emitted JSON artifacts
//!   trace-check <file>            alias for check-artifacts (one file)
//! ```
//!
//! `--scale` divides the Table I matrix sizes (default 64); smaller
//! values approach the paper's full-size matrices at the cost of
//! simulation time. `--trace` additionally records every simulated
//! launch/transfer in a ledger, reconciles it against the experiment's
//! own accounting, and writes `results/trace_<experiment>.json`
//! (chrome://tracing format) with a per-phase rollup on stderr.

use repro_bench::experiments::*;
use repro_bench::Options;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return;
    }
    let mut experiment = args[0].clone();
    if experiment == "trace-check" || experiment == "check-artifacts" {
        if args.len() < 2 {
            die(&format!("{experiment} needs at least one file path"));
        }
        for path in &args[1..] {
            check_artifact(path);
        }
        return;
    }
    if experiment == "bench-diff" {
        bench_diff(&args[1..]);
        return;
    }
    if experiment == "simbench" {
        let quick = args[1..].iter().any(|a| a == "--quick");
        if let Some(bad) = args[1..].iter().find(|a| *a != "--quick") {
            die(&format!("simbench: unknown option '{bad}'"));
        }
        let report = repro_bench::simbench::run(quick);
        println!("{}", repro_bench::simbench::render(&report));
        let path = repro_bench::simbench::write(&report)
            .unwrap_or_else(|e| die(&format!("write BENCH_sim_throughput.json: {e}")));
        eprintln!("wrote {path}");
        return;
    }
    if experiment == "slo" {
        let quick = args[1..].iter().any(|a| a == "--quick");
        if let Some(bad) = args[1..].iter().find(|a| *a != "--quick") {
            die(&format!("slo: unknown option '{bad}'"));
        }
        let report = repro_bench::slo::run(quick);
        println!("{}", repro_bench::slo::render(&report));
        let path = repro_bench::slo::write(&report)
            .unwrap_or_else(|e| die(&format!("write BENCH_slo.json: {e}")));
        eprintln!("wrote {path}");
        return;
    }
    if experiment == "fleet" {
        let quick = args[1..].iter().any(|a| a == "--quick");
        if let Some(bad) = args[1..].iter().find(|a| *a != "--quick") {
            die(&format!("fleet: unknown option '{bad}'"));
        }
        let report = repro_bench::fleet::run(quick);
        println!("{}", repro_bench::fleet::render(&report));
        let path = repro_bench::fleet::write(&report)
            .unwrap_or_else(|e| die(&format!("write BENCH_fleet.json: {e}")));
        eprintln!("wrote {path}");
        return;
    }
    if experiment == "stream" {
        let quick = args[1..].iter().any(|a| a == "--quick");
        if let Some(bad) = args[1..].iter().find(|a| *a != "--quick") {
            die(&format!("stream: unknown option '{bad}'"));
        }
        let report = repro_bench::stream::run(quick);
        println!("{}", repro_bench::stream::render(&report));
        if !report.identical {
            die("stream: maintained ACSR diverged from the fresh build");
        }
        let path = repro_bench::stream::write(&report)
            .unwrap_or_else(|e| die(&format!("write BENCH_stream.json: {e}")));
        eprintln!("wrote {path}");
        return;
    }
    let mut opts = Options::default();
    let mut i = 1;
    if experiment == "profile" {
        opts.profile = true;
        experiment = args
            .get(1)
            .unwrap_or_else(|| die("profile needs an experiment name"))
            .clone();
        i = 2;
    } else if experiment == "metrics" || experiment == "timeline" {
        opts.metrics = true;
        opts.timeline = experiment == "timeline";
        let mode = experiment.clone();
        experiment = args
            .get(1)
            .unwrap_or_else(|| die(&format!("{mode} needs an experiment name")))
            .clone();
        i = 2;
    }
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                opts.scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"));
                i += 2;
            }
            "--seed" => {
                opts.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
                i += 2;
            }
            "--matrices" => {
                opts.matrices = args
                    .get(i + 1)
                    .unwrap_or_else(|| die("--matrices needs a comma list"))
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                i += 2;
            }
            "--json" => {
                opts.json = true;
                i += 1;
            }
            "--trace" => {
                opts.trace = true;
                i += 1;
            }
            other => die(&format!("unknown option '{other}'")),
        }
    }
    run_experiment(&experiment, &opts);
}

fn run_experiment(name: &str, opts: &Options) {
    if name == "all" {
        for exp in [
            "table1",
            "table2",
            "fig3",
            "table3",
            "fig4",
            "table4",
            "table5",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "serve",
            "ablations",
            "selector",
        ] {
            eprintln!(">>> {exp}");
            run_experiment(exp, opts);
        }
        return;
    }
    // Arm the global trace ledger per experiment so each gets its own
    // `results/trace_<name>.json` (Devices attach at construction time).
    // The profiler shares the same ledger, so it subsumes `--trace`.
    if opts.metrics {
        repro_bench::metrics::begin();
    } else if opts.profile {
        repro_bench::profile::begin();
    } else if opts.trace {
        repro_bench::tracing::begin();
    }
    run_one(name, opts);
    if opts.metrics {
        repro_bench::metrics::finish(name, opts.timeline);
    } else if opts.profile {
        repro_bench::profile::finish(name, opts.trace);
    } else if opts.trace {
        repro_bench::tracing::finish(name);
    }
}

fn run_one(name: &str, opts: &Options) {
    match name {
        "table1" => emit(opts, table1::run(opts), table1::render),
        "table2" => {
            let d = table2::run();
            if opts.json {
                println!("{}", serde_json::to_string_pretty(&d).unwrap());
            } else {
                println!("{}", table2::render(&d));
            }
        }
        "table3" => emit(opts, table3::run(opts), table3::render),
        "table4" => emit(opts, table4::run(opts), table4::render),
        "table5" => emit(opts, table5::run(opts), table5::render),
        "fig3" => {
            let r = fig3::run(opts);
            if opts.json {
                println!("{}", serde_json::to_string_pretty(&r).unwrap());
            } else {
                println!("{}", fig3::render(&r));
            }
        }
        "fig4" => emit(opts, fig4::run(opts), fig4::render),
        "fig5" => emit(opts, fig5::run(opts), fig5::render),
        "fig6" => emit(opts, fig6::run(opts), fig6::render),
        "fig7" => emit(opts, fig7::run(opts), fig7::render),
        "fig8" => emit(opts, fig8::run(opts), fig8::render),
        "serve" => emit(opts, serve::run(opts), serve::render),
        "ablations" => emit(opts, ablations::run(opts), ablations::render),
        // Table III, Figure 4 and Table IV share one (expensive) format
        // comparison; this runs it once and prints all three.
        "compare" => {
            let rows = formats::run(opts);
            if opts.json {
                println!("{}", serde_json::to_string_pretty(&rows).unwrap());
            } else {
                println!("{}", table3::render(&rows));
                println!("{}", fig4::render(&rows));
                println!("{}", table4::render(&rows));
            }
        }
        // The pipeline's dispatch table: every registered planner.
        "formats" => {
            let descriptors = spmv_pipeline::FormatRegistry::<f64>::with_all().descriptors();
            if opts.json {
                println!("{}", serde_json::to_string_pretty(&descriptors).unwrap());
            } else {
                let mut t = repro_bench::Table::new(&["Format", "preprocessing", "multi-vector"]);
                for d in &descriptors {
                    t.row(vec![
                        d.name.to_string(),
                        d.class.label().to_string(),
                        if d.multi_fused { "fused" } else { "sequential" }.to_string(),
                    ]);
                }
                println!("Plan/execute pipeline: registered SpMV formats");
                print!("{}", t.render());
            }
        }
        "selector" => {
            let rows = selector::run(opts);
            let path = selector::write_report(&rows, opts)
                .unwrap_or_else(|e| die(&format!("write SELECTOR_report.json: {e}")));
            if opts.json {
                println!("{}", serde_json::to_string_pretty(&rows).unwrap());
            } else {
                println!("{}", selector::render(&rows));
            }
            eprintln!("wrote {path}");
        }
        other => die(&format!("unknown experiment '{other}'")),
    }
}

/// `repro check-artifacts <file>...`: assert each emitted artifact is
/// one valid JSON document, with schema-specific structure checks for
/// the formats we emit (used by CI on the smoke-test exports).
fn check_artifact(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let value =
        serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("{path}: invalid JSON: {e}")));
    let field = |obj: &serde::Value, key: &str| -> Option<serde::Value> {
        if let serde::Value::Object(entries) = obj {
            entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
        } else {
            None
        }
    };
    let mut kind = "JSON";
    if let Some(serde::Value::Str(schema)) = field(&value, "schema") {
        if schema == "acsr-profile-v1" {
            kind = "profile report";
            for key in ["devices", "phases", "total", "kernels"] {
                if field(&value, key).is_none() {
                    die(&format!("{path}: profile report missing '{key}'"));
                }
            }
            match field(&value, "kernels") {
                Some(serde::Value::Array(rows)) if !rows.is_empty() => {}
                _ => die(&format!("{path}: profile report has no kernel rows")),
            }
        } else if schema == "acsr-simbench-v1" {
            kind = "simbench report";
            for key in ["host_cores", "kernels"] {
                if field(&value, key).is_none() {
                    die(&format!("{path}: simbench report missing '{key}'"));
                }
            }
            match field(&value, "kernels") {
                Some(serde::Value::Array(kernels)) if !kernels.is_empty() => {
                    for k in &kernels {
                        if field(k, "kernel").is_none() {
                            die(&format!("{path}: simbench kernel row missing 'kernel'"));
                        }
                        match field(k, "widths") {
                            Some(serde::Value::Array(widths)) if !widths.is_empty() => {
                                for w in &widths {
                                    for key in ["workers", "launches_per_sec", "speedup_vs_seq"] {
                                        if field(w, key).is_none() {
                                            die(&format!(
                                                "{path}: simbench width row missing '{key}'"
                                            ));
                                        }
                                    }
                                }
                            }
                            _ => die(&format!("{path}: simbench kernel has no width rows")),
                        }
                    }
                }
                _ => die(&format!("{path}: simbench report has no kernel rows")),
            }
        } else if schema == "acsr-slo-v1" {
            kind = "slo report";
            for key in [
                "capacity_qps",
                "p99_target_ms",
                "max_batch",
                "queue_capacity",
            ] {
                if field(&value, key).is_none() {
                    die(&format!("{path}: slo report missing '{key}'"));
                }
            }
            for section in ["curve", "traces"] {
                match field(&value, section) {
                    Some(serde::Value::Array(points)) if !points.is_empty() => {
                        if section == "curve" && points.len() < 4 {
                            die(&format!(
                                "{path}: slo curve needs at least 4 offered-load points"
                            ));
                        }
                        for p in &points {
                            for key in [
                                "name",
                                "offered_qps",
                                "attainment",
                                "goodput_qps",
                                "throughput_qps",
                                "p99_ms",
                            ] {
                                if field(p, key).is_none() {
                                    die(&format!("{path}: slo {section} row missing '{key}'"));
                                }
                            }
                        }
                    }
                    _ => die(&format!("{path}: slo report has no {section} rows")),
                }
            }
        } else if schema == "acsr-fleet-v1" {
            kind = "fleet report";
            for key in ["scale", "device_counts", "formats", "p99_target_ms"] {
                if field(&value, key).is_none() {
                    die(&format!("{path}: fleet report missing '{key}'"));
                }
            }
            let as_u64 = |v: &serde::Value| -> Option<u64> {
                match v {
                    serde::Value::I64(n) if *n >= 0 => Some(*n as u64),
                    serde::Value::U64(n) => Some(*n),
                    _ => None,
                }
            };
            match field(&value, "scaling") {
                Some(serde::Value::Array(rows)) if !rows.is_empty() => {
                    for row in &rows {
                        for key in [
                            "name",
                            "devices",
                            "seconds",
                            "speedup",
                            "efficiency",
                            "halo_bytes",
                            "ledger_halo_bytes",
                            "exchange_ms",
                            "replicated_rows",
                        ] {
                            if field(row, key).is_none() {
                                die(&format!("{path}: fleet scaling row missing '{key}'"));
                            }
                        }
                        // The ledger reconciliation is part of the
                        // artifact contract: integer-exact, per row.
                        let halo = field(row, "halo_bytes").and_then(|v| as_u64(&v));
                        let ledger = field(row, "ledger_halo_bytes").and_then(|v| as_u64(&v));
                        if halo.is_none() || halo != ledger {
                            die(&format!(
                                "{path}: fleet scaling row has halo_bytes {halo:?} but \
                                 ledger_halo_bytes {ledger:?} (must be integer-equal)"
                            ));
                        }
                    }
                }
                _ => die(&format!("{path}: fleet report has no scaling rows")),
            }
            match field(&value, "formats").and_then(|f| field(&f, "shards")) {
                Some(serde::Value::Array(shards)) if !shards.is_empty() => {}
                _ => die(&format!("{path}: fleet formats section has no shards")),
            }
            match field(&value, "stealing") {
                Some(serde::Value::Array(rows)) if !rows.is_empty() => {
                    for row in &rows {
                        for key in ["name", "waves", "stolen_waves", "attainment", "p99_ms"] {
                            if field(row, key).is_none() {
                                die(&format!("{path}: fleet stealing row missing '{key}'"));
                            }
                        }
                    }
                }
                _ => die(&format!("{path}: fleet report has no stealing rows")),
            }
        } else if schema == "acsr-stream-v1" {
            kind = "stream report";
            for key in [
                "rows",
                "batches",
                "total_ops",
                "identical",
                "updates_per_sec",
                "rebuild_updates_per_sec",
                "speedup",
                "p99_churn_ms",
                "p99_steady_ms",
                "ledger",
            ] {
                if field(&value, key).is_none() {
                    die(&format!("{path}: stream report missing '{key}'"));
                }
            }
            if field(&value, "identical") != Some(serde::Value::Bool(true)) {
                die(&format!(
                    "{path}: stream report lost bit-identity with the fresh build"
                ));
            }
            match field(&value, "batch_rows") {
                Some(serde::Value::Array(rows)) if !rows.is_empty() => {
                    for row in &rows {
                        for key in ["name", "ops", "incremental_s", "rebuild_s", "drift"] {
                            if field(row, key).is_none() {
                                die(&format!("{path}: stream batch row missing '{key}'"));
                            }
                        }
                        if field(row, "identical") != Some(serde::Value::Bool(true)) {
                            die(&format!("{path}: stream batch row failed identity"));
                        }
                    }
                }
                _ => die(&format!("{path}: stream report has no batch rows")),
            }
        } else if schema == "acsr-metrics-v1" {
            kind = "metrics snapshot";
            match field(&value, "metrics") {
                Some(serde::Value::Array(metrics)) if !metrics.is_empty() => {
                    for m in &metrics {
                        let name = match field(m, "name") {
                            Some(serde::Value::Str(n)) => n,
                            _ => die(&format!("{path}: metric entry missing 'name'")),
                        };
                        match field(m, "type") {
                            Some(serde::Value::Str(t)) => match t.as_str() {
                                "counter" => match field(m, "value") {
                                    Some(serde::Value::I64(v)) if v >= 0 => {}
                                    Some(serde::Value::U64(_)) => {}
                                    _ => die(&format!(
                                        "{path}: counter '{name}' must be a non-negative integer"
                                    )),
                                },
                                "gauge" => {
                                    if field(m, "value").is_none() {
                                        die(&format!("{path}: gauge '{name}' missing 'value'"));
                                    }
                                }
                                "histogram" => {
                                    for key in ["count", "sum", "p50", "p99", "buckets"] {
                                        if field(m, key).is_none() {
                                            die(&format!(
                                                "{path}: histogram '{name}' missing '{key}'"
                                            ));
                                        }
                                    }
                                }
                                other => die(&format!(
                                    "{path}: metric '{name}' has unknown type '{other}'"
                                )),
                            },
                            _ => die(&format!("{path}: metric '{name}' missing 'type'")),
                        }
                    }
                }
                _ => die(&format!("{path}: metrics snapshot has no metrics")),
            }
        } else if schema == "acsr-timeline-v1" {
            kind = "timeline export";
            for key in ["request_events", "wave_spans", "kernel_spans"] {
                if field(&value, key).is_none() {
                    die(&format!("{path}: timeline export missing '{key}'"));
                }
            }
            let as_u64 = |v: &serde::Value| -> Option<u64> {
                match v {
                    serde::Value::I64(n) if *n >= 0 => Some(*n as u64),
                    serde::Value::U64(n) => Some(*n),
                    _ => None,
                }
            };
            match field(&value, "traceEvents") {
                Some(serde::Value::Array(events)) if !events.is_empty() => {
                    // Structural wave correlation: every event claiming a
                    // wave id must reference a wave the serving track
                    // announced.
                    let announced: Vec<u64> = events
                        .iter()
                        .filter(|e| {
                            matches!(field(e, "cat"), Some(serde::Value::Str(c)) if c == "wave")
                        })
                        .filter_map(|e| field(e, "args").and_then(|a| field(&a, "wave")))
                        .filter_map(|v| as_u64(&v))
                        .collect();
                    for e in &events {
                        if matches!(field(e, "cat"), Some(serde::Value::Str(c)) if c == "wave") {
                            continue;
                        }
                        if let Some(w) = field(e, "args")
                            .and_then(|a| field(&a, "wave"))
                            .and_then(|v| as_u64(&v))
                        {
                            if !announced.contains(&w) {
                                die(&format!(
                                    "{path}: timeline event references unannounced wave {w}"
                                ));
                            }
                        }
                    }
                }
                _ => die(&format!("{path}: timeline export has no trace events")),
            }
        } else if schema == "acsr-selector-v1" {
            kind = "selector report";
            for key in ["scale", "device", "rows"] {
                if field(&value, key).is_none() {
                    die(&format!("{path}: selector report missing '{key}'"));
                }
            }
            match field(&value, "rows") {
                Some(serde::Value::Array(rows)) if !rows.is_empty() => {
                    for row in &rows {
                        for key in ["matrix", "horizon", "winner", "candidates"] {
                            if field(row, key).is_none() {
                                die(&format!("{path}: selector row missing '{key}'"));
                            }
                        }
                    }
                }
                _ => die(&format!("{path}: selector report has no decision rows")),
            }
        }
    } else if let Some(serde::Value::Array(events)) = field(&value, "traceEvents") {
        kind = "chrome trace";
        if events.is_empty() {
            die(&format!("{path}: chrome trace has no events"));
        }
    }
    println!("{path}: valid {kind} ({} bytes)", text.len());
}

/// `repro bench-diff <baseline.json> <new.json> [--tolerance F]`: the
/// perf-regression gate. Exit 0 when within tolerance, 1 on regression,
/// 2 on usage/parse errors.
fn bench_diff(args: &[String]) {
    let mut files = Vec::new();
    let mut tolerance = 0.05f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                tolerance = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--tolerance needs a number like 0.05"));
                i += 2;
            }
            other => {
                files.push(other.to_string());
                i += 1;
            }
        }
    }
    if files.len() != 2 {
        die("bench-diff needs exactly two files: <baseline.json> <new.json>");
    }
    let report =
        repro_bench::diff::diff_files(&files[0], &files[1], tolerance).unwrap_or_else(|e| die(&e));
    print!("{}", report.render(tolerance));
    if !report.pass() {
        std::process::exit(1);
    }
}

fn emit<R: serde::Serialize>(opts: &Options, rows: Vec<R>, render: impl Fn(&[R]) -> String) {
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
    } else {
        println!("{}", render(&rows));
    }
}

fn print_usage() {
    println!(
        "repro — regenerate the paper's tables and figures on the simulated testbed\n\n\
         usage: repro <experiment> [--scale N] [--seed N] [--matrices A,B,C] [--json] [--trace]\n\
         \x20      repro profile <experiment> [same options]\n\
         \x20      repro metrics <experiment> [same options]\n\
         \x20      repro timeline <experiment> [same options]\n\
         \x20      repro simbench [--quick]\n\
         \x20      repro slo [--quick]\n\
         \x20      repro fleet [--quick]\n\
         \x20      repro stream [--quick]\n\
         \x20      repro bench-diff <baseline.json> <new.json> [--tolerance F]\n\
         \x20      repro check-artifacts <file>...\n\
         \x20      repro trace-check <file>\n\n\
         experiments: table1 table2 table3 table4 table5 fig3 fig4 fig5 fig6 fig7 fig8 serve ablations compare selector all\n\
         \x20            formats (print the pipeline's format registry)\n\n\
         defaults: --scale 64 --seed 1 (whole Table I suite)\n\
         --trace records every simulated launch, reconciles the ledger, and writes\n\
         results/trace_<experiment>.json (chrome://tracing) + a phase rollup on stderr\n\
         profile derives per-kernel SIMT metrics (warp efficiency, coalescing,\n\
         occupancy, roofline verdicts) and writes results/PROFILE_<experiment>.json\n\
         metrics captures the telemetry registry (counters/gauges/histograms,\n\
         reconciled integer-exactly against the run's own reports) as\n\
         results/METRICS_<experiment>.json; timeline additionally joins serve\n\
         request spans to kernel spans by wave id in results/TIMELINE_<experiment>.json\n\
         bench-diff compares two JSON reports; exit 1 if any metric regressed\n\
         tip: fig6/fig7 are iterative solvers — use --scale 256 for quick runs"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
