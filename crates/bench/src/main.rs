//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale N] [--seed N] [--matrices A,B,C] [--json] [--trace]
//!
//! experiments:
//!   table1 table2 table3 table4 table5
//!   fig3 fig4 fig5 fig6 fig7 fig8
//!   serve      batched RWR/PPR serving throughput vs batch width
//!   ablations
//!   formats    Table III + Figure 4 + Table IV from one computation
//!   all        every experiment at its default scope
//!
//! utilities:
//!   trace-check <file>   validate an exported trace JSON parses
//! ```
//!
//! `--scale` divides the Table I matrix sizes (default 64); smaller
//! values approach the paper's full-size matrices at the cost of
//! simulation time. `--trace` additionally records every simulated
//! launch/transfer in a ledger, reconciles it against the experiment's
//! own accounting, and writes `results/trace_<experiment>.json`
//! (chrome://tracing format) with a per-phase rollup on stderr.

use repro_bench::experiments::*;
use repro_bench::Options;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_usage();
        return;
    }
    let experiment = args[0].clone();
    if experiment == "trace-check" {
        let path = args
            .get(1)
            .unwrap_or_else(|| die("trace-check needs a file path"));
        trace_check(path);
        return;
    }
    let mut opts = Options::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                opts.scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"));
                i += 2;
            }
            "--seed" => {
                opts.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
                i += 2;
            }
            "--matrices" => {
                opts.matrices = args
                    .get(i + 1)
                    .unwrap_or_else(|| die("--matrices needs a comma list"))
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                i += 2;
            }
            "--json" => {
                opts.json = true;
                i += 1;
            }
            "--trace" => {
                opts.trace = true;
                i += 1;
            }
            other => die(&format!("unknown option '{other}'")),
        }
    }
    run_experiment(&experiment, &opts);
}

fn run_experiment(name: &str, opts: &Options) {
    if name == "all" {
        for exp in [
            "table1",
            "table2",
            "fig3",
            "table3",
            "fig4",
            "table4",
            "table5",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "serve",
            "ablations",
        ] {
            eprintln!(">>> {exp}");
            run_experiment(exp, opts);
        }
        return;
    }
    // Arm the global trace ledger per experiment so each gets its own
    // `results/trace_<name>.json` (Devices attach at construction time).
    if opts.trace {
        repro_bench::tracing::begin();
    }
    run_one(name, opts);
    if opts.trace {
        repro_bench::tracing::finish(name);
    }
}

fn run_one(name: &str, opts: &Options) {
    match name {
        "table1" => emit(opts, table1::run(opts), table1::render),
        "table2" => {
            let d = table2::run();
            if opts.json {
                println!("{}", serde_json::to_string_pretty(&d).unwrap());
            } else {
                println!("{}", table2::render(&d));
            }
        }
        "table3" => emit(opts, table3::run(opts), table3::render),
        "table4" => emit(opts, table4::run(opts), table4::render),
        "table5" => emit(opts, table5::run(opts), table5::render),
        "fig3" => {
            let r = fig3::run(opts);
            if opts.json {
                println!("{}", serde_json::to_string_pretty(&r).unwrap());
            } else {
                println!("{}", fig3::render(&r));
            }
        }
        "fig4" => emit(opts, fig4::run(opts), fig4::render),
        "fig5" => emit(opts, fig5::run(opts), fig5::render),
        "fig6" => emit(opts, fig6::run(opts), fig6::render),
        "fig7" => emit(opts, fig7::run(opts), fig7::render),
        "fig8" => emit(opts, fig8::run(opts), fig8::render),
        "serve" => emit(opts, serve::run(opts), serve::render),
        "ablations" => emit(opts, ablations::run(opts), ablations::render),
        // Table III, Figure 4 and Table IV share one (expensive) format
        // comparison; this runs it once and prints all three.
        "formats" => {
            let rows = formats::run(opts);
            if opts.json {
                println!("{}", serde_json::to_string_pretty(&rows).unwrap());
            } else {
                println!("{}", table3::render(&rows));
                println!("{}", fig4::render(&rows));
                println!("{}", table4::render(&rows));
            }
        }
        other => die(&format!("unknown experiment '{other}'")),
    }
}

/// `repro trace-check <file>`: assert an exported trace is one valid
/// JSON document (used by CI on the smoke-test export).
fn trace_check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    match serde_json::validate(&text) {
        Ok(()) => println!("{path}: valid JSON ({} bytes)", text.len()),
        Err(e) => die(&format!("{path}: invalid JSON: {e}")),
    }
}

fn emit<R: serde::Serialize>(opts: &Options, rows: Vec<R>, render: impl Fn(&[R]) -> String) {
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
    } else {
        println!("{}", render(&rows));
    }
}

fn print_usage() {
    println!(
        "repro — regenerate the paper's tables and figures on the simulated testbed\n\n\
         usage: repro <experiment> [--scale N] [--seed N] [--matrices A,B,C] [--json] [--trace]\n\
         \x20      repro trace-check <file>\n\n\
         experiments: table1 table2 table3 table4 table5 fig3 fig4 fig5 fig6 fig7 fig8 serve ablations formats all\n\n\
         defaults: --scale 64 --seed 1 (whole Table I suite)\n\
         --trace records every simulated launch, reconciles the ledger, and writes\n\
         results/trace_<experiment>.json (chrome://tracing) + a phase rollup on stderr\n\
         tip: fig6/fig7 are iterative solvers — use --scale 256 for quick runs"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
