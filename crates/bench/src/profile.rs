//! `repro profile <experiment>` plumbing.
//!
//! Arms the process-global trace ledger exactly like [`crate::tracing`],
//! then folds the spans through [`gpu_sim::ProfileReport`] into
//! per-kernel derived metrics, writes a stable `results/PROFILE_<name>.json`
//! (schema `acsr-profile-v1`, documented in EXPERIMENTS.md), and prints
//! an Nsight-style hot-kernel table to stderr — stdout stays clean for
//! `--json` pipelines. The report must reconcile bit-exactly with both
//! the ledger total and the per-phase rollup; a mismatch panics.

use acsr::PhaseRollup;
use gpu_sim::counters::LANE_HIST_LABELS;
use gpu_sim::profile::{KernelRow, ProfileReport};
use gpu_sim::{presets, trace, DeviceConfig};
use serde::{Serialize, Value};
use std::path::PathBuf;

/// Device presets the profiler can match spans against (multi-GPU
/// instance names like `"GTX Titan #1"` match by prefix).
pub fn known_configs() -> Vec<DeviceConfig> {
    vec![
        presets::gtx_580(),
        presets::tesla_k10_single(),
        presets::gtx_titan(),
    ]
}

/// Arm the global ledger for one profiled experiment.
pub fn begin() {
    trace::enable_global_capture();
    trace::global_ledger().clear();
}

/// Disarm capture, derive the per-kernel profile, verify it reconciles,
/// write `results/PROFILE_<name>.json` (plus the chrome trace when
/// `export_trace`), and print the hot-kernel table to stderr.
pub fn finish(name: &str, export_trace: bool) -> PathBuf {
    trace::disable_global_capture();
    let ledger = trace::global_ledger();
    ledger
        .reconcile()
        .unwrap_or_else(|e| panic!("trace reconciliation failed for '{name}': {e}"));
    let spans = ledger.spans();
    let configs = known_configs();
    let report = ProfileReport::from_spans(&spans, &configs);
    report
        .reconcile()
        .unwrap_or_else(|e| panic!("profile reconciliation failed for '{name}': {e}"));
    let ledger_total = ledger.total();
    assert_eq!(
        report.total.counters, ledger_total.counters,
        "profile total counters drifted from the ledger"
    );
    assert_eq!(
        report.total.time_s.to_bits(),
        ledger_total.time_s.to_bits(),
        "profile total time drifted from the ledger"
    );
    let rollup = PhaseRollup::from_spans(&spans);

    std::fs::create_dir_all("results").expect("create results/");
    let path = PathBuf::from(format!("results/PROFILE_{name}.json"));
    std::fs::write(&path, render_json(name, &report, &rollup))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    if export_trace {
        let trace_path = PathBuf::from(format!("results/trace_{name}.json"));
        std::fs::write(&trace_path, ledger.chrome_trace_json())
            .unwrap_or_else(|e| panic!("write {}: {e}", trace_path.display()));
        eprintln!("profile[{name}]: trace -> {}", trace_path.display());
    }
    eprint!("{}", hot_table(name, &report, &path));
    ledger.clear();
    path
}

/// Render the profile as the stable `acsr-profile-v1` JSON document.
/// Kernel rows are sorted by `(device, kind, name)` so the bytes do not
/// depend on ledger record order; `span_ids` still cross-link each row
/// to its `span_id`-tagged chrome-trace events.
pub fn render_json(name: &str, report: &ProfileReport, rollup: &PhaseRollup) -> String {
    let mut rows: Vec<&KernelRow> = report.rows.iter().collect();
    rows.sort_by(|a, b| {
        (&a.device, a.kind.label(), &a.name).cmp(&(&b.device, b.kind.label(), &b.name))
    });

    let obj = |entries: Vec<(&str, Value)>| {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let opt = |v: Option<f64>| v.map(Value::F64).unwrap_or(Value::Null);

    let devices = report
        .devices
        .iter()
        .map(|d| {
            obj(vec![
                ("device", Value::Str(d.device.clone())),
                ("peak_gflops", Value::F64(d.peak_gflops)),
                ("mem_bandwidth_gbs", Value::F64(d.mem_bandwidth_gbs)),
                ("ridge_flops_per_byte", Value::F64(d.ridge_flops_per_byte)),
            ])
        })
        .collect();

    let phases = rollup
        .nonempty()
        .into_iter()
        .map(|(label, b)| {
            obj(vec![
                ("phase", Value::Str(label.to_string())),
                ("seconds", Value::F64(b.seconds)),
                ("spans", Value::U64(b.spans as u64)),
                ("launches", Value::U64(b.launches)),
            ])
        })
        .collect();

    let kernels = rows
        .iter()
        .map(|r| {
            let m = &r.metrics;
            let lane_hist = obj(LANE_HIST_LABELS
                .iter()
                .zip(r.counters.lane_hist.iter())
                .map(|(label, v)| (*label, Value::U64(*v)))
                .collect());
            obj(vec![
                ("device", Value::Str(r.device.clone())),
                ("name", Value::Str(r.name.clone())),
                ("kind", Value::Str(r.kind.label().to_string())),
                ("spans", Value::U64(r.spans as u64)),
                ("launches", Value::U64(u64::from(r.launches))),
                (
                    "span_ids",
                    Value::Array(r.span_ids.iter().map(|i| Value::U64(*i as u64)).collect()),
                ),
                ("time_s", Value::F64(r.time_s)),
                (
                    "metrics",
                    obj(vec![
                        (
                            "warp_execution_efficiency",
                            opt(m.warp_execution_efficiency),
                        ),
                        ("coalescing_efficiency", opt(m.coalescing_efficiency)),
                        ("tex_hit_rate", opt(m.tex_hit_rate)),
                        ("atomic_serialization", opt(m.atomic_serialization)),
                        ("divergent_op_fraction", opt(m.divergent_op_fraction)),
                        ("achieved_occupancy", opt(m.achieved_occupancy)),
                        ("load_imbalance", opt(m.load_imbalance)),
                        ("arithmetic_intensity", opt(m.arithmetic_intensity)),
                        ("achieved_gflops", opt(m.achieved_gflops)),
                        ("dram_gbs", opt(m.dram_gbs)),
                        (
                            "roofline",
                            m.roofline
                                .map(|v| Value::Str(v.label().to_string()))
                                .unwrap_or(Value::Null),
                        ),
                        (
                            "limiter",
                            m.limiter
                                .map(|v| Value::Str(v.label().to_string()))
                                .unwrap_or(Value::Null),
                        ),
                        (
                            "verdict",
                            m.verdict
                                .map(|v| Value::Str(v.label().to_string()))
                                .unwrap_or(Value::Null),
                        ),
                    ]),
                ),
                ("lane_hist", lane_hist),
                ("counters", r.counters.to_value()),
                (
                    "breakdown",
                    r.breakdown
                        .as_ref()
                        .map(|b| b.to_value())
                        .unwrap_or(Value::Null),
                ),
            ])
        })
        .collect();

    let doc = obj(vec![
        ("schema", Value::Str("acsr-profile-v1".to_string())),
        ("experiment", Value::Str(name.to_string())),
        ("devices", Value::Array(devices)),
        ("phases", Value::Array(phases)),
        (
            "total",
            obj(vec![
                ("time_s", Value::F64(report.total.time_s)),
                ("launches", Value::U64(u64::from(report.total.launches))),
                ("counters", report.total.counters.to_value()),
            ]),
        ),
        ("kernels", Value::Array(kernels)),
    ]);
    let mut text = serde_json::to_string_pretty(&doc).expect("render profile JSON");
    text.push('\n');
    text
}

fn pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:.1}%", 100.0 * v),
        None => "-".to_string(),
    }
}

/// The Nsight-style stderr report: rows by descending modeled time.
pub fn hot_table(name: &str, report: &ProfileReport, path: &std::path::Path) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile[{name}]: {} rows across {} device(s), {:.3} ms modeled -> {}",
        report.rows.len(),
        report.devices.len(),
        report.total.time_s * 1e3,
        path.display()
    );
    for d in &report.devices {
        let _ = writeln!(
            out,
            "profile[{name}]:   roofline[{}]: ridge {:.1} flop/B (peak {:.0} GFLOP/s / {:.0} GB/s)",
            d.device, d.ridge_flops_per_byte, d.peak_gflops, d.mem_bandwidth_gbs
        );
    }
    let _ = writeln!(
        out,
        "profile[{name}]:   {:>6}  {:>10}  {:>7}  {:>6}  {:>6}  {:>6}  {:>5}  {:>8}  {:<13} kernel",
        "time%", "time", "launch", "weff", "coal", "occ", "imb", "flop/B", "verdict"
    );
    let total = report.total.time_s.max(1e-300);
    for r in report.rows_by_time().into_iter().take(16) {
        let m = &r.metrics;
        let _ = writeln!(
            out,
            "profile[{name}]:   {:>5.1}%  {:>10}  {:>7}  {:>6}  {:>6}  {:>6}  {:>5}  {:>8}  {:<13} {}{}",
            100.0 * r.time_s / total,
            crate::common::fmt_secs(r.time_s),
            r.launches,
            pct(m.warp_execution_efficiency),
            pct(m.coalescing_efficiency),
            pct(m.achieved_occupancy),
            m.load_imbalance
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into()),
            m.arithmetic_intensity
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into()),
            m.verdict.map(|v| v.label()).unwrap_or("-"),
            if report.devices.len() > 1 {
                format!("{} @ {}", r.name, r.device)
            } else {
                r.name.clone()
            },
            if r.kind == gpu_sim::RowKind::Group {
                " [group]"
            } else {
                ""
            },
        );
    }
    out
}
