//! Host-simulator throughput sweep (`repro simbench`, the
//! `sim_throughput` Criterion bench, and the CI smoke share this).
//!
//! Measures simulated kernel launches per second for each SpMV engine
//! at host worker widths 1/2/4/8 (the `ACSR_SIM_THREADS` knob). Every
//! width computes bit-identical reports — the sweep measures pure host
//! mechanism, so `launches_per_sec` is the direct price of simulating a
//! launch and `speedup_vs_seq` is the parallel-host scaling curve.
//!
//! Results are written to `results/BENCH_sim_throughput.json` under the
//! `acsr-simbench-v1` schema, which `repro check-artifacts` validates
//! and `repro bench-diff` gates against the committed floor in
//! `baselines/BENCH_sim_throughput_ci.json` (`launches_per_sec` and
//! `speedup_vs_seq` are higher-better metrics by name).

use acsr::{AcsrConfig, AcsrEngine};
use gpu_sim::{host_cores, presets, set_sim_threads, Device, DeviceBuffer};
use graphgen::{generate_power_law, PowerLawConfig};
use sparse_formats::EllMatrix;
use spmv_kernels::{csr_vector::CsrVector, ell_kernel::EllKernel, DevCsr, DevEll, GpuSpmv};
use std::time::Instant;

/// Schema tag of the emitted artifact.
pub const SCHEMA: &str = "acsr-simbench-v1";

/// Host worker widths swept.
pub const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// One (workers, rate) sample.
pub struct WidthRate {
    pub workers: usize,
    pub launches_per_sec: f64,
    /// Rate relative to this kernel's `workers == 1` run.
    pub speedup_vs_seq: f64,
}

/// The sweep for one kernel.
pub struct KernelRates {
    pub kernel: &'static str,
    pub widths: Vec<WidthRate>,
}

/// Full report of one sweep run.
pub struct Report {
    pub host_cores: usize,
    pub kernels: Vec<KernelRates>,
}

/// One benchable engine instance with its vectors.
pub struct Workload {
    pub kernel: &'static str,
    pub dev: Device,
    pub eng: Box<dyn GpuSpmv<f64>>,
    pub x: DeviceBuffer<f64>,
    pub y: DeviceBuffer<f64>,
}

impl Workload {
    /// One simulated launch.
    pub fn launch(&self) {
        self.eng.spmv(&self.dev, &self.x, &self.y);
    }
}

/// The standard workloads: the 20k-row power-law matrix for CSR-vector
/// and ACSR (the paper's target shape — long-tail rows), and a
/// bounded-degree matrix for ELL (whose storage is `rows × max_degree`,
/// so a power-law tail would be pathological for the *format*, not the
/// simulator). The CSR-vector workload is unchanged from the original
/// single-kernel bench, keeping `launches_per_sec` comparable across
/// the repo's history.
pub fn workloads() -> Vec<Workload> {
    let skewed = generate_power_law(&PowerLawConfig {
        rows: 20_000,
        cols: 20_000,
        mean_degree: 12.0,
        max_degree: 4_000,
        pinned_max_rows: 2,
        col_skew: 0.4,
        seed: 7,
        ..Default::default()
    });
    let bounded = generate_power_law(&PowerLawConfig {
        rows: 20_000,
        cols: 20_000,
        mean_degree: 12.0,
        max_degree: 32,
        pinned_max_rows: 0,
        col_skew: 0.4,
        seed: 7,
        ..Default::default()
    });
    let vectors = |dev: &Device, rows: usize, cols: usize| {
        let x: Vec<f64> = (0..cols).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
        (dev.alloc(x), dev.alloc_zeroed::<f64>(rows))
    };
    let mut out = Vec::new();
    {
        let dev = Device::new(presets::gtx_titan());
        let eng = CsrVector::new(DevCsr::upload(&dev, &skewed));
        let (x, y) = vectors(&dev, skewed.rows(), skewed.cols());
        out.push(Workload {
            kernel: "csr_vector",
            dev,
            eng: Box::new(eng),
            x,
            y,
        });
    }
    {
        let dev = Device::new(presets::gtx_titan());
        let (ell, _) = EllMatrix::from_csr(&bounded, usize::MAX).expect("bounded-degree ELL fits");
        let eng = EllKernel::new(DevEll::upload(&dev, &ell));
        let (x, y) = vectors(&dev, bounded.rows(), bounded.cols());
        out.push(Workload {
            kernel: "ell",
            dev,
            eng: Box::new(eng),
            x,
            y,
        });
    }
    {
        let dev = Device::new(presets::gtx_titan());
        let cfg = AcsrConfig::for_device(dev.config());
        let eng = AcsrEngine::from_csr(&dev, &skewed, cfg);
        let (x, y) = vectors(&dev, skewed.rows(), skewed.cols());
        out.push(Workload {
            kernel: "acsr",
            dev,
            eng: Box::new(eng),
            x,
            y,
        });
    }
    out
}

/// Measure one workload at one width: warm up, then launch repeatedly
/// for at least `window` seconds (and `min_launches` launches). Two
/// back-to-back windows, best rate kept: the interesting quantity is
/// the engine's throughput, and transient host stalls (scheduler
/// preemption on a loaded CI box) only ever push a window *down*.
pub fn measure(w: &Workload, threads: usize, window: f64, min_launches: u32) -> f64 {
    set_sim_threads(threads);
    for _ in 0..2 {
        w.launch();
    }
    let mut best = 0.0f64;
    for _ in 0..2 {
        let start = Instant::now();
        let mut launches = 0u32;
        while launches < min_launches || start.elapsed().as_secs_f64() < window {
            w.launch();
            launches += 1;
        }
        best = best.max(launches as f64 / start.elapsed().as_secs_f64());
    }
    set_sim_threads(0);
    best
}

/// Run the full sweep. `quick` shortens the per-point window for smoke
/// runs (noisier, same schema).
pub fn run(quick: bool) -> Report {
    let (window, min_launches) = if quick { (0.12, 3) } else { (0.4, 10) };
    let kernels = workloads()
        .iter()
        .map(|w| {
            let rates: Vec<f64> = WIDTHS
                .iter()
                .map(|&t| measure(w, t, window, min_launches))
                .collect();
            KernelRates {
                kernel: w.kernel,
                widths: WIDTHS
                    .iter()
                    .zip(&rates)
                    .map(|(&workers, &r)| WidthRate {
                        workers,
                        launches_per_sec: r,
                        speedup_vs_seq: r / rates[0],
                    })
                    .collect(),
            }
        })
        .collect();
    Report {
        host_cores: host_cores(),
        kernels,
    }
}

/// Serialize under the `acsr-simbench-v1` schema.
pub fn to_json(report: &Report) -> String {
    let mut kernels = String::new();
    for (i, k) in report.kernels.iter().enumerate() {
        if i > 0 {
            kernels.push_str(",\n");
        }
        let mut widths = String::new();
        for (j, wr) in k.widths.iter().enumerate() {
            if j > 0 {
                widths.push_str(",\n");
            }
            widths.push_str(&format!(
                "        {{\"workers\": {}, \"launches_per_sec\": {:.2}, \"speedup_vs_seq\": {:.3}}}",
                wr.workers, wr.launches_per_sec, wr.speedup_vs_seq
            ));
        }
        kernels.push_str(&format!(
            "    {{\n      \"kernel\": \"{}\",\n      \"widths\": [\n{widths}\n      ]\n    }}",
            k.kernel
        ));
    }
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"bench\": \"sim_throughput\",\n  \
         \"host_cores\": {},\n  \"kernels\": [\n{kernels}\n  ]\n}}\n",
        report.host_cores
    )
}

/// Write the artifact to `results/BENCH_sim_throughput.json` (resolved
/// from the workspace root or a crate dir) and return the path written.
pub fn write(report: &Report) -> std::io::Result<String> {
    let dir = if std::path::Path::new("results").is_dir() {
        std::path::PathBuf::from("results")
    } else {
        std::path::PathBuf::from("../../results")
    };
    let path = dir.join("BENCH_sim_throughput.json");
    std::fs::write(&path, to_json(report))?;
    Ok(path.display().to_string())
}

/// Human-readable table.
pub fn render(report: &Report) -> String {
    let mut t = crate::Table::new(&["Kernel", "workers", "launches/sec", "speedup vs seq"]);
    for k in &report.kernels {
        for wr in &k.widths {
            t.row(vec![
                k.kernel.to_string(),
                wr.workers.to_string(),
                format!("{:.1}", wr.launches_per_sec),
                format!("{:.2}x", wr.speedup_vs_seq),
            ]);
        }
    }
    format!(
        "Host-simulator throughput ({} host cores)\n{}",
        report.host_cores,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_and_carries_schema() {
        let report = Report {
            host_cores: 4,
            kernels: vec![KernelRates {
                kernel: "csr_vector",
                widths: vec![WidthRate {
                    workers: 1,
                    launches_per_sec: 123.4,
                    speedup_vs_seq: 1.0,
                }],
            }],
        };
        let json = to_json(&report);
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let serde::Value::Object(entries) = &v else {
            panic!("not an object")
        };
        let get = |k: &str| entries.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        assert!(matches!(get("schema"), Some(serde::Value::Str(s)) if s == SCHEMA));
        // The JSON shim parses in-range positive integers as I64.
        assert!(matches!(get("host_cores"), Some(serde::Value::I64(4))));
        assert!(matches!(get("kernels"), Some(serde::Value::Array(a)) if a.len() == 1));
    }
}
