//! `repro metrics <experiment>` / `repro timeline <experiment>` plumbing.
//!
//! `metrics` arms both capture planes — the kernel-plane
//! [`gpu_sim::trace::TraceLedger`] and the serving-plane
//! [`acsr_telemetry::Telemetry`] — runs the experiment, folds the
//! ledger's reconciled totals into `sim.*` registry metrics
//! (integer-exactly, asserted), and writes the byte-stable
//! `results/METRICS_<name>.json` snapshot (`acsr-metrics-v1`).
//!
//! `timeline` additionally exports `results/TIMELINE_<name>.json`
//! (`acsr-timeline-v1`): the chrome-trace join of kernel spans and
//! request spans, correlated by the wave ids the serving scheduler
//! stamps into both planes. The export is validated — a kernel span
//! claiming an unannounced wave, or a query admitted into an unknown
//! wave, is a hard failure, not a cosmetic gap.
//!
//! Every instrumented subsystem reconciles its own counters against its
//! existing report before they reach the shared registry (serve panics
//! in `ServeScope::finish`, `repro stream` against the maintenance
//! ledger), so a written snapshot is always an *accounting mirror* of
//! the reports, never a drifting second source of truth.

use acsr_telemetry::{MetricValue, MetricsSnapshot};
use gpu_sim::trace;
use std::path::PathBuf;

/// Arm both capture planes for one experiment (clearing prior state, so
/// back-to-back runs produce identical artifacts).
pub fn begin() {
    trace::enable_global_capture();
    trace::global_ledger().clear();
    acsr_telemetry::enable_global_capture();
    acsr_telemetry::global().reset();
}

/// Disarm capture, reconcile, fold the kernel plane into `sim.*`,
/// write `results/METRICS_<name>.json` (and `TIMELINE_<name>.json` when
/// `timeline`), and dump the registry through [`print_metrics`].
pub fn finish(name: &str, timeline: bool) -> PathBuf {
    trace::disable_global_capture();
    acsr_telemetry::disable_global_capture();
    let ledger = trace::global_ledger();
    let total = ledger
        .reconcile()
        .unwrap_or_else(|e| panic!("trace reconciliation failed for '{name}': {e}"));
    let tel = acsr_telemetry::global();

    // Fold the kernel plane into the registry, then prove the fold is
    // integer-exact against the ledger's own merged total.
    let m = &tel.metrics;
    m.add("sim.spans", ledger.spans().len() as u64);
    m.add("sim.launches", u64::from(total.launches));
    m.add("sim.warp_instructions", total.counters.warp_instructions);
    m.add("sim.flops", total.counters.flops);
    m.add("sim.dram_read_bytes", total.counters.dram_read_bytes);
    m.add("sim.dram_write_bytes", total.counters.dram_write_bytes);
    m.add("sim.htod_bytes", total.counters.htod_bytes);
    m.add("sim.dtoh_bytes", total.counters.dtoh_bytes);
    m.set_gauge("sim.time_s", total.time_s);
    for (metric, want) in [
        ("sim.spans", ledger.spans().len() as u64),
        ("sim.launches", u64::from(total.launches)),
        ("sim.warp_instructions", total.counters.warp_instructions),
        ("sim.flops", total.counters.flops),
        ("sim.dram_read_bytes", total.counters.dram_read_bytes),
        ("sim.dram_write_bytes", total.counters.dram_write_bytes),
        ("sim.htod_bytes", total.counters.htod_bytes),
        ("sim.dtoh_bytes", total.counters.dtoh_bytes),
    ] {
        assert_eq!(
            m.counter(metric),
            want,
            "{metric} drifted from the trace ledger for '{name}'"
        );
    }

    let snap = tel.metrics.snapshot();
    std::fs::create_dir_all("results").expect("create results/");
    let path = PathBuf::from(format!("results/METRICS_{name}.json"));
    std::fs::write(&path, snap.to_json())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    print_metrics(&format!("metrics[{name}]"), &snap);
    eprintln!(
        "metrics[{name}]: {} metrics, {} request events, {} waves -> {}",
        snap.entries.len(),
        tel.requests.events().len(),
        tel.requests.waves().len(),
        path.display()
    );

    if timeline {
        let json = acsr_telemetry::timeline_json(&ledger, &tel)
            .unwrap_or_else(|e| panic!("timeline export failed for '{name}': {e}"));
        let tpath = PathBuf::from(format!("results/TIMELINE_{name}.json"));
        std::fs::write(&tpath, json).unwrap_or_else(|e| panic!("write {}: {e}", tpath.display()));
        eprintln!(
            "metrics[{name}]: timeline ({} kernel spans + request lanes) -> {}",
            ledger.spans().len(),
            tpath.display()
        );
    }

    ledger.clear();
    tel.reset();
    path
}

/// The one shared stderr formatter for registry dumps: one line per
/// metric in snapshot (= name-sorted) order, histograms summarized by
/// count and nearest-rank quantiles. stdout stays clean for `--json`.
pub fn print_metrics(tag: &str, snap: &MetricsSnapshot) {
    for (name, value) in &snap.entries {
        match value {
            MetricValue::Counter(v) => eprintln!("{tag}: {name} = {v}"),
            MetricValue::Gauge(v) => eprintln!("{tag}: {name} = {v:.6}"),
            MetricValue::Histogram(h) => {
                // The `_s` naming convention marks seconds-valued series;
                // everything else (queue depths, wave widths) is a count.
                let fmt: fn(f64) -> String = if name.ends_with("_s") {
                    crate::common::fmt_secs
                } else {
                    |v: f64| format!("{v:.1}")
                };
                eprintln!(
                    "{tag}: {name} count={} p50={} p95={} p99={} max={}",
                    h.count(),
                    fmt(h.quantile(0.50)),
                    fmt(h.quantile(0.95)),
                    fmt(h.quantile(0.99)),
                    fmt(h.max()),
                );
            }
        }
    }
}
