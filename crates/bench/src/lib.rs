//! # repro-bench — regenerates every table and figure of the paper
//!
//! Each module under [`experiments`] reproduces one table or figure of
//! Ashari et al., SC'14, on the simulated devices; the `repro` binary
//! exposes them as subcommands (`repro fig5 --scale 64`). Absolute
//! numbers come from the simulator's timing model — the *shapes* (who
//! wins, by what factor, where crossovers sit) are the reproduction
//! targets recorded in EXPERIMENTS.md.

pub mod common;
pub mod diff;
pub mod experiments;
pub mod fleet;
pub mod metrics;
pub mod profile;
pub mod simbench;
pub mod slo;
pub mod stream;
pub mod tracing;

pub use common::{selected_specs, Options, Table};
