//! `--trace` plumbing for the `repro` binary.
//!
//! With `--trace`, every [`gpu_sim::Device`] an experiment creates
//! attaches to the process-global [`gpu_sim::TraceLedger`]; after the
//! experiment the ledger is reconciled (span counters must sum exactly
//! to its running total — a hard failure otherwise), exported as
//! chrome://tracing JSON under `results/`, and summarized per ACSR
//! phase on stderr (stdout stays clean for `--json` pipelines).

use acsr::PhaseRollup;
use gpu_sim::trace;
use std::path::PathBuf;

/// Arm the global ledger for one experiment (clears any prior spans).
pub fn begin() {
    trace::enable_global_capture();
    trace::global_ledger().clear();
}

/// Reconcile, export `results/trace_<name>.json`, print the per-phase
/// rollup to stderr, and disarm capture. Panics if the ledger's span
/// counters fail to sum to its total — that would mean the simulator
/// lost or double-counted events.
pub fn finish(name: &str) -> PathBuf {
    trace::disable_global_capture();
    let ledger = trace::global_ledger();
    let total = ledger
        .reconcile()
        .unwrap_or_else(|e| panic!("trace reconciliation failed for '{name}': {e}"));

    std::fs::create_dir_all("results").expect("create results/");
    let path = PathBuf::from(format!("results/trace_{name}.json"));
    std::fs::write(&path, ledger.chrome_trace_json())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));

    let spans = ledger.spans();
    let rollup = PhaseRollup::from_spans(&spans);
    eprintln!(
        "trace[{name}]: {} spans, {} launches, {:.3} ms modeled -> {}",
        spans.len(),
        total.launches,
        total.time_s * 1e3,
        path.display()
    );
    let attributed = rollup.total_seconds().max(1e-300);
    for (label, b) in rollup.nonempty() {
        eprintln!(
            "trace[{name}]:   {:<12} {:>5.1}%  {:>8} spans  {:>10} launches  {:>12} DRAM B  {:>12} PCIe B",
            label,
            100.0 * b.seconds / attributed,
            b.spans,
            b.launches,
            b.counters.dram_bytes(),
            b.counters.htod_bytes + b.counters.dtoh_bytes,
        );
    }
    if rollup.bin_grid_launches() > 0 || rollup.row_grid_launches() > 0 {
        eprintln!(
            "trace[{name}]:   Table V view: BS={} bin grids, RS={} row grids",
            rollup.bin_grid_launches(),
            rollup.row_grid_launches()
        );
    }
    ledger.clear();
    path
}
