//! `repro slo` — the open-loop SLO-attainment sweep.
//!
//! The serving experiment (`repro serve`) drains a saturated backlog
//! and reports throughput; this sweep asks the production question
//! instead: **at what offered load does the engine stop meeting its
//! latency target?** The answer is an attainment curve — offered
//! queries/sec vs the fraction of *offered* queries (sheds count as
//! misses) completing within the p99 target — plus the same accounting
//! for the adversarial arrival shapes a front-end must survive
//! (diurnal rate curves, bursty clumps, hot-key streams, and a
//! two-tenant priority mix).
//!
//! The sweep self-calibrates: a saturated closed-loop run measures the
//! engine's capacity, a light open-loop run (25% of capacity) measures
//! the unloaded p99, and the target is set to twice that — so the curve
//! starts attained and degrades past saturation by construction, on any
//! device model. Every number is *modeled* (virtual clock, seeded
//! streams), so the artifact is bit-reproducible and
//! `baselines/BENCH_slo_ci.json` gates it exactly in CI.
//!
//! Results go to `results/BENCH_slo.json` (`acsr-slo-v1` schema),
//! validated by `repro check-artifacts` and gated by `repro
//! bench-diff`.

use acsr_serve::{
    assign_tenants, generate_queries, ArrivalPattern, ServeConfig, ServeEngine, ServeReport,
    SloPolicy, TenantSpec, TenantTable,
};
use graphgen::{generate_power_law, PowerLawConfig};

/// Schema tag of the emitted artifact.
pub const SCHEMA: &str = "acsr-slo-v1";

/// Offered load relative to measured capacity, one curve point each.
pub const LOAD_POINTS: [f64; 6] = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0];

/// SpMM batch cap of the serving engine under test.
const MAX_BATCH: usize = 16;

/// Submission-queue capacity of the engine under test.
const QUEUE_CAPACITY: usize = 32;

/// One measured serving run (a curve point or an arrival-shape trace).
pub struct SloPoint {
    /// Stable row key (`load_0.25x`, `diurnal`, ...; `bench-diff` keys
    /// array rows by this).
    pub name: String,
    /// Nominal offered arrival rate, queries/sec.
    pub offered_qps: f64,
    /// Measured mean rate of the generated stream (`n / last arrival`).
    pub empirical_qps: f64,
    pub queries: usize,
    pub completed: usize,
    pub capacity_shed: usize,
    pub deadline_shed: usize,
    /// Fraction of offered queries completing within the p99 target.
    pub attainment: f64,
    /// Target-meeting completions per virtual second.
    pub goodput_qps: f64,
    pub throughput_qps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub mean_wave_width: f64,
}

/// Full report of one sweep run.
pub struct Report {
    pub rows: usize,
    pub nnz: usize,
    pub max_batch: usize,
    pub queue_capacity: usize,
    /// Saturated closed-loop drain rate, queries/sec.
    pub capacity_qps: f64,
    /// The latency target the attainment column is scored against
    /// (2× the unloaded p99), milliseconds.
    pub p99_target_ms: f64,
    /// The attainment curve over [`LOAD_POINTS`].
    pub curve: Vec<SloPoint>,
    /// The same accounting for adversarial arrival shapes at 80% of
    /// capacity.
    pub traces: Vec<SloPoint>,
}

fn point(
    name: String,
    offered_qps: f64,
    queries: &[acsr_serve::Query],
    report: &ServeReport<f64>,
    target_s: f64,
) -> SloPoint {
    let lat = report.latency_stats();
    let last = queries.last().map_or(0.0, |q| q.arrival_s);
    SloPoint {
        name,
        offered_qps,
        empirical_qps: if last > 0.0 {
            queries.len() as f64 / last
        } else {
            0.0
        },
        queries: queries.len(),
        completed: report.outcomes.len(),
        capacity_shed: report.rejected.len(),
        deadline_shed: report.deadline_shed.len(),
        attainment: report.attainment(target_s),
        goodput_qps: report.goodput_qps(target_s),
        throughput_qps: report.throughput_qps(),
        p50_ms: lat.p50_s * 1e3,
        p99_ms: lat.p99_s * 1e3,
        mean_wave_width: report.mean_wave_width(),
    }
}

/// Run the full sweep. `quick` shrinks the graph and the per-point
/// stream for CI smoke runs — same schema, same self-calibrated shape,
/// still fully deterministic.
pub fn run(quick: bool) -> Report {
    let (n_rows, n_queries) = if quick { (400, 96) } else { (1200, 192) };
    let g = generate_power_law(&PowerLawConfig {
        rows: n_rows,
        cols: n_rows,
        mean_degree: 8.0,
        max_degree: n_rows / 4,
        pinned_max_rows: 2,
        col_skew: 0.4,
        seed: 7,
        ..Default::default()
    });
    let engine = ServeEngine::<f64>::new(
        &g,
        ServeConfig {
            max_batch: MAX_BATCH,
            queue_capacity: QUEUE_CAPACITY,
            ..ServeConfig::default()
        },
    );

    // 1. capacity: how fast the engine drains a saturated backlog
    //    (closed loop, full-width waves, nothing shed)
    let sat_queries = generate_queries(
        ArrivalPattern::Poisson { rate_qps: 1e9 },
        n_queries,
        n_rows,
        0.85,
        2,
    );
    let capacity_qps = engine.serve(&sat_queries).throughput_qps();

    // 2. calibrate the reporting target: the unloaded (25% of capacity,
    //    no shedding) p99, doubled — attained at light load, violated
    //    past saturation, whatever the device model
    let calib_queries = generate_queries(
        ArrivalPattern::Poisson {
            rate_qps: 0.25 * capacity_qps,
        },
        n_queries,
        n_rows,
        0.85,
        3,
    );
    let calib = engine.serve_slo(
        &calib_queries,
        &SloPolicy::open_loop(f64::INFINITY, MAX_BATCH, QUEUE_CAPACITY),
    );
    let target_s = 2.0 * calib.latency_stats().p99_s;
    let policy = SloPolicy::open_loop(target_s, MAX_BATCH, QUEUE_CAPACITY);

    // 3. the attainment curve. One shared rng seed: the exponential
    //    gaps reuse the same uniform draws at every rate, so each point
    //    serves the same stream shape compressed in time and the curve
    //    is monotone in load, not in sampling noise.
    let curve = LOAD_POINTS
        .iter()
        .map(|&rel| {
            let rate = rel * capacity_qps;
            let queries = generate_queries(
                ArrivalPattern::Poisson { rate_qps: rate },
                n_queries,
                n_rows,
                0.85,
                5,
            );
            let report = engine.serve_slo(&queries, &policy);
            point(format!("load_{rel:.2}x"), rate, &queries, &report, target_s)
        })
        .collect();

    // 4. adversarial arrival shapes at a fixed 80%-of-capacity mean
    //    rate: same mean load as a comfortably-attained Poisson point,
    //    so any attainment loss is the *shape's* doing
    let shape_rate = 0.8 * capacity_qps;
    let mut traces = Vec::new();
    for (name, pattern, seed) in [
        (
            "diurnal",
            ArrivalPattern::Diurnal {
                base_qps: 0.2 * capacity_qps,
                peak_qps: 1.4 * capacity_qps,
                // two full day/night cycles across the stream
                period_s: 0.5 * n_queries as f64 / shape_rate,
            },
            11,
        ),
        (
            "bursty",
            ArrivalPattern::Bursty {
                rate_qps: shape_rate,
                burst: 8,
            },
            13,
        ),
        (
            "hot_key",
            ArrivalPattern::HotKey {
                rate_qps: shape_rate,
                hot_fraction: 0.8,
                hot_keys: 3,
            },
            17,
        ),
    ] {
        let queries = generate_queries(pattern, n_queries, n_rows, 0.85, seed);
        let report = engine.serve_slo(&queries, &policy);
        traces.push(point(
            name.to_string(),
            pattern.mean_qps(),
            &queries,
            &report,
            target_s,
        ));
    }
    // the two-tenant mix: 3 parts interactive traffic (tight budget,
    // better tier) to 1 part bulk (relaxed budget, soaks spare slots)
    let mut mix_queries = generate_queries(
        ArrivalPattern::Poisson {
            rate_qps: shape_rate,
        },
        n_queries,
        n_rows,
        0.85,
        19,
    );
    assign_tenants(&mut mix_queries, &[(0, 3.0), (1, 1.0)], 23);
    let mix_policy = SloPolicy {
        tenants: TenantTable::new(vec![
            TenantSpec {
                tenant: 0,
                priority: 0,
                share: 3,
                slo_s: target_s,
            },
            TenantSpec {
                tenant: 1,
                priority: 1,
                share: 1,
                slo_s: 4.0 * target_s,
            },
        ]),
        ..policy.clone()
    };
    let mix_report = engine.serve_slo(&mix_queries, &mix_policy);
    traces.push(point(
        "tenant_mix".to_string(),
        shape_rate,
        &mix_queries,
        &mix_report,
        target_s,
    ));

    Report {
        rows: g.rows(),
        nnz: g.nnz(),
        max_batch: MAX_BATCH,
        queue_capacity: QUEUE_CAPACITY,
        capacity_qps,
        p99_target_ms: target_s * 1e3,
        curve,
        traces,
    }
}

fn points_json(points: &[SloPoint]) -> String {
    let mut out = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"offered_qps\": {:.3}, \"empirical_qps\": {:.3}, \
             \"queries\": {}, \"completed\": {}, \"capacity_shed\": {}, \"deadline_shed\": {}, \
             \"attainment\": {:.4}, \"goodput_qps\": {:.3}, \"throughput_qps\": {:.3}, \
             \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \"mean_wave_width\": {:.3}}}",
            p.name,
            p.offered_qps,
            p.empirical_qps,
            p.queries,
            p.completed,
            p.capacity_shed,
            p.deadline_shed,
            p.attainment,
            p.goodput_qps,
            p.throughput_qps,
            p.p50_ms,
            p.p99_ms,
            p.mean_wave_width,
        ));
    }
    out
}

/// Serialize under the `acsr-slo-v1` schema.
pub fn to_json(report: &Report) -> String {
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"bench\": \"slo_attainment\",\n  \
         \"rows\": {},\n  \"nnz\": {},\n  \"max_batch\": {},\n  \"queue_capacity\": {},\n  \
         \"capacity_qps\": {:.3},\n  \"p99_target_ms\": {:.6},\n  \
         \"curve\": [\n{}\n  ],\n  \"traces\": [\n{}\n  ]\n}}\n",
        report.rows,
        report.nnz,
        report.max_batch,
        report.queue_capacity,
        report.capacity_qps,
        report.p99_target_ms,
        points_json(&report.curve),
        points_json(&report.traces),
    )
}

/// Write the artifact to `results/BENCH_slo.json` (resolved from the
/// workspace root or a crate dir) and return the path written.
pub fn write(report: &Report) -> std::io::Result<String> {
    let dir = if std::path::Path::new("results").is_dir() {
        std::path::PathBuf::from("results")
    } else {
        std::path::PathBuf::from("../../results")
    };
    let path = dir.join("BENCH_slo.json");
    std::fs::write(&path, to_json(report))?;
    Ok(path.display().to_string())
}

/// Human-readable tables.
pub fn render(report: &Report) -> String {
    let table = |points: &[SloPoint]| {
        let mut t = crate::Table::new(&[
            "point",
            "offered q/s",
            "att",
            "goodput",
            "done",
            "cap-shed",
            "ddl-shed",
            "p50 ms",
            "p99 ms",
            "width",
        ]);
        for p in points {
            t.row(vec![
                p.name.clone(),
                format!("{:.0}", p.offered_qps),
                format!("{:.3}", p.attainment),
                format!("{:.0}", p.goodput_qps),
                p.completed.to_string(),
                p.capacity_shed.to_string(),
                p.deadline_shed.to_string(),
                format!("{:.3}", p.p50_ms),
                format!("{:.3}", p.p99_ms),
                format!("{:.1}", p.mean_wave_width),
            ]);
        }
        t.render()
    };
    format!(
        "SLO attainment ({} rows, {} nnz, capacity {:.0} q/s, p99 target {:.3} ms)\n\
         {}\narrival shapes at 80% of capacity:\n{}",
        report.rows,
        report.nnz,
        report.capacity_qps,
        report.p99_target_ms,
        table(&report.curve),
        table(&report.traces),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick sweep is what CI smokes and gates; pin its acceptance
    /// shape here so a drive-by change to the sweep can't silently
    /// produce a degenerate curve.
    #[test]
    fn quick_sweep_produces_a_degrading_curve() {
        let report = run(true);
        assert!(report.capacity_qps > 0.0);
        assert!(report.p99_target_ms > 0.0);
        assert!(report.curve.len() >= 4, "need at least 4 load points");
        // light load attains, heavy load does not, and attainment
        // degrades monotonically past saturation
        let att: Vec<f64> = report.curve.iter().map(|p| p.attainment).collect();
        assert!(att[0] > 0.9, "25% load must mostly attain, got {}", att[0]);
        assert!(
            att[att.len() - 1] < att[0],
            "2x overload must degrade attainment: {att:?}"
        );
        for pair in report.curve.windows(2) {
            if pair[0].offered_qps >= report.capacity_qps {
                assert!(
                    pair[1].attainment <= pair[0].attainment,
                    "attainment must degrade monotonically past saturation: {att:?}"
                );
            }
        }
        // overload must actually shed rather than queue without bound
        let overloaded = report.curve.last().unwrap();
        assert!(overloaded.capacity_shed + overloaded.deadline_shed > 0);
        // every emitted number is finite (the artifact must never carry
        // a NaN), and goodput never exceeds throughput
        for p in report.curve.iter().chain(&report.traces) {
            for v in [
                p.offered_qps,
                p.empirical_qps,
                p.attainment,
                p.goodput_qps,
                p.throughput_qps,
                p.p50_ms,
                p.p99_ms,
                p.mean_wave_width,
            ] {
                assert!(v.is_finite(), "{}: non-finite metric {v}", p.name);
            }
            assert!(p.goodput_qps <= p.throughput_qps + 1e-9, "{}", p.name);
        }
        // the loadgen rate contract, measured end to end: the bursty
        // trace's empirical mean rate is within 2% of nominal
        let bursty = report.traces.iter().find(|p| p.name == "bursty").unwrap();
        assert!(
            (bursty.empirical_qps - bursty.offered_qps).abs() / bursty.offered_qps < 0.02,
            "bursty empirical {} vs nominal {}",
            bursty.empirical_qps,
            bursty.offered_qps
        );
        // JSON round-trips under the shim parser
        let json = to_json(&report);
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let serde::Value::Object(entries) = &v else {
            panic!("not an object")
        };
        let get = |k: &str| entries.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        assert!(matches!(get("schema"), Some(serde::Value::Str(s)) if s == SCHEMA));
        assert!(
            matches!(get("curve"), Some(serde::Value::Array(a)) if a.len() == LOAD_POINTS.len())
        );
        assert!(matches!(get("traces"), Some(serde::Value::Array(a)) if a.len() == 4));
    }
}
