//! `repro fleet` — N-device sharded-fleet scaling, per-shard format
//! selection, and wave work-stealing.
//!
//! Three sections, one artifact:
//!
//! 1. **Scaling**: a power-law subset of the Table I suite sharded
//!    across D ∈ {1, 2, 4, 8, 16} simulated devices ([`multi_gpu::Fleet`])
//!    on the NVLink-class interconnect (the resident-fleet machine the
//!    subsystem models; PCIe-class links leave small matrices
//!    exchange-bound at every D). Each row records the modeled wall
//!    time, the speedup and parallel efficiency against the D = 1
//!    baseline, and the halo exchange
//!    (payload bytes, schedule end, tail past compute). Every run
//!    traces into a [`gpu_sim::trace::TraceLedger`] and the per-edge
//!    halo transfers are reconciled **integer-exactly** (bytes) and
//!    **bit-exactly** (durations) against the exchange report — the run
//!    dies on any mismatch, so a committed artifact is self-consistent
//!    by construction.
//! 2. **Formats**: the same fleet at D = 8 with
//!    [`multi_gpu::ShardFormat::Adaptive`] — binned sharding reshapes
//!    every shard's row-length distribution, so shards may plan
//!    different formats; the section records what each shard chose.
//! 3. **Stealing**: the serving engine's per-wave dispatch choice
//!    ([`acsr_serve::DispatchPolicy::Auto`]) against always-row-split
//!    on two traces — sparse arrivals (width-1 waves, where
//!    query-splitting onto replicated devices wins) and a saturated
//!    burst (full waves, where the probe-calibrated cost model decides
//!    per wave). Attainment with Auto must be no worse on both and
//!    strictly better on the sparse trace; the run dies otherwise.
//!
//! Results go to `results/BENCH_fleet.json` (`acsr-fleet-v1` schema),
//! validated by `repro check-artifacts` and gated by `repro bench-diff`
//! against `baselines/BENCH_fleet_ci.json`.

use acsr_serve::{DispatchPolicy, Query, ServeConfig, ServeEngine, ServeReport, SloPolicy};
use gpu_sim::presets;
use graphgen::{generate_power_law, MatrixSpec, PowerLawConfig};
use multi_gpu::{Fleet, FleetConfig, FleetReport, ShardFormat};

/// Schema tag of the emitted artifact.
pub const SCHEMA: &str = "acsr-fleet-v1";

/// Device counts of the scaling sweep (1 is the speedup baseline).
pub const DEVICE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// One (matrix, device-count) scaling measurement.
pub struct ScalingRow {
    /// Stable row key (`LJ2_d4`; `bench-diff` keys array rows by this).
    pub name: String,
    pub matrix: String,
    pub devices: usize,
    pub rows: usize,
    pub nnz: usize,
    /// Modeled wall time (compute makespan or exchange end, whichever
    /// lands later).
    pub seconds: f64,
    /// D = 1 wall time over this wall time.
    pub speedup: f64,
    /// Speedup over device count.
    pub efficiency: f64,
    pub gflops: f64,
    /// Halo payload this SpMV moved, from the exchange report.
    pub halo_bytes: u64,
    /// The same payload re-summed from the trace ledger's `halo_*`
    /// transfer spans (asserted equal before the row is emitted).
    pub ledger_halo_bytes: u64,
    /// Completion of the last halo transfer, milliseconds.
    pub exchange_ms: f64,
    /// Milliseconds the exchange extended past compute (0 when hidden).
    pub exchange_tail_ms: f64,
    pub replicated_rows: usize,
}

/// The per-shard format choices at D = 8 under the adaptive selector.
pub struct FormatsSection {
    pub matrix: String,
    pub devices: usize,
    /// Amortization horizon handed to the selector.
    pub horizon: u64,
    /// Format each shard planned ("-" for an empty shard).
    pub shards: Vec<String>,
    /// Distinct formats across non-empty shards.
    pub distinct: usize,
}

/// One serving trace under one dispatch policy.
pub struct StealRow {
    /// `narrow_rowsplit`, `narrow_auto`, `wide_rowsplit`, `wide_auto`.
    pub name: String,
    pub queries: usize,
    pub waves: usize,
    /// Waves executed query-split (stolen onto replicated devices).
    pub stolen_waves: usize,
    /// Fraction of offered queries completing within the p99 target.
    pub attainment: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub mean_wave_width: f64,
}

/// Full report of one fleet run.
pub struct Report {
    /// Suite scale divisor the scaling matrices were generated at.
    pub scale: usize,
    pub scaling: Vec<ScalingRow>,
    pub formats: FormatsSection,
    /// The latency target the stealing attainment column is scored
    /// against (midpoint of the two narrow-trace p99s), milliseconds.
    pub p99_target_ms: f64,
    pub stealing: Vec<StealRow>,
}

/// Run one traced fleet SpMV and reconcile its halo ledger: the
/// `halo_*` transfer spans must carry exactly the exchange report's
/// bytes and durations, edge for edge.
fn traced_fleet_spmv(m: &sparse_formats::CsrMatrix<f64>, cfg: &FleetConfig) -> (FleetReport, u64) {
    let mut fleet = Fleet::new(m, &presets::tesla_k10_single(), cfg);
    let ledger = fleet.enable_tracing();
    let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
    let mut y = vec![0.0f64; m.rows()];
    let rep = fleet.spmv(&x, &mut y);
    ledger
        .reconcile()
        .unwrap_or_else(|e| panic!("fleet trace ledger failed reconciliation: {e}"));
    // Per-edge reconciliation, bytes integer-exact and durations
    // bit-exact: the ledger's halo transfer spans against the schedule.
    let mut from_ledger: Vec<(String, u64, u64)> = ledger
        .spans()
        .iter()
        .filter(|s| s.name.starts_with("halo_"))
        .map(|s| (s.name.clone(), s.counters.htod_bytes, s.dur_s.to_bits()))
        .collect();
    let mut from_report: Vec<(String, u64, u64)> = rep
        .exchange
        .transfers
        .iter()
        .map(|t| {
            (
                format!("halo_{}to{}", t.src, t.dst),
                t.bytes,
                t.dur_s().to_bits(),
            )
        })
        .collect();
    from_ledger.sort();
    from_report.sort();
    assert_eq!(
        from_ledger, from_report,
        "halo transfer spans drifted from the exchange schedule"
    );
    let ledger_halo_bytes: u64 = from_ledger.iter().map(|(_, b, _)| b).sum();
    assert_eq!(
        ledger_halo_bytes,
        rep.halo_bytes(),
        "ledger halo bytes must equal the exchange report's"
    );
    (rep, ledger_halo_bytes)
}

fn scaling_rows(specs: &[&'static MatrixSpec], scale: usize, seed: u64) -> Vec<ScalingRow> {
    let mut out = Vec::new();
    for spec in specs {
        let m = spec.generate::<f64>(scale, seed).csr;
        let flops = 2 * m.nnz() as u64;
        let mut base_seconds = 0.0f64;
        for d in DEVICE_COUNTS {
            let (rep, ledger_halo_bytes) = traced_fleet_spmv(&m, &FleetConfig::nvlink(d));
            let seconds = rep.seconds();
            if d == 1 {
                base_seconds = seconds;
            }
            let speedup = base_seconds / seconds;
            out.push(ScalingRow {
                name: format!("{}_d{d}", spec.abbrev),
                matrix: spec.abbrev.to_string(),
                devices: d,
                rows: m.rows(),
                nnz: m.nnz(),
                seconds,
                speedup,
                efficiency: speedup / d as f64,
                gflops: rep.gflops(flops),
                halo_bytes: rep.halo_bytes(),
                ledger_halo_bytes,
                exchange_ms: rep.exchange.end_s() * 1e3,
                exchange_tail_ms: rep.exchange_tail_s() * 1e3,
                replicated_rows: rep.replicated_rows,
            });
        }
    }
    out
}

fn formats_section(spec: &'static MatrixSpec, scale: usize, seed: u64) -> FormatsSection {
    const DEVICES: usize = 8;
    const HORIZON: u64 = 1000;
    let m = spec.generate::<f64>(scale, seed).csr;
    let mut cfg = FleetConfig::new(DEVICES);
    cfg.format = ShardFormat::Adaptive { horizon: HORIZON };
    let fleet = Fleet::new(&m, &presets::tesla_k10_single(), &cfg);
    let shards: Vec<String> = fleet.formats().to_vec();
    let mut distinct: Vec<&String> = shards.iter().filter(|f| *f != "-").collect();
    distinct.sort();
    distinct.dedup();
    FormatsSection {
        matrix: spec.abbrev.to_string(),
        devices: DEVICES,
        horizon: HORIZON,
        distinct: distinct.len(),
        shards,
    }
}

fn steal_row(name: &str, report: &ServeReport<f64>, target_s: f64) -> StealRow {
    let lat = report.latency_stats();
    StealRow {
        name: name.to_string(),
        queries: report.offered,
        waves: report.waves,
        stolen_waves: report.stolen_waves(),
        attainment: report.attainment(target_s),
        p50_ms: lat.p50_s * 1e3,
        p99_ms: lat.p99_s * 1e3,
        mean_wave_width: report.mean_wave_width(),
    }
}

/// RowSplit vs Auto on a sparse (width-1 waves) and a saturated
/// (full-width waves) trace; asserts Auto is never worse and strictly
/// faster on the sparse trace.
fn stealing_section(quick: bool) -> (f64, Vec<StealRow>) {
    let rows = if quick { 400 } else { 800 };
    let g = generate_power_law::<f64>(&PowerLawConfig {
        rows,
        cols: rows,
        mean_degree: 6.0,
        max_degree: 120,
        pinned_max_rows: 1,
        col_skew: 0.4,
        seed: 213,
        ..Default::default()
    });
    let config = ServeConfig {
        max_batch: 8,
        queue_capacity: 64,
        n_devices: 4,
        ..ServeConfig::default()
    };
    // Sparse: arrivals a full second apart against a microsecond-scale
    // service time — every wave is width 1, the exact shape where
    // row-splitting underfeeds all four devices and pays the sync.
    let narrow: Vec<Query> = (0..8)
        .map(|id| Query {
            id,
            seed: (id as usize * 31) % rows,
            restart_c: 0.85,
            arrival_s: id as f64,
            tenant: 0,
        })
        .collect();
    // Saturated: one burst fills every wave to the cap, where
    // row-splitting is the right call and Auto must not steal.
    let wide: Vec<Query> = (0..32)
        .map(|id| Query {
            id,
            seed: (id as usize * 13 + 5) % rows,
            restart_c: 0.85,
            arrival_s: 0.0,
            tenant: 0,
        })
        .collect();
    let run = |queries: &[Query], dispatch| {
        let engine = ServeEngine::<f64>::new(&g, config.clone());
        engine.serve_slo(
            queries,
            &SloPolicy::open_loop(f64::INFINITY, 8, 64).with_dispatch(dispatch),
        )
    };
    let narrow_rs = run(&narrow, DispatchPolicy::RowSplit);
    let narrow_auto = run(&narrow, DispatchPolicy::Auto);
    let wide_rs = run(&wide, DispatchPolicy::RowSplit);
    let wide_auto = run(&wide, DispatchPolicy::Auto);

    // Score attainment against the midpoint of the two narrow p99s: a
    // target the stolen trace meets and the row-split trace misses.
    let p99 = |r: &ServeReport<f64>| r.latency_stats().p99_s;
    let target_s = 0.5 * (p99(&narrow_rs) + p99(&narrow_auto));
    assert!(
        p99(&narrow_auto) < p99(&narrow_rs),
        "stealing must cut the narrow trace's p99: auto {} vs row-split {}",
        p99(&narrow_auto),
        p99(&narrow_rs)
    );
    assert_eq!(
        narrow_auto.stolen_waves(),
        narrow_auto.waves,
        "every narrow wave must steal"
    );
    assert!(
        narrow_auto.attainment(target_s) > narrow_rs.attainment(target_s),
        "stealing must strictly improve narrow-trace attainment"
    );
    assert!(
        wide_auto.attainment(target_s) >= wide_rs.attainment(target_s),
        "Auto must never lose attainment on the saturated trace"
    );
    let rows = vec![
        steal_row("narrow_rowsplit", &narrow_rs, target_s),
        steal_row("narrow_auto", &narrow_auto, target_s),
        steal_row("wide_rowsplit", &wide_rs, target_s),
        steal_row("wide_auto", &wide_auto, target_s),
    ];
    (target_s * 1e3, rows)
}

/// Run the full fleet bench. `quick` shrinks the matrix subset and
/// scale for CI smoke runs — same schema, same reconciliation, still
/// fully deterministic.
pub fn run(quick: bool) -> Report {
    let (abbrevs, scale): (&[&str], usize) = if quick {
        (&["ENR", "LJ2"], 512)
    } else {
        (&["ENR", "CNR", "EU2", "LJ2"], 64)
    };
    let seed = 1u64;
    let specs: Vec<&'static MatrixSpec> = abbrevs
        .iter()
        .map(|a| MatrixSpec::by_abbrev(a).expect("known abbreviation"))
        .collect();
    let scaling = scaling_rows(&specs, scale, seed);
    let formats = formats_section(specs[specs.len() - 1], scale, seed);
    let (p99_target_ms, stealing) = stealing_section(quick);
    Report {
        scale,
        scaling,
        formats,
        p99_target_ms,
        stealing,
    }
}

fn scaling_json(rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"matrix\": \"{}\", \"devices\": {}, \"rows\": {}, \
             \"nnz\": {}, \"seconds\": {:.9}, \"speedup\": {:.4}, \"efficiency\": {:.4}, \
             \"gflops\": {:.4}, \"halo_bytes\": {}, \"ledger_halo_bytes\": {}, \
             \"exchange_ms\": {:.6}, \"exchange_tail_ms\": {:.6}, \"replicated_rows\": {}}}",
            r.name,
            r.matrix,
            r.devices,
            r.rows,
            r.nnz,
            r.seconds,
            r.speedup,
            r.efficiency,
            r.gflops,
            r.halo_bytes,
            r.ledger_halo_bytes,
            r.exchange_ms,
            r.exchange_tail_ms,
            r.replicated_rows,
        ));
    }
    out
}

fn stealing_json(rows: &[StealRow]) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"queries\": {}, \"waves\": {}, \"stolen_waves\": {}, \
             \"attainment\": {:.4}, \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \
             \"mean_wave_width\": {:.3}}}",
            r.name,
            r.queries,
            r.waves,
            r.stolen_waves,
            r.attainment,
            r.p50_ms,
            r.p99_ms,
            r.mean_wave_width,
        ));
    }
    out
}

/// Serialize under the `acsr-fleet-v1` schema.
pub fn to_json(report: &Report) -> String {
    let shards = report
        .formats
        .shards
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let counts = DEVICE_COUNTS
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"bench\": \"fleet_scaling\",\n  \
         \"scale\": {},\n  \"link\": \"nvlink\",\n  \"device_counts\": [{counts}],\n  \
         \"scaling\": [\n{}\n  ],\n  \
         \"formats\": {{\"matrix\": \"{}\", \"devices\": {}, \"horizon\": {}, \
         \"distinct\": {}, \"shards\": [{shards}]}},\n  \
         \"p99_target_ms\": {:.6},\n  \"stealing\": [\n{}\n  ]\n}}\n",
        report.scale,
        scaling_json(&report.scaling),
        report.formats.matrix,
        report.formats.devices,
        report.formats.horizon,
        report.formats.distinct,
        report.p99_target_ms,
        stealing_json(&report.stealing),
    )
}

/// Write the artifact to `results/BENCH_fleet.json` (resolved from the
/// workspace root or a crate dir) and return the path written.
pub fn write(report: &Report) -> std::io::Result<String> {
    let dir = if std::path::Path::new("results").is_dir() {
        std::path::PathBuf::from("results")
    } else {
        std::path::PathBuf::from("../../results")
    };
    let path = dir.join("BENCH_fleet.json");
    std::fs::write(&path, to_json(report))?;
    Ok(path.display().to_string())
}

/// Human-readable tables.
pub fn render(report: &Report) -> String {
    let mut scaling = crate::Table::new(&[
        "matrix", "D", "wall", "speedup", "eff", "GFLOP/s", "halo KiB", "exch ms", "tail ms",
        "repl",
    ]);
    for r in &report.scaling {
        scaling.row(vec![
            r.matrix.clone(),
            r.devices.to_string(),
            crate::common::fmt_secs(r.seconds),
            format!("{:.2}x", r.speedup),
            format!("{:.2}", r.efficiency),
            format!("{:.2}", r.gflops),
            format!("{:.1}", r.halo_bytes as f64 / 1024.0),
            format!("{:.4}", r.exchange_ms),
            format!("{:.4}", r.exchange_tail_ms),
            r.replicated_rows.to_string(),
        ]);
    }
    let mut stealing = crate::Table::new(&[
        "trace", "queries", "waves", "stolen", "att", "p50 ms", "p99 ms", "width",
    ]);
    for r in &report.stealing {
        stealing.row(vec![
            r.name.clone(),
            r.queries.to_string(),
            r.waves.to_string(),
            r.stolen_waves.to_string(),
            format!("{:.3}", r.attainment),
            format!("{:.4}", r.p50_ms),
            format!("{:.4}", r.p99_ms),
            format!("{:.1}", r.mean_wave_width),
        ]);
    }
    format!(
        "Fleet scaling (scale {}, NVLink-class links, halo ledger reconciled)\n{}\n\
         per-shard formats ({} at D = {}, horizon {}): {:?} ({} distinct)\n\n\
         wave dispatch: row-split vs auto stealing (p99 target {:.4} ms)\n{}",
        report.scale,
        scaling.render(),
        report.formats.matrix,
        report.formats.devices,
        report.formats.horizon,
        report.formats.shards,
        report.formats.distinct,
        report.p99_target_ms,
        stealing.render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick run is what CI smokes and gates; pin its acceptance
    /// shape here so a drive-by change can't silently produce a
    /// degenerate artifact. (The section-level invariants — ledger
    /// reconciliation, stealing superiority — are asserted inside
    /// `run` itself and die on violation.)
    #[test]
    fn quick_run_produces_scaling_and_stealing_sections() {
        let report = run(true);
        assert_eq!(report.scaling.len(), 2 * DEVICE_COUNTS.len());
        for r in &report.scaling {
            assert!(r.seconds > 0.0, "{}: degenerate wall time", r.name);
            assert_eq!(
                r.halo_bytes, r.ledger_halo_bytes,
                "{}: ledger drifted",
                r.name
            );
            if r.devices == 1 {
                assert_eq!(r.halo_bytes, 0, "{}: single device has no halo", r.name);
                assert!((r.speedup - 1.0).abs() < 1e-12);
            } else {
                assert!(r.halo_bytes > 0, "{}: sharding must exchange", r.name);
            }
            for v in [r.seconds, r.speedup, r.efficiency, r.gflops, r.exchange_ms] {
                assert!(v.is_finite(), "{}: non-finite metric {v}", r.name);
            }
        }
        // The largest matrix must actually scale at D = 2: its compute
        // dominates the microsecond-class halo exchange.
        let lj2_d2 = report.scaling.iter().find(|r| r.name == "LJ2_d2").unwrap();
        assert!(
            lj2_d2.speedup > 1.0,
            "LJ2 at D=2 must beat one device, got {:.3}x",
            lj2_d2.speedup
        );
        // Format section covers all 8 shards.
        assert_eq!(report.formats.shards.len(), 8);
        assert!(report.formats.distinct >= 1);
        // Stealing: the narrow auto trace steals every wave and wins.
        let get = |n: &str| report.stealing.iter().find(|r| r.name == n).unwrap();
        assert_eq!(get("narrow_auto").stolen_waves, get("narrow_auto").waves);
        assert_eq!(get("narrow_rowsplit").stolen_waves, 0);
        assert!(get("narrow_auto").attainment > get("narrow_rowsplit").attainment);
        assert!(get("wide_auto").attainment >= get("wide_rowsplit").attainment);
        assert!(
            get("wide_auto").p99_ms <= get("wide_rowsplit").p99_ms,
            "Auto's per-wave choice must not regress the saturated p99"
        );

        // JSON round-trips under the shim parser.
        let json = to_json(&report);
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let serde::Value::Object(entries) = &v else {
            panic!("not an object")
        };
        let get = |k: &str| entries.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        assert!(matches!(get("schema"), Some(serde::Value::Str(s)) if s == SCHEMA));
        assert!(matches!(get("scaling"), Some(serde::Value::Array(a))
            if a.len() == report.scaling.len()));
        assert!(matches!(get("stealing"), Some(serde::Value::Array(a)) if a.len() == 4));
        assert!(matches!(get("formats"), Some(serde::Value::Object(_))));
    }
}
