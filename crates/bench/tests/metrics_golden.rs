//! Golden-file test for the `acsr-metrics-v1` snapshot artifact: a
//! fixed small serve scenario must render byte-identically — the file
//! is parsed by `repro check-artifacts` and diffed by CI baselines, so
//! format drift (entry order, float formatting, bucket layout) should
//! fail loudly, not silently reshape downstream tooling's input.
//!
//! Regenerate after an intentional schema change with
//! `ACSR_REGEN_GOLDEN=1 cargo test -p repro-bench --test metrics_golden`.

use acsr_serve::{Query, ServeConfig, ServeEngine};
use acsr_telemetry::Telemetry;
use gpu_sim::set_sim_threads;
use graphgen::{generate_power_law, PowerLawConfig};
use std::sync::{Arc, Mutex};

/// `set_sim_threads` is process-global.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn metrics_json_matches_golden_file() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    set_sim_threads(1);
    let g = generate_power_law::<f64>(&PowerLawConfig {
        rows: 300,
        cols: 300,
        mean_degree: 6.0,
        max_degree: 64,
        pinned_max_rows: 1,
        col_skew: 0.4,
        seed: 42,
        ..Default::default()
    });
    let mut engine = ServeEngine::new(
        &g,
        ServeConfig {
            max_batch: 2,
            queue_capacity: 2,
            n_devices: 2,
            ..ServeConfig::default()
        },
    );
    let tel = Arc::new(Telemetry::new());
    engine.attach_telemetry(tel.clone());
    // 6 simultaneous two-tenant arrivals into 2 slots + 2 queue places:
    // completions AND capacity sheds, so the snapshot carries counters,
    // gauges (attainment, device utilization), and histograms at once.
    let queries: Vec<Query> = (0..6)
        .map(|id| Query {
            id,
            seed: (id as usize * 17) % 300,
            restart_c: 0.85,
            arrival_s: 0.0,
            tenant: (id % 2) as u32,
        })
        .collect();
    let report = engine.serve(&queries);
    set_sim_threads(0);
    assert!(!report.outcomes.is_empty() && !report.rejected.is_empty());

    let json = tel.metrics.snapshot().to_json();
    serde_json::validate(&json).expect("metrics artifact must be valid JSON");
    assert!(json.starts_with("{\"schema\":\"acsr-metrics-v1\""));

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/METRICS_serve_small.json"
    );
    if std::env::var("ACSR_REGEN_GOLDEN").is_ok() {
        std::fs::write(path, &json).expect("write golden");
        eprintln!("regenerated {path}");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("read golden metrics snapshot");
    assert_eq!(
        json, golden,
        "METRICS json drifted from tests/golden/METRICS_serve_small.json \
         (regenerate with ACSR_REGEN_GOLDEN=1 if intentional)"
    );
}
