//! Acceptance tests for the per-kernel profiler, pinning the paper's
//! §II microarchitectural claims as *derived-metric* facts:
//!
//! * ACSR's binned kernels waste fewer SIMT lanes than the CSR-vector
//!   baseline on a power-law matrix (strictly higher warp execution
//!   efficiency) — the whole point of adaptive binning.
//! * Every SpMV kernel sits far left of the roofline ridge on all three
//!   Table II presets: memory-bound, never compute-bound.
//! * The `PROFILE_*.json` artifact is byte-stable (golden file) and the
//!   `bench-diff` gate fails exactly when a metric regresses.

use acsr::{AcsrConfig, AcsrEngine, PhaseRollup};
use gpu_sim::profile::{ProfileReport, Roofline};
use gpu_sim::{presets, set_sim_threads, Counters, Device};
use graphgen::{generate_power_law, PowerLawConfig};
use sparse_formats::CsrMatrix;
use spmv_kernels::csr_vector::CsrVector;
use spmv_kernels::{DevCsr, GpuSpmv};
use std::sync::Mutex;

/// `set_sim_threads` is process-global.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn power_law_matrix(seed: u64) -> CsrMatrix<f64> {
    generate_power_law(&PowerLawConfig {
        rows: 4000,
        cols: 4000,
        mean_degree: 16.0,
        max_degree: 1024,
        seed,
        ..Default::default()
    })
}

/// Run one engine's SpMV under a per-device ledger and profile it.
fn profiled_spmv(cfg: gpu_sim::DeviceConfig, m: &CsrMatrix<f64>, which: &str) -> ProfileReport {
    let mut dev = Device::new(cfg);
    let ledger = dev.enable_tracing();
    let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let xd = dev.alloc(x);
    let yd = dev.alloc_zeroed::<f64>(m.rows());
    match which {
        "csr_vector" => {
            CsrVector::new(DevCsr::upload(&dev, m)).spmv(&dev, &xd, &yd);
        }
        "acsr" => {
            let eng = AcsrEngine::from_csr(&dev, m, AcsrConfig::for_device(dev.config()));
            eng.spmv(&dev, &xd, &yd);
        }
        other => panic!("unknown engine {other}"),
    }
    ledger.reconcile().expect("ledger reconciles");
    let configs = repro_bench::profile::known_configs();
    let report = ProfileReport::from_spans(&ledger.spans(), &configs);
    report.reconcile().expect("profile reconciles");
    report
}

fn weff_of(counters: &Counters) -> f64 {
    counters
        .warp_execution_efficiency()
        .expect("kernel issued warp instructions")
}

/// §II / Figure 2: binning removes the SIMT-lane waste CSR-vector pays
/// on short power-law rows.
#[test]
fn acsr_bins_beat_csr_vector_warp_efficiency() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let m = power_law_matrix(7);
    let csr = profiled_spmv(presets::gtx_titan(), &m, "csr_vector");
    let csr_row = csr
        .rows
        .iter()
        .find(|r| r.name == "csr_vector")
        .expect("csr_vector row");
    let csr_weff = weff_of(&csr_row.counters);

    let acsr = profiled_spmv(presets::gtx_titan(), &m, "acsr");
    let mut bin_counters = Counters::default();
    let mut bins = 0;
    for row in acsr
        .rows
        .iter()
        .filter(|r| r.is_counted() && r.name.starts_with("acsr_bin"))
    {
        bin_counters.merge(&row.counters);
        bins += 1;
    }
    assert!(bins >= 2, "power-law matrix should populate several bins");
    let bin_weff = weff_of(&bin_counters);
    assert!(
        bin_weff > csr_weff,
        "binned kernels must waste fewer lanes: ACSR bins {bin_weff:.4} \
         vs csr_vector {csr_weff:.4}"
    );
}

/// §II: SpMV's arithmetic intensity (~2 flops per matrix byte) is far
/// below every preset's ridge point, so every flop-carrying kernel row
/// classifies memory-bound on the roofline — on all three devices.
#[test]
fn spmv_is_memory_bound_on_every_preset() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let m = power_law_matrix(11);
    for cfg in [
        presets::gtx_580(),
        presets::tesla_k10_single(),
        presets::gtx_titan(),
    ] {
        for which in ["csr_vector", "acsr"] {
            let report = profiled_spmv(cfg.clone(), &m, which);
            let mut checked = 0;
            for row in report.rows.iter().filter(|r| r.counters.flops > 0) {
                assert_eq!(
                    row.metrics.roofline,
                    Some(Roofline::MemoryBound),
                    "{which}/{} on {} must be roofline-memory-bound \
                     (AI {:?} flop/B)",
                    row.name,
                    cfg.name,
                    row.metrics.arithmetic_intensity,
                );
                checked += 1;
            }
            assert!(checked > 0, "{which} on {} had no flop rows", cfg.name);
        }
    }
}

/// Golden-file test for the `acsr-profile-v1` JSON artifact: a fixed
/// scenario must render byte-identically — the file is parsed by
/// `bench-diff` and CI baselines, so format drift should fail loudly.
///
/// Regenerate after an intentional schema change with
/// `ACSR_REGEN_GOLDEN=1 cargo test -p repro-bench --test profile_acceptance`.
#[test]
fn profile_json_matches_golden_file() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    set_sim_threads(1);
    let mut dev = Device::new(presets::gtx_titan());
    let ledger = dev.enable_tracing();
    let m = generate_power_law::<f64>(&PowerLawConfig {
        rows: 600,
        cols: 600,
        mean_degree: 8.0,
        max_degree: 256,
        seed: 42,
        ..Default::default()
    });
    let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 5) as f64 * 0.2).collect();
    let xd = dev.alloc(x);
    let yd = dev.alloc_zeroed::<f64>(m.rows());
    let eng = AcsrEngine::from_csr(&dev, &m, AcsrConfig::for_device(dev.config()));
    eng.spmv(&dev, &xd, &yd);
    set_sim_threads(0);
    ledger.reconcile().expect("ledger reconciles");

    let spans = ledger.spans();
    let report = ProfileReport::from_spans(&spans, &repro_bench::profile::known_configs());
    report.reconcile().expect("profile reconciles");
    let json =
        repro_bench::profile::render_json("golden", &report, &PhaseRollup::from_spans(&spans));
    serde_json::validate(&json).expect("profile artifact must be valid JSON");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/profile_small.json"
    );
    if std::env::var("ACSR_REGEN_GOLDEN").is_ok() {
        std::fs::write(path, &json).expect("write golden");
        eprintln!("regenerated {path}");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("read golden profile");
    assert_eq!(
        json, golden,
        "PROFILE json drifted from tests/golden/profile_small.json \
         (regenerate with ACSR_REGEN_GOLDEN=1 if intentional)"
    );
}

/// End-to-end `bench-diff` gate through the real binary: equal reports
/// pass (exit 0), an inflated baseline — claiming more GFLOP/s and less
/// time than the new run delivers — fails (exit 1), garbage exits 2.
#[test]
fn bench_diff_cli_exit_codes() {
    let dir = std::env::temp_dir().join(format!("acsr_bench_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let write = |name: &str, time: f64, gflops: f64| {
        let path = dir.join(name);
        std::fs::write(
            &path,
            format!(
                "{{\"kernels\":[{{\"name\":\"csr_vector\",\"time_s\":{time:?},\
                 \"metrics\":{{\"achieved_gflops\":{gflops:?}}}}}]}}"
            ),
        )
        .expect("write temp json");
        path
    };
    let base = write("base.json", 1.0, 5.0);
    let same = write("same.json", 1.02, 5.0);
    let slower = write("slower.json", 1.5, 3.0);
    let run = |a: &std::path::Path, b: &std::path::Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["bench-diff", a.to_str().unwrap(), b.to_str().unwrap()])
            .output()
            .expect("run repro bench-diff")
    };
    let ok = run(&base, &same);
    assert_eq!(ok.status.code(), Some(0), "{:?}", ok);
    assert!(String::from_utf8_lossy(&ok.stdout).contains("PASS"));

    let bad = run(&base, &slower);
    assert_eq!(bad.status.code(), Some(1), "{:?}", bad);
    let out = String::from_utf8_lossy(&bad.stdout);
    assert!(out.contains("REGRESSION") && out.contains("FAIL"), "{out}");

    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{not json").expect("write garbage");
    let err = run(&base, &garbage);
    assert_eq!(err.status.code(), Some(2), "{:?}", err);
    let _ = std::fs::remove_dir_all(&dir);
}
