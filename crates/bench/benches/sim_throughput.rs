//! Host-side parallel-simulation throughput: simulated kernel launches
//! per second at 1/2/4/8 worker threads (the `ACSR_SIM_THREADS` knob /
//! [`gpu_sim::set_sim_threads`]) for each SpMV engine. Every width
//! computes bit-identical reports, so this measures pure host mechanism.
//!
//! The workload set, sweep, and artifact format live in
//! [`repro_bench::simbench`] (shared with `repro simbench` and the CI
//! smoke). Besides the Criterion group, the bench runs the full sweep
//! and writes `results/BENCH_sim_throughput.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::set_sim_threads;
use repro_bench::simbench;

fn bench_sim_throughput(c: &mut Criterion) {
    let workloads = simbench::workloads();
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1)); // elements = simulated launches
    for w in &workloads {
        for threads in simbench::WIDTHS {
            g.bench_with_input(
                BenchmarkId::new(w.kernel, threads),
                &threads,
                |b, &threads| {
                    set_sim_threads(threads);
                    b.iter(|| w.launch());
                    set_sim_threads(0);
                },
            );
        }
    }
    g.finish();
    drop(workloads);

    // Direct timing pass (independent of Criterion's reporting) that
    // records the machine-readable artifact the experiment log keeps.
    let report = simbench::run(false);
    match simbench::write(&report) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write BENCH_sim_throughput.json: {e}"),
    }
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
