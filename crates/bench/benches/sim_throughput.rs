//! Host-side parallel-simulation throughput: simulated kernel launches
//! per second at 1/2/4/8 worker threads (the `ACSR_SIM_THREADS` knob /
//! [`gpu_sim::set_sim_threads`]). The workload is a realistic CSR-vector
//! SpMV launch on a power-law matrix — every width computes bit-identical
//! reports, so this measures pure host mechanism.
//!
//! Besides the Criterion group, the bench writes
//! `results/BENCH_sim_throughput.json` with launches/sec per width, the
//! speedup over sequential, and `host_cores` (speedups are bounded by
//! the physical cores of the machine that produced the file).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::{presets, set_sim_threads, Device, DeviceBuffer};
use graphgen::{generate_power_law, PowerLawConfig};
use spmv_kernels::{csr_vector::CsrVector, DevCsr, GpuSpmv};
use std::time::Instant;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

struct Workload {
    dev: Device,
    eng: CsrVector<f64>,
    x: DeviceBuffer<f64>,
    y: DeviceBuffer<f64>,
}

fn workload() -> Workload {
    let m = generate_power_law(&PowerLawConfig {
        rows: 20_000,
        cols: 20_000,
        mean_degree: 12.0,
        max_degree: 4_000,
        pinned_max_rows: 2,
        col_skew: 0.4,
        seed: 7,
        ..Default::default()
    });
    let dev = Device::new(presets::gtx_titan());
    let eng = CsrVector::new(DevCsr::upload(&dev, &m));
    let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let x = dev.alloc(x);
    let y = dev.alloc_zeroed::<f64>(m.rows());
    Workload { dev, eng, x, y }
}

fn bench_sim_throughput(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1)); // elements = simulated launches
    for threads in WIDTHS {
        g.bench_with_input(
            BenchmarkId::new("workers", threads),
            &threads,
            |b, &threads| {
                set_sim_threads(threads);
                b.iter(|| w.eng.spmv(&w.dev, &w.x, &w.y));
                set_sim_threads(0);
            },
        );
    }
    g.finish();
    write_results_json(&w);
}

/// Direct timing pass (independent of Criterion's reporting) that records
/// the machine-readable artifact the repo's experiment log keeps.
fn write_results_json(w: &Workload) {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let measure = |threads: usize| {
        set_sim_threads(threads);
        // warmup
        for _ in 0..2 {
            w.eng.spmv(&w.dev, &w.x, &w.y);
        }
        let start = Instant::now();
        let mut launches = 0u32;
        while launches < 10 || start.elapsed().as_secs_f64() < 0.5 {
            w.eng.spmv(&w.dev, &w.x, &w.y);
            launches += 1;
        }
        set_sim_threads(0);
        launches as f64 / start.elapsed().as_secs_f64()
    };
    let rates: Vec<f64> = WIDTHS.iter().map(|&t| measure(t)).collect();
    let mut entries = String::new();
    for (i, (&threads, rate)) in WIDTHS.iter().zip(&rates).enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workers\": {threads}, \"launches_per_sec\": {rate:.2}, \"speedup_vs_seq\": {:.3}}}",
            rate / rates[0]
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"kernel\": \"csr_vector spmv, 20k rows power-law\",\n  \"host_cores\": {host_cores},\n  \"widths\": [\n{entries}\n  ]\n}}\n"
    );
    let path = std::path::Path::new("results").join("BENCH_sim_throughput.json");
    // Bench may run from the crate dir or the workspace root.
    let path = if std::path::Path::new("results").is_dir() {
        path
    } else {
        std::path::Path::new("../../results").join("BENCH_sim_throughput.json")
    };
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
