//! Batched serving throughput: modeled queries/sec and SpMV GFLOPS of
//! the continuous-batching RWR scheduler at batch widths k ∈ {1, 4, 16,
//! 64} on the GTX Titan preset (saturated Poisson load). The Criterion
//! group measures host wall-clock per served stream; the modeled
//! numbers — the experiment's actual deliverable — are written to
//! `results/BENCH_serve.json` together with `host_cores` (host wall
//! times depend on the machine that produced the file; the modeled
//! queries/sec do not).

use acsr_serve::{ArrivalPattern, ServeConfig, ServeEngine, ServeReport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphgen::{generate_power_law, PowerLawConfig};

const BATCH_WIDTHS: [usize; 4] = [1, 4, 16, 64];
const N_QUERIES: usize = 64;

fn graph() -> sparse_formats::CsrMatrix<f64> {
    generate_power_law(&PowerLawConfig {
        rows: 4096,
        cols: 4096,
        mean_degree: 8.0,
        max_degree: 1400,
        pinned_max_rows: 2,
        col_skew: 0.5,
        seed: 29,
        ..Default::default()
    })
}

fn serve_stream(g: &sparse_formats::CsrMatrix<f64>, max_batch: usize) -> ServeReport<f64> {
    let engine = ServeEngine::new(
        g,
        ServeConfig {
            max_batch,
            queue_capacity: 2 * N_QUERIES,
            ..ServeConfig::default()
        },
    );
    engine.serve_generated(
        ArrivalPattern::Poisson { rate_qps: 2e5 },
        N_QUERIES,
        0.85,
        29,
    )
}

fn bench_serve_throughput(c: &mut Criterion) {
    let g = graph();
    let mut grp = c.benchmark_group("serve_throughput");
    grp.sample_size(10);
    grp.throughput(Throughput::Elements(N_QUERIES as u64));
    for k in BATCH_WIDTHS {
        grp.bench_with_input(BenchmarkId::new("max_batch", k), &k, |b, &k| {
            b.iter(|| serve_stream(&g, k));
        });
    }
    grp.finish();
    write_results_json(&g);
}

/// Machine-readable artifact for the repo's experiment log.
fn write_results_json(g: &sparse_formats::CsrMatrix<f64>) {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut entries = String::new();
    for (i, &k) in BATCH_WIDTHS.iter().enumerate() {
        let report = serve_stream(g, k);
        let lat = report.latency_stats();
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"max_batch\": {k}, \"completed\": {}, \"queries_per_sec\": {:.1}, \
             \"gflops\": {:.3}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"waves\": {}}}",
            report.outcomes.len(),
            report.throughput_qps(),
            report.gflops(),
            lat.p50_s * 1e3,
            lat.p99_s * 1e3,
            report.waves,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"workload\": \"{N_QUERIES} RWR queries, \
         saturated Poisson, 4096-row power-law, GTX Titan\",\n  \"host_cores\": {host_cores},\n  \
         \"batch_widths\": [\n{entries}\n  ]\n}}\n"
    );
    let path = std::path::Path::new("results").join("BENCH_serve.json");
    // Bench may run from the crate dir or the workspace root.
    let path = if std::path::Path::new("results").is_dir() {
        path
    } else {
        std::path::Path::new("../../results").join("BENCH_serve.json")
    };
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
