//! Wall-clock preprocessing cost per format — the hardware-measured
//! counterpart of Figure 4. ACSR's binning must be orders of magnitude
//! cheaper than any transformation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::MatrixSpec;
use sparse_formats::{
    BccooConfig, BccooMatrix, BrcMatrix, CooMatrix, CsrMatrix, HybMatrix, TcooMatrix,
};

fn suite(abbrev: &str) -> CsrMatrix<f64> {
    MatrixSpec::by_abbrev(abbrev)
        .unwrap()
        .generate::<f64>(64, 1)
        .csr
}

fn bench_preprocessing(c: &mut Criterion) {
    let mut g = c.benchmark_group("preprocessing");
    g.sample_size(10);
    for abbrev in ["ENR", "EU2"] {
        let m = suite(abbrev);

        g.bench_with_input(BenchmarkId::new("acsr_binning", abbrev), &m, |b, m| {
            b.iter(|| {
                let cfg = acsr::AcsrConfig::static_long_tail();
                acsr::Binning::build((0..m.rows()).map(|r| m.row_nnz(r)), &cfg)
            });
        });
        g.bench_with_input(BenchmarkId::new("to_coo", abbrev), &m, |b, m| {
            b.iter(|| CooMatrix::from_csr(m));
        });
        g.bench_with_input(BenchmarkId::new("to_hyb", abbrev), &m, |b, m| {
            b.iter(|| HybMatrix::from_csr(m, usize::MAX).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("to_brc", abbrev), &m, |b, m| {
            b.iter(|| BrcMatrix::from_csr(m, usize::MAX).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("to_tcoo_16tiles", abbrev), &m, |b, m| {
            b.iter(|| TcooMatrix::from_csr(m, 16, usize::MAX).unwrap());
        });
        g.bench_with_input(
            BenchmarkId::new("to_bccoo_one_config", abbrev),
            &m,
            |b, m| {
                b.iter(|| BccooMatrix::from_csr(m, BccooConfig::default(), usize::MAX).unwrap());
            },
        );
        // NOTE: the full BCCOO auto-tune multiplies the one-config cost by
        // its >300-configuration search; benched once per run here.
    }
    g.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
