//! §VIII partitioning costs: the per-bin round-robin split must stay a
//! cheap linear pass even at large row counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphgen::{generate_power_law, PowerLawConfig};
use multi_gpu::partition_rows_by_bins;

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("multigpu_partition");
    for rows in [50_000usize, 500_000] {
        let m = generate_power_law::<f64>(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 10.0,
            max_degree: rows / 16,
            pinned_max_rows: 2,
            col_skew: 0.4,
            seed: 3,
            ..Default::default()
        });
        g.throughput(Throughput::Elements(rows as u64));
        for devices in [2usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("{devices}_devices"), rows),
                &m,
                |b, m| {
                    b.iter(|| partition_rows_by_bins(m, devices));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
