//! Dynamic-update path costs: generating a §VII batch, applying it on
//! the host, and the rebuild alternative — the measured counterpart of
//! Figure 7's maintenance overheads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::{generate_update_batch, MatrixSpec, UpdateConfig};
use sparse_formats::TripletMatrix;

fn bench_dynamic(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamic_update");
    g.sample_size(10);
    for abbrev in ["FLI", "YOT"] {
        let m = MatrixSpec::by_abbrev(abbrev)
            .unwrap()
            .generate::<f64>(128, 1)
            .csr;
        g.bench_with_input(BenchmarkId::new("generate_batch", abbrev), &m, |b, m| {
            b.iter(|| generate_update_batch(m, &UpdateConfig::default()));
        });
        let batch = generate_update_batch(&m, &UpdateConfig::default());
        g.bench_with_input(
            BenchmarkId::new("apply_incremental", abbrev),
            &(&m, &batch),
            |b, (m, batch)| {
                b.iter(|| batch.apply_to_csr(m));
            },
        );
        // the naive alternative: rebuild the matrix from scratch
        g.bench_with_input(
            BenchmarkId::new("rebuild_from_triplets", abbrev),
            &m,
            |b, m| {
                b.iter(|| {
                    let mut t = TripletMatrix::with_capacity(m.rows(), m.cols(), m.nnz());
                    for (r, c2, v) in m.iter() {
                        t.push_unchecked(r as u32, c2 as u32, v);
                    }
                    t.to_csr()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
