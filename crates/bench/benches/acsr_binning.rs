//! ACSR binning micro-benchmarks: the scan must stay linear and cheap
//! across matrix sizes (its cost IS the paper's headline claim).

use acsr::{AcsrConfig, Binning};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphgen::{generate_power_law, PowerLawConfig};
use sparse_formats::CsrMatrix;

fn matrix(rows: usize) -> CsrMatrix<f64> {
    generate_power_law(&PowerLawConfig {
        rows,
        cols: rows,
        mean_degree: 10.0,
        max_degree: (rows / 8).max(64),
        pinned_max_rows: 2,
        col_skew: 0.4,
        seed: 7,
        ..Default::default()
    })
}

fn bench_binning(c: &mut Criterion) {
    let mut g = c.benchmark_group("acsr_binning");
    for rows in [10_000usize, 100_000, 1_000_000] {
        let m = matrix(rows);
        let cfg = AcsrConfig::static_long_tail();
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(BenchmarkId::new("scan", rows), &m, |b, m| {
            b.iter(|| Binning::build((0..m.rows()).map(|r| m.row_nnz(r)), &cfg));
        });
    }
    g.finish();
}

fn bench_rebin_after_update(c: &mut Criterion) {
    use graphgen::{generate_update_batch, UpdateConfig};
    let m = matrix(100_000);
    let batch = generate_update_batch(&m, &UpdateConfig::default());
    let mut g = c.benchmark_group("acsr_update_host");
    g.sample_size(10);
    g.bench_function("apply_batch_host_reference", |b| {
        b.iter(|| batch.apply_to_csr(&m));
    });
    g.finish();
}

criterion_group!(benches, bench_binning, bench_rebin_after_update);
criterion_main!(benches);
