//! Wall-clock SpMV throughput of the CPU backend per format — the
//! hardware-measured counterpart of Figure 5's shape claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphgen::MatrixSpec;
use sparse_formats::{CooMatrix, CsrMatrix, HybMatrix};
use spmv_kernels::cpu;

fn suite(abbrev: &str) -> CsrMatrix<f64> {
    MatrixSpec::by_abbrev(abbrev)
        .unwrap()
        .generate::<f64>(64, 1)
        .csr
}

fn bench_formats(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmv_formats");
    g.sample_size(20);
    for abbrev in ["ENR", "EU2", "AMZ"] {
        let m = suite(abbrev);
        let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
        let mut y = vec![0.0f64; m.rows()];
        g.throughput(Throughput::Elements(m.nnz() as u64));

        g.bench_with_input(BenchmarkId::new("csr", abbrev), &m, |b, m| {
            b.iter(|| cpu::spmv_csr(m, &x, &mut y));
        });

        let (hyb, _) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        g.bench_with_input(BenchmarkId::new("hyb", abbrev), &hyb, |b, hyb| {
            b.iter(|| cpu::spmv_hyb(hyb, &x, &mut y));
        });

        let (coo, _) = CooMatrix::from_csr(&m);
        g.bench_with_input(BenchmarkId::new("coo", abbrev), &coo, |b, coo| {
            b.iter(|| {
                y.fill(0.0);
                cpu::spmv_coo_accumulate(coo, &x, &mut y);
            });
        });

        let acsr = acsr::cpu::CpuAcsr::new(m.clone());
        g.bench_with_input(BenchmarkId::new("acsr", abbrev), &acsr, |b, acsr| {
            b.iter(|| acsr.spmv(&x, &mut y));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
