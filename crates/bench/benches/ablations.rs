//! Wall-clock ablation: does binning help a *CPU* SpMV too?
//!
//! The DESIGN.md §4 ablations of the GPU knobs run in the simulator
//! (`repro ablations`); this bench isolates the one claim measurable on
//! real hardware — that grouping similar-length rows improves dynamic
//! load balance on a skewed matrix versus naive row chunking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphgen::{generate_power_law, PowerLawConfig};
use sparse_formats::CsrMatrix;
use spmv_kernels::cpu;

fn skewed(rows: usize, max: usize) -> CsrMatrix<f64> {
    generate_power_law(&PowerLawConfig {
        rows,
        cols: rows,
        mean_degree: 8.0,
        max_degree: max,
        pinned_max_rows: 4,
        col_skew: 0.5,
        seed: 13,
        ..Default::default()
    })
}

fn bench_binning_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_binning_ablation");
    g.sample_size(20);
    for (name, max) in [("mild_skew", 256usize), ("heavy_skew", 65_536)] {
        let m = skewed(200_000, max);
        let x: Vec<f64> = (0..m.cols()).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
        let mut y = vec![0.0f64; m.rows()];
        g.throughput(Throughput::Elements(m.nnz() as u64));
        g.bench_with_input(BenchmarkId::new("naive_chunked", name), &m, |b, m| {
            b.iter(|| cpu::spmv_csr(m, &x, &mut y));
        });
        let binned = acsr::cpu::CpuAcsr::new(m.clone());
        g.bench_with_input(BenchmarkId::new("binned", name), &binned, |b, eng| {
            b.iter(|| eng.spmv(&x, &mut y));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_binning_ablation);
criterion_main!(benches);
