//! Wall-clock graph applications on the CPU backend — the measured
//! counterpart of Figure 6's iterative-solver workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_apps::pagerank::{pagerank_cpu, pagerank_operator};
use graph_apps::IterParams;
use graphgen::MatrixSpec;
use spmv_kernels::cpu;

fn bench_pagerank(c: &mut Criterion) {
    let mut g = c.benchmark_group("pagerank_cpu");
    g.sample_size(10);
    let params = IterParams {
        epsilon: 1e-6,
        max_iters: 200,
    };
    for abbrev in ["ENR", "INT"] {
        let m = MatrixSpec::by_abbrev(abbrev)
            .unwrap()
            .generate::<f64>(64, 1)
            .csr;
        let op = pagerank_operator(&m);
        g.bench_with_input(BenchmarkId::new("csr_parallel", abbrev), &op, |b, op| {
            b.iter(|| pagerank_cpu(op.rows(), 0.85, &params, |x, y| cpu::spmv_csr(op, x, y)));
        });
        let binned = acsr::cpu::CpuAcsr::new(op.clone());
        g.bench_with_input(
            BenchmarkId::new("acsr_binned", abbrev),
            &binned,
            |b, eng| {
                b.iter(|| pagerank_cpu(eng.matrix().rows(), 0.85, &params, |x, y| eng.spmv(x, y)));
            },
        );
    }
    g.finish();
}

fn bench_hits(c: &mut Criterion) {
    use graph_apps::hits::{hits_cpu, hits_operator};
    let mut g = c.benchmark_group("hits_cpu");
    g.sample_size(10);
    let params = IterParams {
        epsilon: 1e-6,
        max_iters: 100,
    };
    let m = MatrixSpec::by_abbrev("INT")
        .unwrap()
        .generate::<f64>(64, 1)
        .csr;
    let coupling = hits_operator(&m);
    g.bench_function("coupling_power_iteration", |b| {
        b.iter(|| hits_cpu(&coupling, &params));
    });
    g.finish();
}

criterion_group!(benches, bench_pagerank, bench_hits);
criterion_main!(benches);
