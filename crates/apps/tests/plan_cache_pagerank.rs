//! Acceptance pin for plan reuse: an iterative app that re-fetches its
//! plan from the [`PlanCache`] every solve pays the format's
//! `PreprocessCost` exactly once — iterations 2..n report **zero**
//! additional preprocessing, and the answers are bit-identical to the
//! first iteration's.

use gpu_sim::{presets, Device};
use graph_apps::dynamic::{dynamic_pagerank_cached, DynamicConfig, Strategy};
use graph_apps::pagerank::{pagerank_gpu, pagerank_operator};
use graph_apps::IterParams;
use graphgen::{generate_power_law, generate_update_batch, PowerLawConfig, UpdateConfig};
use sparse_formats::HostModel;
use spmv_pipeline::{FormatRegistry, PlanBudget, PlanCache};

#[test]
fn repeat_iterations_add_zero_preprocess_cost() {
    let g = generate_power_law(&PowerLawConfig {
        rows: 700,
        cols: 700,
        mean_degree: 6.0,
        max_degree: 200,
        pinned_max_rows: 1,
        col_skew: 0.4,
        seed: 171,
        ..Default::default()
    });
    let m = pagerank_operator(&g);
    let dev = Device::new(presets::gtx_titan());
    let reg = FormatRegistry::<f64>::with_all();
    let budget = PlanBudget::default();
    let host = HostModel::default();
    let params = IterParams::default();

    let mut cache = PlanCache::<f64>::new();
    let n = 6;
    let mut first_scores: Option<Vec<f64>> = None;
    let mut first_preprocess = 0.0;
    let mut additional_preprocess = 0.0;
    for i in 0..n {
        let misses_before = cache.misses();
        let (res, paid_if_planned) = {
            let plan = cache.get_or_plan(&reg, "ACSR", &dev, &m, &budget).unwrap();
            let paid = plan.preprocess_seconds(&host) + plan.upload_seconds(&host);
            (pagerank_gpu(&dev, plan, 0.85, &params), paid)
        };
        let paid = if cache.misses() > misses_before {
            paid_if_planned
        } else {
            0.0
        };
        if i == 0 {
            first_preprocess = paid;
        } else {
            additional_preprocess += paid;
        }
        match &first_scores {
            None => first_scores = Some(res.scores),
            Some(want) => {
                assert_eq!(res.scores.len(), want.len());
                for (a, b) in res.scores.iter().zip(want) {
                    assert_eq!(a.to_bits(), b.to_bits(), "cached plan changed the answer");
                }
            }
        }
    }
    assert!(
        first_preprocess > 0.0,
        "cold plan must charge preprocessing"
    );
    assert_eq!(
        additional_preprocess, 0.0,
        "iterations 2..n must pay zero additional preprocessing"
    );
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), n - 1);
}

/// Satellite pin: on the dynamic-epoch PageRank path every structural
/// epoch must miss + invalidate (the rebuild strategies replan from
/// scratch), and re-probing the final structure afterwards is the run's
/// only hit.
#[test]
fn dynamic_epochs_pin_cache_miss_and_invalidation_counts() {
    let g = generate_power_law(&PowerLawConfig {
        rows: 500,
        cols: 500,
        mean_degree: 6.0,
        max_degree: 150,
        pinned_max_rows: 1,
        col_skew: 0.4,
        seed: 303,
        ..Default::default()
    });
    let m = pagerank_operator(&g);
    let dev = Device::new(presets::gtx_titan());
    let host = HostModel::default();
    let epochs = 3;
    let cfg = DynamicConfig {
        epochs,
        params: IterParams {
            epsilon: 1e-6,
            max_iters: 300,
        },
        ..Default::default()
    };

    let mut cache = PlanCache::<f64>::new();
    let stats = dynamic_pagerank_cached(&dev, &m, Strategy::CsrReupload, &cfg, &host, &mut cache);
    assert_eq!(stats.len(), epochs + 1);
    // cold start + one replan per structural epoch
    assert_eq!(cache.misses() as usize, epochs + 1, "misses");
    // each epoch drops exactly the superseded plan
    assert_eq!(cache.invalidations() as usize, epochs, "invalidations");
    assert_eq!(cache.hits(), 0, "no epoch repeats a structure");

    // Reconstruct the final epoch's matrix host-side (the update stream
    // is a pure function of the seed chain) and probe the cache: the
    // final plan is still resident, so this is the run's first hit.
    let reg = FormatRegistry::<f64>::with_all();
    let budget = PlanBudget::for_device(dev.config());
    let mut final_m = m.clone();
    for epoch in 1..=epochs {
        let batch = generate_update_batch(
            &final_m,
            &UpdateConfig {
                seed: cfg.update.seed.wrapping_add(epoch as u64),
                ..cfg.update
            },
        );
        final_m = batch.apply_to_csr(&final_m);
    }
    cache
        .get_or_plan(&reg, "CSR-vector", &dev, &final_m, &budget)
        .unwrap();
    assert_eq!(cache.hits(), 1, "final structure's plan must be resident");
    assert_eq!(cache.misses() as usize, epochs + 1, "probe must not replan");

    // The incremental strategy never consults the cache.
    let mut untouched = PlanCache::<f64>::new();
    dynamic_pagerank_cached(
        &dev,
        &m,
        Strategy::AcsrIncremental,
        &cfg,
        &host,
        &mut untouched,
    );
    assert_eq!(untouched.hits() + untouched.misses(), 0);
    assert_eq!(untouched.invalidations(), 0);
}
