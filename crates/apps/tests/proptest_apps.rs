//! Property tests for the applications: PageRank/HITS/RWR invariants
//! must hold on arbitrary graphs, and the solution must not depend on
//! which SpMV engine computed it.

use gpu_sim::{presets, Device};
use graph_apps::pagerank::{pagerank_cpu, pagerank_gpu, pagerank_operator};
use graph_apps::rwr::{rwr_cpu, rwr_operator};
use graph_apps::IterParams;
use proptest::prelude::*;
use sparse_formats::{CsrMatrix, TripletMatrix};
use spmv_pipeline::{FormatRegistry, PlanBudget};

/// Arbitrary directed graph (square adjacency, unit-ish weights).
fn arb_graph() -> impl Strategy<Value = CsrMatrix<f64>> {
    (4usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..300).prop_map(move |edges| {
            let mut t = TripletMatrix::new(n, n);
            for (r, c) in edges {
                t.push(r, c, 1.0).unwrap();
            }
            t.to_csr()
        })
    })
}

fn params() -> IterParams {
    IterParams {
        epsilon: 1e-8,
        max_iters: 500,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pagerank_mass_is_bounded_and_nonnegative(g in arb_graph()) {
        let op = pagerank_operator(&g);
        let (pr, iters) = pagerank_cpu(op.rows(), 0.85, &params(), |x, y| op.spmv_into(x, y));
        prop_assert!(iters >= 1);
        prop_assert!(pr.iter().all(|&v| v >= 0.0 && v.is_finite()));
        let total: f64 = pr.iter().sum();
        // teleport mass is conserved; link mass can leak through dangling
        // rows, so total ∈ (0, 1]
        prop_assert!(total > 0.0 && total <= 1.0 + 1e-9, "total {total}");
    }

    #[test]
    fn pagerank_is_engine_independent(g in arb_graph()) {
        let op = pagerank_operator(&g);
        let dev = Device::new(presets::gtx_titan());
        let p = params();
        let reg = FormatRegistry::<f64>::with_all();
        let budget = PlanBudget::default();
        let acsr = reg.plan("ACSR", &dev, &op, &budget).unwrap();
        let csr = reg.plan("CSR-vector", &dev, &op, &budget).unwrap();
        let a = pagerank_gpu(&dev, &acsr, 0.85, &p);
        let b = pagerank_gpu(&dev, &csr, 0.85, &p);
        prop_assert_eq!(a.iterations, b.iterations);
        let d = sparse_formats::scalar::rel_l2_distance(&a.scores, &b.scores);
        prop_assert!(d < 1e-9, "engines diverge: {d}");
    }

    #[test]
    fn pagerank_respects_damping_teleport_floor(g in arb_graph()) {
        let op = pagerank_operator(&g);
        let n = op.rows();
        let (pr, _) = pagerank_cpu(n, 0.85, &params(), |x, y| op.spmv_into(x, y));
        // every page keeps at least (1-d)/n of teleport mass
        let floor = 0.15 / n as f64 - 1e-12;
        prop_assert!(pr.iter().all(|&v| v >= floor));
    }

    #[test]
    fn rwr_seed_keeps_restart_mass((g, seed) in arb_graph().prop_flat_map(|g| {
        let n = g.rows();
        (Just(g), 0..n)
    })) {
        let w = rwr_operator(&g);
        let (r, _) = rwr_cpu(&w, seed, 0.85, &params());
        prop_assert!(r.iter().all(|&v| v >= 0.0 && v.is_finite()));
        // the fixed point satisfies r[seed] = (1-c) + c·(W r)[seed], so the
        // seed always retains at least the restart mass. (It need NOT be
        // the global maximum: a hub every walk funnels into can exceed it.)
        prop_assert!(r[seed] >= 0.15 - 1e-9, "seed mass {}", r[seed]);
        let total: f64 = r.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
    }
}
