//! Dynamic-graph PageRank — the §VII experiment.
//!
//! The graph evolves in epochs: each epoch perturbs 10% of the rows
//! (paper protocol), then PageRank re-converges *warm-started* from the
//! previous epoch's ranks ("the previous page rank vector can be used as
//! the initial guess..., reducing the number of iterative steps").
//!
//! Three strategies are compared, mirroring Figure 7:
//! * **ACSR incremental** — only the change lists cross the PCIe bus;
//!   the device update kernel applies them in place and a re-binning
//!   scan is the entire preprocessing.
//! * **CSR re-upload** — the host applies the update and ships the whole
//!   matrix again.
//! * **HYB re-upload** — as CSR, plus the HYB re-transformation cost.
//!
//! Because updated operators are no longer exactly stochastic, the solver
//! here is the *normalized* power formulation (per-iteration L1
//! renormalization), which converges for any non-negative operator and
//! reduces to ordinary PageRank on a stochastic one.

use crate::ops::{l1_norm, l2_distance_sq, scale_add, scale_inplace};
use crate::{IterParams, SolveResult};
use acsr::{AcsrConfig, AcsrEngine};
use gpu_sim::{Device, RunReport};
use graphgen::{generate_update_batch, UpdateConfig};
use serde::{Deserialize, Serialize};
use sparse_formats::{CsrMatrix, HostModel, Scalar, UpdateBatch};
use spmv_kernels::GpuSpmv;
use spmv_pipeline::{FormatRegistry, PlanBudget, PlanCache, StructureKey};

/// Update-handling strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// ACSR with device-side incremental updates (deltas only).
    AcsrIncremental,
    /// CSR (vector kernel) with full re-upload per epoch.
    CsrReupload,
    /// HYB with full re-upload and re-transformation per epoch.
    HybReupload,
}

impl Strategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::AcsrIncremental => "ACSR",
            Strategy::CsrReupload => "CSR",
            Strategy::HybReupload => "HYB",
        }
    }
}

/// Configuration of the dynamic experiment.
#[derive(Clone, Debug)]
pub struct DynamicConfig {
    /// Number of update epochs after the cold start (paper: 10).
    pub epochs: usize,
    /// Update-stream parameters (paper: 10% of rows).
    pub update: UpdateConfig,
    /// PageRank damping (paper: 0.85).
    pub damping: f64,
    /// Convergence parameters (paper: ε = 1e-6).
    pub params: IterParams,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            epochs: 10,
            update: UpdateConfig::default(),
            damping: 0.85,
            params: IterParams::default(),
        }
    }
}

/// Per-epoch accounting (epoch 0 is the cold start).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// PageRank iterations this epoch.
    pub iterations: usize,
    /// Modeled device seconds of the solve (SpMV + vector ops).
    pub device_seconds: f64,
    /// Modeled device seconds of the incremental update kernel
    /// (ACSR only; zero for the rebuild strategies).
    pub update_seconds: f64,
    /// Modeled PCIe seconds (full matrix or deltas).
    pub copy_seconds: f64,
    /// Modeled host preprocessing seconds (update application, HYB
    /// transformation; zero for ACSR).
    pub host_seconds: f64,
}

impl EpochStats {
    /// Total modeled wall time of the epoch.
    pub fn total_seconds(&self) -> f64 {
        self.device_seconds + self.update_seconds + self.copy_seconds + self.host_seconds
    }

    /// Everything except the solve itself — the per-epoch price of
    /// keeping the device matrix current (Figure 7's lever).
    pub fn overhead_seconds(&self) -> f64 {
        self.update_seconds + self.copy_seconds + self.host_seconds
    }
}

/// Normalized-power PageRank with an explicit starting vector.
pub fn power_pagerank_gpu<T: Scalar>(
    dev: &Device,
    engine: &dyn GpuSpmv<T>,
    damping: f64,
    params: &IterParams,
    init: &[T],
) -> SolveResult<T> {
    let n = engine.rows();
    assert_eq!(init.len(), n, "init vector length mismatch");
    let teleport = T::from_f64((1.0 - damping) / n as f64);
    let d = T::from_f64(damping);
    let mut pr = dev.alloc(init.to_vec());
    let tmp = dev.alloc_zeroed::<T>(n);
    let mut next = dev.alloc_zeroed::<T>(n);
    let mut report = RunReport::default();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        report = report.then(&engine.spmv(dev, &pr, &tmp));
        report = report.then(&scale_add(dev, &tmp, d, teleport, &next));
        let (norm, rn) = l1_norm(dev, &next);
        report = report.then(&rn);
        report = report.then(&scale_inplace(
            dev,
            &next,
            T::from_f64(1.0 / norm.max(1e-300)),
        ));
        let (dist2, rd) = l2_distance_sq(dev, &next, &pr);
        report = report.then(&rd);
        std::mem::swap(&mut pr, &mut next);
        if dist2.sqrt() < params.epsilon || iterations >= params.max_iters {
            break;
        }
    }
    // final scores are copied back to the host
    report = report.then(&dev.record_dtoh(
        "power_pagerank_scores_d2h",
        (n * std::mem::size_of::<T>()) as u64,
    ));
    SolveResult {
        scores: pr.into_vec(),
        iterations,
        report,
    }
}

/// Run the full dynamic experiment under `strategy`. Returns one
/// [`EpochStats`] per epoch (index 0 = cold start, no update).
///
/// The update stream is derived deterministically from
/// `cfg.update.seed + epoch`, so every strategy sees the identical
/// sequence of matrices.
pub fn dynamic_pagerank<T: Scalar>(
    dev: &Device,
    operator0: &CsrMatrix<T>,
    strategy: Strategy,
    cfg: &DynamicConfig,
    host: &HostModel,
) -> Vec<EpochStats> {
    let mut cache = PlanCache::<T>::new();
    dynamic_pagerank_cached(dev, operator0, strategy, cfg, host, &mut cache)
}

/// [`dynamic_pagerank`] with a caller-owned [`PlanCache`] for the
/// rebuild strategies, so hit/miss/invalidation counters survive the run
/// (the `AcsrIncremental` strategy never consults the cache — in-place
/// updates are the point). The bench front-end uses this to surface
/// cache accounting on stderr.
pub fn dynamic_pagerank_cached<T: Scalar>(
    dev: &Device,
    operator0: &CsrMatrix<T>,
    strategy: Strategy,
    cfg: &DynamicConfig,
    host: &HostModel,
    cache: &mut PlanCache<T>,
) -> Vec<EpochStats> {
    let n = operator0.rows();
    let uniform = vec![T::from_f64(1.0 / n as f64); n];
    let mut stats = Vec::with_capacity(cfg.epochs + 1);
    let mut host_matrix = operator0.clone();
    let mut warm: Vec<T>;

    // --- cold start: upload + solve from the uniform vector -------------
    match strategy {
        Strategy::AcsrIncremental => {
            let mut engine =
                AcsrEngine::from_csr(dev, &host_matrix, AcsrConfig::for_device(dev.config()));
            let copy0 = dev.htod_seconds(engine.device_bytes());
            let solve = power_pagerank_gpu(dev, &engine, cfg.damping, &cfg.params, &uniform);
            stats.push(EpochStats {
                epoch: 0,
                iterations: solve.iterations,
                device_seconds: solve.report.time_s,
                update_seconds: 0.0,
                copy_seconds: copy0,
                host_seconds: 0.0,
            });
            warm = solve.scores;
            for epoch in 1..=cfg.epochs {
                let batch = epoch_batch(&host_matrix, cfg, epoch);
                host_matrix = batch.apply_to_csr(&host_matrix);
                let up = engine.apply_update(dev, &batch);
                let solve = power_pagerank_gpu(dev, &engine, cfg.damping, &cfg.params, &warm);
                debug_assert_eq!(engine.matrix().to_csr(), host_matrix);
                stats.push(EpochStats {
                    epoch,
                    iterations: solve.iterations,
                    device_seconds: solve.report.time_s,
                    update_seconds: up.kernel.time_s,
                    copy_seconds: up.copy_seconds,
                    host_seconds: 0.0,
                });
                warm = solve.scores;
            }
        }
        Strategy::CsrReupload | Strategy::HybReupload => {
            // The rebuild strategies are what the plan cache is for:
            // every epoch's update is a structural delta, so the cache
            // misses and replans (charging the format's conversion +
            // re-upload again), exactly the Figure 7 cost the paper
            // attributes to non-incremental formats. A value-only epoch
            // would hit and cost nothing.
            let format = match strategy {
                Strategy::CsrReupload => "CSR-vector",
                Strategy::HybReupload => "HYB",
                Strategy::AcsrIncremental => unreachable!(),
            };
            let reg = FormatRegistry::<T>::with_all();
            let budget = PlanBudget::for_device(dev.config());
            let epoch_run =
                |cache: &mut PlanCache<T>, m: &CsrMatrix<T>, init: &[T], epoch: usize| {
                    let before = cache.misses();
                    let (solve, copy, host_s) = {
                        let plan = cache
                            .get_or_plan(&reg, format, dev, m, &budget)
                            .expect("rebuild plan within device memory");
                        let copy = dev.htod_seconds(plan.upload_bytes());
                        let host_s = plan.preprocess_seconds(host);
                        (
                            power_pagerank_gpu(dev, plan, cfg.damping, &cfg.params, init),
                            copy,
                            host_s,
                        )
                    };
                    // A cache hit pays neither conversion nor upload.
                    let replanned = cache.misses() > before;
                    let st = EpochStats {
                        epoch,
                        iterations: solve.iterations,
                        device_seconds: solve.report.time_s,
                        update_seconds: 0.0,
                        copy_seconds: if replanned { copy } else { 0.0 },
                        host_seconds: if replanned { host_s } else { 0.0 },
                    };
                    (solve.scores, st)
                };
            let (scores, st) = epoch_run(cache, &host_matrix, &uniform, 0);
            stats.push(st);
            warm = scores;
            for epoch in 1..=cfg.epochs {
                let batch = epoch_batch(&host_matrix, cfg, epoch);
                // host applies the update (streamed cost) before re-upload
                let apply_host = (host_matrix.nnz() as u64 * 2 * (4 + T::BYTES as u64)) as f64
                    / host.mem_bandwidth_bytes_s;
                let stale = StructureKey::of(&host_matrix);
                host_matrix = batch.apply_to_csr(&host_matrix);
                // drop the superseded plan's device memory
                cache.invalidate(&stale);
                let (scores, mut st) = epoch_run(cache, &host_matrix, &warm, epoch);
                st.host_seconds += apply_host;
                stats.push(st);
                warm = scores;
            }
        }
    }
    stats
}

fn epoch_batch<T: Scalar>(m: &CsrMatrix<T>, cfg: &DynamicConfig, epoch: usize) -> UpdateBatch<T> {
    generate_update_batch(
        m,
        &UpdateConfig {
            seed: cfg.update.seed.wrapping_add(epoch as u64),
            ..cfg.update
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, PowerLawConfig};

    fn operator(rows: usize) -> CsrMatrix<f64> {
        let g = generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 6.0,
            max_degree: 200,
            pinned_max_rows: 1,
            col_skew: 0.4,
            seed: 161,
            ..Default::default()
        });
        crate::pagerank::pagerank_operator(&g)
    }

    fn small_cfg(epochs: usize) -> DynamicConfig {
        DynamicConfig {
            epochs,
            params: IterParams {
                epsilon: 1e-6,
                max_iters: 300,
            },
            ..Default::default()
        }
    }

    #[test]
    fn all_strategies_see_identical_iteration_counts() {
        let m = operator(800);
        let dev = Device::new(presets::gtx_titan());
        let host = HostModel::default();
        let cfg = small_cfg(3);
        let a = dynamic_pagerank(&dev, &m, Strategy::AcsrIncremental, &cfg, &host);
        let c = dynamic_pagerank(&dev, &m, Strategy::CsrReupload, &cfg, &host);
        let h = dynamic_pagerank(&dev, &m, Strategy::HybReupload, &cfg, &host);
        let iters = |v: &[EpochStats]| v.iter().map(|e| e.iterations).collect::<Vec<_>>();
        assert_eq!(iters(&a), iters(&c));
        assert_eq!(iters(&a), iters(&h));
    }

    #[test]
    fn warm_start_converges_faster_than_cold() {
        let m = operator(1000);
        let dev = Device::new(presets::gtx_titan());
        let host = HostModel::default();
        let cfg = small_cfg(4);
        let s = dynamic_pagerank(&dev, &m, Strategy::AcsrIncremental, &cfg, &host);
        let cold = s[0].iterations;
        for e in &s[1..] {
            assert!(
                e.iterations < cold,
                "epoch {} took {} iters vs cold {}",
                e.epoch,
                e.iterations,
                cold
            );
        }
    }

    #[test]
    fn acsr_ships_fewer_bytes_after_cold_start() {
        let m = operator(1200);
        let dev = Device::new(presets::gtx_titan());
        let host = HostModel::default();
        let cfg = small_cfg(3);
        let a = dynamic_pagerank(&dev, &m, Strategy::AcsrIncremental, &cfg, &host);
        let c = dynamic_pagerank(&dev, &m, Strategy::CsrReupload, &cfg, &host);
        for (ea, ec) in a[1..].iter().zip(c[1..].iter()) {
            assert!(
                ea.copy_seconds < ec.copy_seconds,
                "epoch {}: acsr copy {} vs csr copy {}",
                ea.epoch,
                ea.copy_seconds,
                ec.copy_seconds
            );
        }
    }

    #[test]
    fn hyb_pays_host_transformation_every_epoch() {
        let m = operator(900);
        let dev = Device::new(presets::gtx_titan());
        let host = HostModel::default();
        let cfg = small_cfg(2);
        let h = dynamic_pagerank(&dev, &m, Strategy::HybReupload, &cfg, &host);
        let a = dynamic_pagerank(&dev, &m, Strategy::AcsrIncremental, &cfg, &host);
        for (eh, ea) in h.iter().zip(a.iter()) {
            assert!(eh.host_seconds > 0.0, "epoch {}", eh.epoch);
            assert_eq!(ea.host_seconds, 0.0);
        }
    }

    #[test]
    fn acsr_update_overheads_beat_rebuild_overheads() {
        // Figure 7's lever: per-epoch matrix-maintenance cost. (The full
        // end-to-end comparison needs paper-scale matrices where launch
        // overheads amortize; the `repro fig7` harness runs that.)
        let m = operator(3000);
        let dev = Device::new(presets::gtx_titan());
        let host = HostModel::default();
        let cfg = small_cfg(3);
        let a = dynamic_pagerank(&dev, &m, Strategy::AcsrIncremental, &cfg, &host);
        let h = dynamic_pagerank(&dev, &m, Strategy::HybReupload, &cfg, &host);
        let c = dynamic_pagerank(&dev, &m, Strategy::CsrReupload, &cfg, &host);
        for epoch in 1..=cfg.epochs {
            assert!(
                a[epoch].overhead_seconds() < h[epoch].overhead_seconds(),
                "epoch {epoch}: acsr {} vs hyb {}",
                a[epoch].overhead_seconds(),
                h[epoch].overhead_seconds()
            );
            assert!(
                a[epoch].overhead_seconds() < c[epoch].overhead_seconds(),
                "epoch {epoch}: acsr {} vs csr {}",
                a[epoch].overhead_seconds(),
                c[epoch].overhead_seconds()
            );
        }
    }
}
