//! Elementwise device kernels used by the iterative solvers.
//!
//! Each is a trivially parallel, bandwidth-bound kernel; they exist so
//! the modeled application times include *all* device work, not just the
//! SpMV (the paper's applications also pay for their vector updates and
//! convergence checks on the GPU).

use gpu_sim::{lane_mask, Device, DeviceBuffer, RunReport, WARP};
use sparse_formats::Scalar;

/// `out[i] = a * x[i] + b` — the PageRank/RWR update
/// (`PR = d * (Aᵀ PR) + (1-d)/n`).
pub fn scale_add<T: Scalar>(
    dev: &Device,
    x: &DeviceBuffer<T>,
    a: T,
    b: T,
    out: &DeviceBuffer<T>,
) -> RunReport {
    let n = x.len();
    assert_eq!(out.len(), n, "scale_add length mismatch");
    let block = 256;
    let grid = n.div_ceil(block).max(1);
    dev.launch("scale_add", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            let xs = warp.read_coalesced(x, base, mask);
            let mut vals = [T::ZERO; WARP];
            for lane in 0..WARP {
                if mask >> lane & 1 == 1 {
                    vals[lane] = a.mul_add(xs[lane], b);
                }
            }
            warp.charge_fma(mask);
            warp.write_coalesced(out, base, &vals, mask);
        });
    })
}

/// Squared Euclidean distance `‖a - b‖₂²` via per-warp reduction and one
/// atomic per warp. Returns `(distance², report)`. The host reads the
/// scalar result back, so the report includes the D2H copy.
pub fn l2_distance_sq<T: Scalar>(
    dev: &Device,
    a: &DeviceBuffer<T>,
    b: &DeviceBuffer<T>,
) -> (f64, RunReport) {
    let n = a.len();
    assert_eq!(b.len(), n, "l2_distance length mismatch");
    let acc = dev.alloc(vec![0.0f64]);
    let block = 256;
    let grid = n.div_ceil(block).max(1);
    let report = dev.launch("l2_distance", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            let av = warp.read_coalesced(a, base, mask);
            let bv = warp.read_coalesced(b, base, mask);
            let mut d2 = [0.0f64; WARP];
            for lane in 0..WARP {
                if mask >> lane & 1 == 1 {
                    let d = av[lane].to_f64() - bv[lane].to_f64();
                    d2[lane] = d * d;
                }
            }
            warp.charge_alu(2);
            warp.charge_flops(2 * u64::from(mask.count_ones()));
            let red = warp.segmented_reduce_sum(&d2, WARP);
            let idx = [0usize; WARP];
            warp.atomic_rmw(&acc, &idx, &red, 1, |x, y| x + y);
        });
    });
    let report = report.then(&dev.record_dtoh("l2_distance_d2h", 8));
    (acc.as_slice()[0], report)
}

/// L1 norm `Σ |v[i]|` (power-iteration renormalization). The scalar is
/// read back to the host, so the report includes the D2H copy.
pub fn l1_norm<T: Scalar>(dev: &Device, v: &DeviceBuffer<T>) -> (f64, RunReport) {
    let n = v.len();
    let acc = dev.alloc(vec![0.0f64]);
    let block = 256;
    let grid = n.div_ceil(block).max(1);
    let report = dev.launch("l1_norm", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            let xs = warp.read_coalesced(v, base, mask);
            let mut abs = [0.0f64; WARP];
            for lane in 0..WARP {
                if mask >> lane & 1 == 1 {
                    abs[lane] = xs[lane].to_f64().abs();
                }
            }
            warp.charge_alu(1);
            warp.charge_flops(u64::from(mask.count_ones()));
            let red = warp.segmented_reduce_sum(&abs, WARP);
            let idx = [0usize; WARP];
            warp.atomic_rmw(&acc, &idx, &red, 1, |x, y| x + y);
        });
    });
    let report = report.then(&dev.record_dtoh("l1_norm_d2h", 8));
    (acc.as_slice()[0], report)
}

/// L2 norms of the two halves of a `2n`-vector in one pass (HITS
/// normalizes authorities and hubs independently; joint normalization of
/// the bipartite coupling operator oscillates with period 2).
pub fn l2_norm_halves<T: Scalar>(dev: &Device, v: &DeviceBuffer<T>) -> (f64, f64, RunReport) {
    let n2 = v.len();
    assert_eq!(n2 % 2, 0, "l2_norm_halves needs an even-length vector");
    let half = n2 / 2;
    let acc = dev.alloc(vec![0.0f64; 2]);
    let block = 256;
    let grid = n2.div_ceil(block).max(1);
    let report = dev.launch("l2_norm_halves", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n2 {
                return;
            }
            let mask = lane_mask(n2 - base);
            let xs = warp.read_coalesced(v, base, mask);
            let mut sq = [0.0f64; WARP];
            for lane in 0..WARP {
                if mask >> lane & 1 == 1 {
                    sq[lane] = xs[lane].to_f64() * xs[lane].to_f64();
                }
            }
            warp.charge_alu(1);
            warp.charge_flops(u64::from(mask.count_ones()));
            // a warp never straddles the half boundary when `half` is a
            // multiple of 32; handle the general case lane-by-lane
            let mut idx = [0usize; WARP];
            for (lane, slot) in idx.iter_mut().enumerate() {
                *slot = usize::from(base + lane >= half);
            }
            let red_lo = {
                let mut lo = sq;
                for lane in 0..WARP {
                    if idx[lane] == 1 {
                        lo[lane] = 0.0;
                    }
                }
                warp.segmented_reduce_sum(&lo, WARP)
            };
            let red_hi = {
                let mut hi = sq;
                for lane in 0..WARP {
                    if idx[lane] == 0 {
                        hi[lane] = 0.0;
                    }
                }
                warp.segmented_reduce_sum(&hi, WARP)
            };
            let zeros = [0usize; WARP];
            warp.atomic_rmw(&acc, &zeros, &red_lo, 1, |a, b| a + b);
            let ones = [1usize; WARP];
            warp.atomic_rmw(&acc, &ones, &red_hi, 1, |a, b| a + b);
        });
    });
    // both norms come back to the host for the renormalization factors
    let report = report.then(&dev.record_dtoh("l2_norm_halves_d2h", 16));
    (acc.as_slice()[0].sqrt(), acc.as_slice()[1].sqrt(), report)
}

/// Scale the two halves of a `2n`-vector by independent factors.
pub fn scale_halves<T: Scalar>(dev: &Device, v: &DeviceBuffer<T>, s_lo: T, s_hi: T) -> RunReport {
    let n2 = v.len();
    assert_eq!(n2 % 2, 0, "scale_halves needs an even-length vector");
    let half = n2 / 2;
    let block = 256;
    let grid = n2.div_ceil(block).max(1);
    dev.launch("scale_halves", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n2 {
                return;
            }
            let mask = lane_mask(n2 - base);
            let xs = warp.read_coalesced(v, base, mask);
            let mut vals = [T::ZERO; WARP];
            for lane in 0..WARP {
                if mask >> lane & 1 == 1 {
                    let s = if base + lane < half { s_lo } else { s_hi };
                    vals[lane] = xs[lane] * s;
                }
            }
            warp.charge_alu(2);
            warp.charge_flops(u64::from(mask.count_ones()));
            warp.write_coalesced(v, base, &vals, mask);
        });
    })
}

/// In-place scale: `v[i] *= s`.
pub fn scale_inplace<T: Scalar>(dev: &Device, v: &DeviceBuffer<T>, s: T) -> RunReport {
    let n = v.len();
    let block = 256;
    let grid = n.div_ceil(block).max(1);
    dev.launch("scale", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            let xs = warp.read_coalesced(v, base, mask);
            let mut vals = [T::ZERO; WARP];
            for lane in 0..WARP {
                if mask >> lane & 1 == 1 {
                    vals[lane] = xs[lane] * s;
                }
            }
            warp.charge_alu(1);
            warp.charge_flops(u64::from(mask.count_ones()));
            warp.write_coalesced(v, base, &vals, mask);
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;

    #[test]
    fn scale_add_computes_affine_map() {
        let dev = Device::new(presets::gtx_titan());
        let x = dev.alloc(vec![1.0f64, 2.0, 3.0]);
        let out = dev.alloc_zeroed::<f64>(3);
        scale_add(&dev, &x, 2.0, 0.5, &out);
        assert_eq!(out.as_slice(), &[2.5, 4.5, 6.5]);
    }

    #[test]
    fn l2_distance_matches_host() {
        let dev = Device::new(presets::gtx_titan());
        let n = 1000;
        let av: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let bv: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 + 0.5).collect();
        let a = dev.alloc(av);
        let b = dev.alloc(bv);
        let (d2, _) = l2_distance_sq(&dev, &a, &b);
        assert!((d2 - 0.25 * n as f64).abs() < 1e-9);
    }

    #[test]
    fn l1_norm_matches_host() {
        let dev = Device::new(presets::gtx_titan());
        let v = dev.alloc(vec![-1.0f32, 2.0, -3.0, 4.0]);
        let (n1, _) = l1_norm(&dev, &v);
        assert!((n1 - 10.0).abs() < 1e-6);
    }

    #[test]
    fn scale_inplace_multiplies() {
        let dev = Device::new(presets::gtx_titan());
        let v = dev.alloc(vec![1.0f64; 100]);
        scale_inplace(&dev, &v, 0.5);
        assert!(v.as_slice().iter().all(|&x| x == 0.5));
    }
}
