//! PageRank — Algorithm 5.
//!
//! `PR^(k+1) = (1-d)·PR^(0) + d·(Aᵀ_norm × PR^(k))`, iterated until the
//! Euclidean distance of successive iterates falls below ε. The operator
//! is the transpose of the row-normalized adjacency matrix; helper
//! [`pagerank_operator`] builds it from a raw adjacency.

use crate::ops::{l2_distance_sq, scale_add};
use crate::{IterParams, SolveResult};
use gpu_sim::{Device, RunReport};
use sparse_formats::{CsrMatrix, Scalar};
use spmv_kernels::GpuSpmv;
use spmv_pipeline::SpmvPlan;

/// Build the PageRank operator `M = (row-normalized A)ᵀ` so that
/// `M × PR` distributes each page's rank over its out-links.
pub fn pagerank_operator<T: Scalar>(adjacency: &CsrMatrix<T>) -> CsrMatrix<T> {
    assert_eq!(
        adjacency.rows(),
        adjacency.cols(),
        "adjacency must be square"
    );
    let mut a = adjacency.clone();
    a.row_normalize();
    a.transpose()
}

/// Run PageRank on a planned operator (any registry format).
///
/// `damping` is the paper's d = 0.85; iteration stops when
/// `‖PR^(k+1) − PR^(k)‖₂ < params.epsilon`. The plan's preprocessing
/// was paid once at [`spmv_pipeline::SpmvPlanner::plan`] time; the
/// iterations here add none (pinned by the plan-cache tests).
pub fn pagerank_gpu<T: Scalar>(
    dev: &Device,
    plan: &SpmvPlan<T>,
    damping: f64,
    params: &IterParams,
) -> SolveResult<T> {
    let engine: &dyn GpuSpmv<T> = plan;
    let n = engine.rows();
    assert_eq!(engine.cols(), n, "PageRank operator must be square");
    let teleport = T::from_f64((1.0 - damping) / n as f64);
    let d = T::from_f64(damping);

    let mut pr = dev.alloc(vec![T::from_f64(1.0 / n as f64); n]);
    let tmp = dev.alloc_zeroed::<T>(n);
    let mut next = dev.alloc_zeroed::<T>(n);
    let mut report = RunReport::default();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        report = report.then(&engine.spmv(dev, &pr, &tmp));
        report = report.then(&scale_add(dev, &tmp, d, teleport, &next));
        let (dist2, r) = l2_distance_sq(dev, &next, &pr);
        report = report.then(&r);
        std::mem::swap(&mut pr, &mut next);
        if dist2.sqrt() < params.epsilon || iterations >= params.max_iters {
            break;
        }
    }
    // final scores are copied back to the host
    report =
        report.then(&dev.record_dtoh("pagerank_scores_d2h", (n * std::mem::size_of::<T>()) as u64));
    SolveResult {
        scores: pr.into_vec(),
        iterations,
        report,
    }
}

/// CPU reference PageRank over an arbitrary SpMV closure (used by tests
/// and the wall-clock benches). `spmv(x, y)` must compute `y = M x`.
pub fn pagerank_cpu<T: Scalar>(
    n: usize,
    damping: f64,
    params: &IterParams,
    mut spmv: impl FnMut(&[T], &mut [T]),
) -> (Vec<T>, usize) {
    let teleport = T::from_f64((1.0 - damping) / n as f64);
    let d = T::from_f64(damping);
    let mut pr = vec![T::from_f64(1.0 / n as f64); n];
    let mut tmp = vec![T::ZERO; n];
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        spmv(&pr, &mut tmp);
        let mut dist2 = 0.0f64;
        for i in 0..n {
            let next = d.mul_add(tmp[i], teleport);
            let delta = next.to_f64() - pr[i].to_f64();
            dist2 += delta * delta;
            pr[i] = next;
        }
        if dist2.sqrt() < params.epsilon || iterations >= params.max_iters {
            return (pr, iterations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, PowerLawConfig};
    use spmv_pipeline::{FormatRegistry, PlanBudget};

    fn plan_for(dev: &Device, m: &CsrMatrix<f64>, format: &str) -> SpmvPlan<f64> {
        FormatRegistry::<f64>::with_all()
            .plan(format, dev, m, &PlanBudget::default())
            .unwrap()
    }

    fn graph(rows: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 6.0,
            max_degree: 300,
            pinned_max_rows: 1,
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn operator_columns_are_stochastic() {
        let g = graph(400, 131);
        let m = pagerank_operator(&g);
        // column c of M sums to 1 whenever row c of A is non-empty
        let mt = m.transpose();
        for r in 0..g.rows() {
            if g.row_nnz(r) > 0 {
                let (_, vals) = mt.row(r);
                let s: f64 = vals.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "column {r} sums to {s}");
            }
        }
    }

    #[test]
    fn gpu_pagerank_matches_cpu_reference() {
        let g = graph(800, 132);
        let m = pagerank_operator(&g);
        let dev = Device::new(presets::gtx_titan());
        let engine = plan_for(&dev, &m, "ACSR");
        let params = IterParams::default();
        let gpu = pagerank_gpu(&dev, &engine, 0.85, &params);
        let (cpu, cpu_iters) = pagerank_cpu(m.rows(), 0.85, &params, |x, y| m.spmv_into(x, y));
        assert_eq!(gpu.iterations, cpu_iters);
        let d = sparse_formats::scalar::rel_l2_distance(&gpu.scores, &cpu);
        assert!(d < 1e-10, "rel distance {d}");
    }

    #[test]
    fn ranks_sum_to_approximately_one() {
        let g = graph(600, 133);
        let m = pagerank_operator(&g);
        let dev = Device::new(presets::gtx_titan());
        let engine = plan_for(&dev, &m, "ACSR");
        let res = pagerank_gpu(&dev, &engine, 0.85, &IterParams::default());
        let total: f64 = res.scores.iter().sum();
        // dangling rows leak a little mass; bulk must be preserved
        assert!(total > 0.5 && total <= 1.0 + 1e-9, "total {total}");
    }

    #[test]
    fn different_engines_agree_on_scores() {
        let g = graph(700, 134);
        let m = pagerank_operator(&g);
        let dev = Device::new(presets::gtx_titan());
        let params = IterParams::default();
        let acsr_plan = plan_for(&dev, &m, "ACSR");
        let csr_plan = plan_for(&dev, &m, "CSR-vector");
        let a = pagerank_gpu(&dev, &acsr_plan, 0.85, &params);
        let b = pagerank_gpu(&dev, &csr_plan, 0.85, &params);
        assert_eq!(a.iterations, b.iterations);
        let d = sparse_formats::scalar::rel_l2_distance(&a.scores, &b.scores);
        assert!(d < 1e-10);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = graph(300, 135);
        let m = pagerank_operator(&g);
        let dev = Device::new(presets::gtx_titan());
        let engine = plan_for(&dev, &m, "ACSR");
        let res = pagerank_gpu(
            &dev,
            &engine,
            0.85,
            &IterParams {
                epsilon: 0.0, // unreachable: must stop at the cap
                max_iters: 7,
            },
        );
        assert_eq!(res.iterations, 7);
    }
}
