//! HITS — hubs and authorities via the combined coupling matrix (Eq. 7).
//!
//! "As in \[28\], we combine the computations into a single SpMV:
//! `[a; h]^(k+1) = [[0, Aᵀ], [A, 0]] × [a; h]^(k)`". The authority and
//! hub halves are L2-normalized *independently* every iteration — the
//! coupling operator is bipartite (eigenvalues come in ±σ pairs), so
//! jointly-normalized power iteration oscillates with period two, while
//! per-half normalization converges to the singular-vector fixed point.
//! Convergence is the Euclidean distance of successive normalized
//! vectors (ε = 1e-6).

use crate::ops::{l2_distance_sq, l2_norm_halves, scale_halves};
use crate::{IterParams, SolveResult};
use gpu_sim::{Device, RunReport};
use sparse_formats::{CsrMatrix, Scalar};
use spmv_kernels::GpuSpmv;
use spmv_pipeline::SpmvPlan;

/// Hub/authority scores extracted from a converged coupling vector.
#[derive(Clone, Debug)]
pub struct HitsScores<T> {
    /// Authority score per vertex.
    pub authority: Vec<T>,
    /// Hub score per vertex.
    pub hub: Vec<T>,
}

/// Build the 2n x 2n HITS coupling operator from an adjacency matrix.
pub fn hits_operator<T: Scalar>(adjacency: &CsrMatrix<T>) -> CsrMatrix<T> {
    adjacency.hits_coupling()
}

/// Run HITS on a planned coupling operator (2n x 2n, any registry
/// format).
pub fn hits_gpu<T: Scalar>(
    dev: &Device,
    plan: &SpmvPlan<T>,
    params: &IterParams,
) -> SolveResult<T> {
    let engine: &dyn GpuSpmv<T> = plan;
    let n2 = engine.rows();
    assert_eq!(engine.cols(), n2, "coupling operator must be square");
    assert_eq!(n2 % 2, 0, "coupling operator must be 2n x 2n");
    let init = T::from_f64(1.0 / (n2 / 2) as f64);
    let mut v = dev.alloc(vec![init; n2]);
    let mut next = dev.alloc_zeroed::<T>(n2);
    let mut report = RunReport::default();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        report = report.then(&engine.spmv(dev, &v, &next));
        // Independent L2 normalization of the authority and hub halves.
        let (na, nh, r1) = l2_norm_halves(dev, &next);
        report = report.then(&r1);
        report = report.then(&scale_halves(
            dev,
            &next,
            T::from_f64(1.0 / na.max(1e-300)),
            T::from_f64(1.0 / nh.max(1e-300)),
        ));
        let (dist2, r2) = l2_distance_sq(dev, &next, &v);
        report = report.then(&r2);
        std::mem::swap(&mut v, &mut next);
        if dist2.sqrt() < params.epsilon || iterations >= params.max_iters {
            break;
        }
    }
    // final hub/authority vector is copied back to the host
    report =
        report.then(&dev.record_dtoh("hits_scores_d2h", (n2 * std::mem::size_of::<T>()) as u64));
    SolveResult {
        scores: v.into_vec(),
        iterations,
        report,
    }
}

/// Split a converged coupling vector into authority/hub halves.
pub fn split_scores<T: Scalar>(combined: &[T]) -> HitsScores<T> {
    let n = combined.len() / 2;
    HitsScores {
        authority: combined[..n].to_vec(),
        hub: combined[n..].to_vec(),
    }
}

/// CPU reference (tests / benches): power-iterate the coupling matrix.
pub fn hits_cpu<T: Scalar>(coupling: &CsrMatrix<T>, params: &IterParams) -> (Vec<T>, usize) {
    let n2 = coupling.rows();
    let init = T::from_f64(1.0 / (n2 / 2) as f64);
    let mut v = vec![init; n2];
    let mut next = vec![T::ZERO; n2];
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        coupling.spmv_into(&v, &mut next);
        let half = n2 / 2;
        let norm_of = |xs: &[T]| {
            xs.iter()
                .map(|x| x.to_f64() * x.to_f64())
                .sum::<f64>()
                .sqrt()
                .max(1e-300)
        };
        let sa = T::from_f64(1.0 / norm_of(&next[..half]));
        let sh = T::from_f64(1.0 / norm_of(&next[half..]));
        for (j, x) in next.iter_mut().enumerate() {
            *x *= if j < half { sa } else { sh };
        }
        let dist2: f64 = v
            .iter()
            .zip(next.iter())
            .map(|(a, b)| {
                let d = a.to_f64() - b.to_f64();
                d * d
            })
            .sum();
        std::mem::swap(&mut v, &mut next);
        if dist2.sqrt() < params.epsilon || iterations >= params.max_iters {
            return (v, iterations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, PowerLawConfig};
    use spmv_pipeline::{FormatRegistry, PlanBudget};

    fn plan_for(dev: &Device, m: &CsrMatrix<f64>) -> SpmvPlan<f64> {
        FormatRegistry::<f64>::with_all()
            .plan("ACSR", dev, m, &PlanBudget::default())
            .unwrap()
    }

    fn graph(rows: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 5.0,
            max_degree: 200,
            pinned_max_rows: 1,
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn gpu_hits_matches_cpu_reference() {
        let g = graph(400, 141);
        let coupling = hits_operator(&g);
        let dev = Device::new(presets::gtx_titan());
        let engine = plan_for(&dev, &coupling);
        let params = IterParams::default();
        let gpu = hits_gpu(&dev, &engine, &params);
        let (cpu, cpu_iters) = hits_cpu(&coupling, &params);
        assert_eq!(gpu.iterations, cpu_iters);
        let d = sparse_formats::scalar::rel_l2_distance(&gpu.scores, &cpu);
        assert!(d < 1e-8, "rel distance {d}");
    }

    #[test]
    fn scores_are_nonnegative_and_normalized() {
        let g = graph(300, 142);
        let coupling = hits_operator(&g);
        let dev = Device::new(presets::gtx_titan());
        let engine = plan_for(&dev, &coupling);
        let res = hits_gpu(&dev, &engine, &IterParams::default());
        assert!(res.scores.iter().all(|&s| s >= 0.0));
        let half = res.scores.len() / 2;
        for part in [&res.scores[..half], &res.scores[half..]] {
            let norm: f64 = part.iter().map(|s| s * s).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-6, "norm {norm}");
        }
    }

    #[test]
    fn split_scores_partitions_halves() {
        let combined = vec![1.0f64, 2.0, 3.0, 4.0];
        let s = split_scores(&combined);
        assert_eq!(s.authority, vec![1.0, 2.0]);
        assert_eq!(s.hub, vec![3.0, 4.0]);
    }

    #[test]
    fn high_in_degree_vertex_gets_high_authority() {
        // star graph: everyone links to vertex 0
        let mut t = sparse_formats::TripletMatrix::<f64>::new(50, 50);
        for i in 1..50 {
            t.push(i, 0, 1.0).unwrap();
        }
        let g = t.to_csr();
        let coupling = hits_operator(&g);
        let (v, _) = hits_cpu(&coupling, &IterParams::default());
        let s = split_scores(&v);
        let max_auth = s.authority.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(s.authority[0], max_auth);
        // per-half normalization: the sole authority carries the whole
        // authority norm
        assert!(s.authority[0] > 0.99, "authority {}", s.authority[0]);
        assert!(s.authority[1..].iter().all(|&a| a < 1e-6));
    }
}
