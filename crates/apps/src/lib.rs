//! # graph-apps — the paper's §VI/§VII graph-mining applications
//!
//! Three link-analysis algorithms whose run time is dominated by
//! repeated SpMV, evaluated over any [`spmv_kernels::GpuSpmv`] engine
//! (CSR, HYB, ACSR, ...):
//!
//! * [`pagerank`] — Algorithm 5 (damping d = 0.85, Euclidean ε = 1e-6);
//! * [`hits`] — the combined 2n x 2n coupling formulation of Eq. 7;
//! * [`rwr`] — Random Walk with Restart, Eq. 8;
//! * [`dynamic`] — the §VII dynamic-graph epoch driver comparing ACSR's
//!   incremental device-side updates against full re-upload (CSR) and
//!   re-upload + re-transformation (HYB);
//! * [`ops`] — the small elementwise device kernels (scale-add, L1/L2
//!   norms) the iterations need, so every byte the applications move is
//!   accounted by the simulator.

pub mod dynamic;
pub mod hits;
pub mod ops;
pub mod pagerank;
pub mod rwr;

use gpu_sim::RunReport;
use serde::{Deserialize, Serialize};

/// Outcome of one iterative solve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveResult<T> {
    /// Converged score vector.
    pub scores: Vec<T>,
    /// Iterations (== SpMV invocations) to convergence.
    pub iterations: usize,
    /// Merged device report across all iterations (SpMV + elementwise).
    pub report: RunReport,
}

impl<T> SolveResult<T> {
    /// Modeled device seconds for the whole solve.
    pub fn seconds(&self) -> f64 {
        self.report.time_s
    }
}

/// Shared iteration limits.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IterParams {
    /// Convergence threshold on the Euclidean distance of successive
    /// iterates (paper: 1e-6).
    pub epsilon: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
}

impl Default for IterParams {
    fn default() -> Self {
        IterParams {
            epsilon: 1e-6,
            max_iters: 1000,
        }
    }
}
