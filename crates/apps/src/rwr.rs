//! Random Walk with Restart (Eq. 8).
//!
//! `r^(k+1) = c·(W × r^(k)) + (1-c)·e_i` with `W` the column-normalized
//! adjacency, restart probability `c`, and `e_i` the seed indicator.
//! Converges to the relevance of every node to seed `i`.

use crate::ops::l2_distance_sq;
use crate::{IterParams, SolveResult};
use gpu_sim::{lane_mask, Device, DeviceBuffer, RunReport, WARP};
use sparse_formats::{CsrMatrix, Scalar};
use spmv_kernels::GpuSpmv;
use spmv_pipeline::SpmvPlan;

/// Build the RWR operator `W` (column-normalized adjacency).
pub fn rwr_operator<T: Scalar>(adjacency: &CsrMatrix<T>) -> CsrMatrix<T> {
    assert_eq!(
        adjacency.rows(),
        adjacency.cols(),
        "adjacency must be square"
    );
    adjacency.column_normalize()
}

/// `out[j] = c * x[j] + (1-c) * [j == seed]` — the RWR update kernel.
pub fn rwr_update<T: Scalar>(
    dev: &Device,
    x: &DeviceBuffer<T>,
    c: T,
    restart: T,
    seed: usize,
    out: &DeviceBuffer<T>,
) -> RunReport {
    let n = x.len();
    let block = 256;
    let grid = n.div_ceil(block).max(1);
    dev.launch("rwr_update", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            let xs = warp.read_coalesced(x, base, mask);
            let mut vals = [T::ZERO; WARP];
            for lane in 0..WARP {
                if mask >> lane & 1 == 1 {
                    vals[lane] = c * xs[lane];
                    if base + lane == seed {
                        vals[lane] += restart;
                    }
                }
            }
            warp.charge_alu(2);
            warp.charge_flops(2 * u64::from(mask.count_ones()));
            warp.write_coalesced(out, base, &vals, mask);
        });
    })
}

/// Batched RWR update: one launch applies `outs[v] = c[v] * xs[v] +
/// restart[v] * e_seed[v]` for every query of the batch. `seeds[v]` is
/// the seed's index in these vectors, or `None` when the vectors are a
/// device-local row slice that does not contain the seed (multi-device
/// serving). Per vector the arithmetic is exactly [`rwr_update`]'s, so a
/// query's trajectory is independent of the batch it rides in.
pub fn rwr_update_multi<T: Scalar>(
    dev: &Device,
    xs: &[&DeviceBuffer<T>],
    c: &[T],
    restart: &[T],
    seeds: &[Option<usize>],
    outs: &[&DeviceBuffer<T>],
) -> RunReport {
    let k = xs.len();
    assert!(
        k == c.len() && k == restart.len() && k == seeds.len() && k == outs.len(),
        "batch slice length mismatch"
    );
    if k == 0 {
        return RunReport::default();
    }
    let n = xs[0].len();
    let block = 256;
    let grid = n.div_ceil(block).max(1);
    dev.launch("rwr_update", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            for v in 0..k {
                let xv = warp.read_coalesced(xs[v], base, mask);
                let mut vals = [T::ZERO; WARP];
                for lane in 0..WARP {
                    if mask >> lane & 1 == 1 {
                        vals[lane] = c[v] * xv[lane];
                        if Some(base + lane) == seeds[v] {
                            vals[lane] += restart[v];
                        }
                    }
                }
                warp.charge_alu(2);
                warp.charge_flops(2 * u64::from(mask.count_ones()));
                warp.write_coalesced(outs[v], base, &vals, mask);
            }
        });
    })
}

/// Run RWR from `seed` on a planned `W` (any registry format).
pub fn rwr_gpu<T: Scalar>(
    dev: &Device,
    plan: &SpmvPlan<T>,
    seed: usize,
    restart_c: f64,
    params: &IterParams,
) -> SolveResult<T> {
    let engine: &dyn GpuSpmv<T> = plan;
    let n = engine.rows();
    assert_eq!(engine.cols(), n, "RWR operator must be square");
    assert!(seed < n, "seed out of range");
    let c = T::from_f64(restart_c);
    let restart = T::from_f64(1.0 - restart_c);

    // r⁰ = e_seed
    let mut r0 = vec![T::ZERO; n];
    r0[seed] = T::ONE;
    let mut r = dev.alloc(r0);
    let tmp = dev.alloc_zeroed::<T>(n);
    let mut next = dev.alloc_zeroed::<T>(n);
    let mut report = RunReport::default();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        report = report.then(&engine.spmv(dev, &r, &tmp));
        report = report.then(&rwr_update(dev, &tmp, c, restart, seed, &next));
        let (dist2, dr) = l2_distance_sq(dev, &next, &r);
        report = report.then(&dr);
        std::mem::swap(&mut r, &mut next);
        if dist2.sqrt() < params.epsilon || iterations >= params.max_iters {
            break;
        }
    }
    // final relevance vector is copied back to the host
    report = report.then(&dev.record_dtoh("rwr_scores_d2h", (n * std::mem::size_of::<T>()) as u64));
    SolveResult {
        scores: r.into_vec(),
        iterations,
        report,
    }
}

/// CPU reference RWR.
pub fn rwr_cpu<T: Scalar>(
    w: &CsrMatrix<T>,
    seed: usize,
    restart_c: f64,
    params: &IterParams,
) -> (Vec<T>, usize) {
    let n = w.rows();
    let c = T::from_f64(restart_c);
    let restart = T::from_f64(1.0 - restart_c);
    let mut r = vec![T::ZERO; n];
    r[seed] = T::ONE;
    let mut tmp = vec![T::ZERO; n];
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        w.spmv_into(&r, &mut tmp);
        let mut dist2 = 0.0f64;
        for j in 0..n {
            let mut next = c * tmp[j];
            if j == seed {
                next += restart;
            }
            let d = next.to_f64() - r[j].to_f64();
            dist2 += d * d;
            r[j] = next;
        }
        if dist2.sqrt() < params.epsilon || iterations >= params.max_iters {
            return (r, iterations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::presets;
    use graphgen::{generate_power_law, PowerLawConfig};
    use spmv_pipeline::{FormatRegistry, PlanBudget};

    fn plan_for(dev: &Device, m: &CsrMatrix<f64>) -> SpmvPlan<f64> {
        FormatRegistry::<f64>::with_all()
            .plan("ACSR", dev, m, &PlanBudget::default())
            .unwrap()
    }

    fn graph(rows: usize, seed: u64) -> CsrMatrix<f64> {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 6.0,
            max_degree: 250,
            pinned_max_rows: 1,
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn gpu_rwr_matches_cpu_reference() {
        let g = graph(500, 151);
        let w = rwr_operator(&g);
        let dev = Device::new(presets::gtx_titan());
        let engine = plan_for(&dev, &w);
        let params = IterParams::default();
        let gpu = rwr_gpu(&dev, &engine, 3, 0.85, &params);
        let (cpu, cpu_iters) = rwr_cpu(&w, 3, 0.85, &params);
        assert_eq!(gpu.iterations, cpu_iters);
        let d = sparse_formats::scalar::rel_l2_distance(&gpu.scores, &cpu);
        assert!(d < 1e-10, "rel distance {d}");
    }

    #[test]
    fn seed_has_highest_relevance() {
        let g = graph(300, 152);
        let w = rwr_operator(&g);
        let (r, _) = rwr_cpu(&w, 42, 0.85, &IterParams::default());
        let max = r.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(r[42], max);
        assert!(r[42] > 0.0);
    }

    #[test]
    fn relevance_mass_is_bounded() {
        let g = graph(300, 153);
        let w = rwr_operator(&g);
        let (r, _) = rwr_cpu(&w, 0, 0.85, &IterParams::default());
        let total: f64 = r.iter().sum();
        assert!(total <= 1.0 + 1e-9 && total > 0.1, "total {total}");
    }

    #[test]
    fn batched_update_matches_single_bitwise() {
        let dev = Device::new(presets::gtx_titan());
        let n = 300usize;
        let k = 3usize;
        let xs_host: Vec<Vec<f64>> = (0..k)
            .map(|v| (0..n).map(|i| 0.5 + ((i + v) % 11) as f64 * 0.3).collect())
            .collect();
        let xs: Vec<_> = xs_host.iter().map(|x| dev.alloc(x.clone())).collect();
        let c = [0.85, 0.5, 0.99].map(f64::from_f64);
        let restart = [0.15, 0.5, 0.01].map(f64::from_f64);
        let seeds = [Some(0usize), Some(299), None];
        let singles: Vec<_> = (0..k)
            .map(|v| {
                let out = dev.alloc_zeroed::<f64>(n);
                // None = seed outside this slice; n is out of lane range
                rwr_update(&dev, &xs[v], c[v], restart[v], seeds[v].unwrap_or(n), &out);
                out
            })
            .collect();
        let outs: Vec<_> = (0..k).map(|_| dev.alloc_zeroed::<f64>(n)).collect();
        let xr: Vec<_> = xs.iter().collect();
        let or: Vec<_> = outs.iter().collect();
        let r = rwr_update_multi(&dev, &xr, &c, &restart, &seeds, &or);
        assert_eq!(r.launches, 1);
        for v in 0..k {
            for (a, b) in singles[v].as_slice().iter().zip(outs[v].as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "vector {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "seed out of range")]
    fn seed_bounds_are_checked() {
        let g = graph(100, 154);
        let w = rwr_operator(&g);
        let dev = Device::new(presets::gtx_titan());
        let engine = plan_for(&dev, &w);
        let _ = rwr_gpu(&dev, &engine, 100, 0.85, &IterParams::default());
    }
}
