//! ELLPACK (ELL) format.
//!
//! Every row is padded to a common `width`; storage is column-major
//! (`slot * rows + row`) so that consecutive GPU threads — one per row —
//! read consecutive addresses (perfectly coalesced). The price is padding:
//! for skewed matrices the widest row forces enormous dead storage, which
//! is why HYB caps the ELL width and spills the tail to COO (paper §II).

use crate::cost::{timed, PreprocessCost};
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::SpFormat;

/// Column index sentinel marking a padding slot.
pub const ELL_PAD: u32 = u32::MAX;

/// ELL matrix with column-major padded storage.
#[derive(Clone, Debug, PartialEq)]
pub struct EllMatrix<T> {
    rows: usize,
    cols: usize,
    width: usize,
    /// `width * rows` column indices, `ELL_PAD` in padding slots.
    col_indices: Vec<u32>,
    /// `width * rows` values, zero in padding slots.
    values: Vec<T>,
    /// True non-zero count (excluding padding).
    nnz: usize,
}

impl<T: Scalar> EllMatrix<T> {
    /// Convert from CSR with `width` = the widest row.
    ///
    /// Fails with [`SparseError::CapacityExceeded`] when padded storage
    /// would exceed `max_bytes` — this models the ∅ (out-of-memory) cells
    /// of the paper's tables for formats that pad.
    pub fn from_csr(
        csr: &CsrMatrix<T>,
        max_bytes: usize,
    ) -> Result<(Self, PreprocessCost), SparseError> {
        let width = (0..csr.rows()).map(|r| csr.row_nnz(r)).max().unwrap_or(0);
        Self::from_csr_with_width(csr, width, max_bytes)
    }

    /// Convert from CSR padding to an explicit `width`.
    ///
    /// Every row must fit: a row longer than `width` is an error (HYB uses
    /// [`Self::from_csr_truncated`] instead to spill the excess).
    pub fn from_csr_with_width(
        csr: &CsrMatrix<T>,
        width: usize,
        max_bytes: usize,
    ) -> Result<(Self, PreprocessCost), SparseError> {
        if let Some(r) = (0..csr.rows()).find(|&r| csr.row_nnz(r) > width) {
            return Err(SparseError::InvalidStructure(format!(
                "row {r} has {} non-zeros > ELL width {width}",
                csr.row_nnz(r)
            )));
        }
        let (ell, cost) = Self::from_csr_truncated(csr, width, max_bytes)?;
        Ok((ell.0, cost))
    }

    /// Convert from CSR keeping at most `width` leading entries per row;
    /// returns the ELL part plus the spilled `(row, col, value)` tail
    /// (row-major sorted) for HYB assembly.
    #[allow(clippy::type_complexity)]
    pub fn from_csr_truncated(
        csr: &CsrMatrix<T>,
        width: usize,
        max_bytes: usize,
    ) -> Result<((Self, Vec<(u32, u32, T)>), PreprocessCost), SparseError> {
        let rows = csr.rows();
        let padded = width
            .checked_mul(rows)
            .ok_or_else(|| SparseError::CapacityExceeded {
                format: "ELL",
                detail: "width * rows overflows".into(),
            })?;
        let bytes = padded * (4 + T::BYTES);
        if bytes > max_bytes {
            return Err(SparseError::CapacityExceeded {
                format: "ELL",
                detail: format!("padded storage {bytes} B exceeds budget {max_bytes} B"),
            });
        }
        let (out, cost) = timed(|cost| {
            let mut col_indices = vec![ELL_PAD; padded];
            let mut values = vec![T::ZERO; padded];
            let mut tail: Vec<(u32, u32, T)> = Vec::new();
            let mut nnz = 0usize;
            for r in 0..rows {
                let (cols, vals) = csr.row(r);
                for (slot, (c, v)) in cols.iter().zip(vals.iter()).enumerate() {
                    if slot < width {
                        // column-major: slot-major stride of `rows`
                        col_indices[slot * rows + r] = *c;
                        values[slot * rows + r] = *v;
                        nnz += 1;
                    } else {
                        tail.push((r as u32, *c, *v));
                    }
                }
            }
            cost.bytes_read += csr.nnz() as u64 * (4 + T::BYTES as u64);
            cost.bytes_written += padded as u64 * (4 + T::BYTES as u64);
            (
                EllMatrix {
                    rows,
                    cols: csr.cols(),
                    width,
                    col_indices,
                    values,
                    nnz,
                },
                tail,
            )
        });
        Ok((out, cost))
    }

    /// Padded width (entries per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Column-major column index array (padding = [`ELL_PAD`]).
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Column-major value array (padding = 0).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Fraction of slots that are padding (the paper reports HYB pays
    /// ~33% padding on its suite).
    pub fn padding_fraction(&self) -> f64 {
        if self.col_indices.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz as f64 / self.col_indices.len() as f64
    }

    /// Sequential reference SpMV accumulating into `y`.
    pub fn spmv_accumulate(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.cols, "spmv: x length != cols");
        assert_eq!(y.len(), self.rows, "spmv: y length != rows");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut sum = T::ZERO;
            for slot in 0..self.width {
                let c = self.col_indices[slot * self.rows + r];
                if c != ELL_PAD {
                    sum += self.values[slot * self.rows + r] * x[c as usize];
                }
            }
            *yr += sum;
        }
    }

    /// Standalone SpMV.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; self.rows];
        self.spmv_accumulate(x, &mut y);
        y
    }
}

impl<T: Scalar> SpFormat for EllMatrix<T> {
    fn format_name(&self) -> &'static str {
        "ELL"
    }
    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn storage_bytes(&self) -> usize {
        self.col_indices.len() * 4 + self.values.len() * T::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn example() -> CsrMatrix<f64> {
        // row lengths 2, 0, 3
        let mut t = TripletMatrix::new(3, 4);
        t.push(0, 0, 1.0).unwrap();
        t.push(0, 2, 2.0).unwrap();
        t.push(2, 0, 3.0).unwrap();
        t.push(2, 1, 4.0).unwrap();
        t.push(2, 3, 5.0).unwrap();
        t.to_csr()
    }

    #[test]
    fn width_defaults_to_longest_row() {
        let (ell, _) = EllMatrix::from_csr(&example(), usize::MAX).unwrap();
        assert_eq!(ell.width(), 3);
        assert_eq!(ell.nnz(), 5);
    }

    #[test]
    fn column_major_layout() {
        let (ell, _) = EllMatrix::from_csr(&example(), usize::MAX).unwrap();
        // slot 0 holds first entry of each row: cols [0, PAD, 0]
        assert_eq!(ell.col_indices()[0], 0);
        assert_eq!(ell.col_indices()[1], ELL_PAD);
        assert_eq!(ell.col_indices()[2], 0);
    }

    #[test]
    fn spmv_matches_csr() {
        let m = example();
        let (ell, _) = EllMatrix::from_csr(&m, usize::MAX).unwrap();
        let x = vec![1.0, 10.0, 100.0, 1000.0];
        assert_eq!(ell.spmv(&x), m.spmv(&x));
    }

    #[test]
    fn capacity_budget_rejects_padding_explosion() {
        let m = example();
        let e = EllMatrix::from_csr(&m, 8);
        assert!(matches!(e, Err(SparseError::CapacityExceeded { .. })));
    }

    #[test]
    fn truncated_conversion_spills_tail() {
        let m = example();
        let ((ell, tail), _) = EllMatrix::from_csr_truncated(&m, 2, usize::MAX).unwrap();
        assert_eq!(ell.width(), 2);
        assert_eq!(ell.nnz(), 4);
        assert_eq!(tail, vec![(2, 3, 5.0)]);
        // ELL part + tail together reproduce the matrix
        let x = vec![1.0, 10.0, 100.0, 1000.0];
        let mut y = ell.spmv(&x);
        for (r, c, v) in tail {
            y[r as usize] += v * x[c as usize];
        }
        assert_eq!(y, m.spmv(&x));
    }

    #[test]
    fn explicit_width_rejects_overlong_rows() {
        let m = example();
        assert!(EllMatrix::from_csr_with_width(&m, 2, usize::MAX).is_err());
        assert!(EllMatrix::from_csr_with_width(&m, 3, usize::MAX).is_ok());
    }

    #[test]
    fn padding_fraction_reflects_skew() {
        let m = example();
        let (ell, _) = EllMatrix::from_csr(&m, usize::MAX).unwrap();
        // 9 slots, 5 filled
        assert!((ell.padding_fraction() - 4.0 / 9.0).abs() < 1e-12);
    }
}
