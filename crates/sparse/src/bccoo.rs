//! BCCOO — Blocked Compressed COO (Yan et al. \[27\], yaSpMV, PPoPP'14).
//!
//! Non-zeros are gathered into dense `block_h x block_w` tiles; tile *row*
//! indices are difference-compressed into a bit-flag vector (a set bit
//! marks "this tile starts the next row stripe"), and SpMV runs as a
//! segmented scan over tiles. The format's performance depends strongly on
//! its configuration, so the original system ships an **auto-tuner** that
//! searches >300 configurations — the preprocessing cost that dominates
//! the paper's Figure 4 (average 161,000x one SpMV).
//!
//! This module provides the format, its conversion, and the configuration
//! space ([`BccooConfig::search_space`]); the tuning driver that evaluates
//! configurations on a simulated device lives in `spmv-kernels`.

use crate::cost::{timed, PreprocessCost};
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::SpFormat;

/// One BCCOO kernel/storage configuration (a point in the tuning space).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BccooConfig {
    /// Tile height in rows.
    pub block_h: usize,
    /// Tile width in columns.
    pub block_w: usize,
    /// GPU workgroup size used by the SpMV kernel.
    pub workgroup: usize,
    /// Tiles processed per thread (thread coarsening).
    pub thread_load: usize,
    /// Read `x` through the texture cache.
    pub texture_x: bool,
}

impl Default for BccooConfig {
    fn default() -> Self {
        BccooConfig {
            block_h: 1,
            block_w: 4,
            workgroup: 256,
            thread_load: 1,
            texture_x: true,
        }
    }
}

impl BccooConfig {
    /// The full auto-tuning search space — 320 configurations, matching
    /// the paper's remark that the space has "more than 300 settings".
    pub fn search_space() -> Vec<BccooConfig> {
        let mut v = Vec::new();
        for &block_h in &[1usize, 2, 4, 8] {
            for &block_w in &[1usize, 2, 4, 8] {
                for &workgroup in &[64usize, 128, 256, 512, 1024] {
                    for &thread_load in &[1usize, 2] {
                        for &texture_x in &[false, true] {
                            v.push(BccooConfig {
                                block_h,
                                block_w,
                                workgroup,
                                thread_load,
                                texture_x,
                            });
                        }
                    }
                }
            }
        }
        v
    }
}

/// BCCOO matrix: dense tiles + bit-flag compressed tile rows.
#[derive(Clone, Debug, PartialEq)]
pub struct BccooMatrix<T> {
    rows: usize,
    cols: usize,
    nnz: usize,
    config: BccooConfig,
    /// Tile base row (multiple of `block_h`) per tile.
    tile_rows: Vec<u32>,
    /// Tile base column (multiple of `block_w`) per tile.
    tile_cols: Vec<u32>,
    /// Bit flags, one per tile: bit set ⇔ this tile begins a new row
    /// stripe (difference compression of `tile_rows`; kept alongside the
    /// explicit array so both the compressed walk and random access work).
    row_flags: Vec<u64>,
    /// Dense tile payloads, `block_h * block_w` values each, row-major
    /// within the tile.
    tile_values: Vec<T>,
}

impl<T: Scalar> BccooMatrix<T> {
    /// Convert from CSR under `config`.
    pub fn from_csr(
        csr: &CsrMatrix<T>,
        config: BccooConfig,
        max_bytes: usize,
    ) -> Result<(Self, PreprocessCost), SparseError> {
        let (bh, bw) = (config.block_h, config.block_w);
        assert!(bh > 0 && bw > 0, "BCCOO tiles must be non-empty");
        let (out, cost) = timed(|cost| {
            // Pass 1: enumerate (tile_row, tile_col, in-tile pos, value).
            let mut keyed: Vec<(u64, u32, T)> = Vec::with_capacity(csr.nnz());
            for (r, c, v) in csr.iter() {
                let tr = (r / bh) as u64;
                let tc = (c / bw) as u64;
                let pos = ((r % bh) * bw + (c % bw)) as u32;
                keyed.push(((tr << 32) | tc, pos, v));
            }
            keyed.sort_unstable_by_key(|e| e.0);
            cost.charge_sort(keyed.len() as u64, 16);
            keyed
        });
        let keyed = out;
        let mut cost = cost;

        let (built, build_cost) = timed(|c| {
            let tile_len = bh * bw;
            let mut tile_rows: Vec<u32> = Vec::new();
            let mut tile_cols: Vec<u32> = Vec::new();
            let mut tile_values: Vec<T> = Vec::new();
            let mut last_key = u64::MAX;
            for (key, pos, v) in keyed {
                if key != last_key {
                    tile_rows.push(((key >> 32) as u32) * bh as u32);
                    tile_cols.push((key as u32) * bw as u32);
                    tile_values.extend(std::iter::repeat_n(T::ZERO, tile_len));
                    last_key = key;
                }
                let base = tile_values.len() - tile_len;
                tile_values[base + pos as usize] += v;
            }
            let n_tiles = tile_rows.len();
            let mut row_flags = vec![0u64; n_tiles.div_ceil(64)];
            for i in 0..n_tiles {
                let new_stripe = i == 0 || tile_rows[i] != tile_rows[i - 1];
                if new_stripe {
                    row_flags[i / 64] |= 1u64 << (i % 64);
                }
            }
            c.bytes_read += csr.nnz() as u64 * (8 + T::BYTES as u64);
            c.bytes_written += n_tiles as u64 * 8
                + (tile_values.len() as u64) * T::BYTES as u64
                + row_flags.len() as u64 * 8;
            (tile_rows, tile_cols, row_flags, tile_values)
        });
        cost.merge(&build_cost);
        let (tile_rows, tile_cols, row_flags, tile_values) = built;

        let bytes = tile_rows.len() * 8 + tile_values.len() * T::BYTES + row_flags.len() * 8;
        if bytes > max_bytes {
            return Err(SparseError::CapacityExceeded {
                format: "BCCOO",
                detail: format!("tiled storage {bytes} B exceeds budget {max_bytes} B"),
            });
        }
        Ok((
            BccooMatrix {
                rows: csr.rows(),
                cols: csr.cols(),
                nnz: csr.nnz(),
                config,
                tile_rows,
                tile_cols,
                row_flags,
                tile_values,
            },
            cost,
        ))
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> BccooConfig {
        self.config
    }

    /// Number of stored tiles.
    pub fn n_tiles(&self) -> usize {
        self.tile_rows.len()
    }

    /// Tile base rows.
    pub fn tile_rows(&self) -> &[u32] {
        &self.tile_rows
    }

    /// Tile base columns.
    pub fn tile_cols(&self) -> &[u32] {
        &self.tile_cols
    }

    /// Tile payloads (`n_tiles * block_h * block_w` values).
    pub fn tile_values(&self) -> &[T] {
        &self.tile_values
    }

    /// Bit flags marking row-stripe starts.
    pub fn row_flags(&self) -> &[u64] {
        &self.row_flags
    }

    /// `true` when tile `i` starts a new row stripe.
    #[inline]
    pub fn starts_stripe(&self, i: usize) -> bool {
        self.row_flags[i / 64] >> (i % 64) & 1 == 1
    }

    /// Fill ratio of tile payload slots (1.0 = perfectly dense tiles).
    pub fn fill_ratio(&self) -> f64 {
        if self.tile_values.is_empty() {
            return 1.0;
        }
        self.nnz as f64 / self.tile_values.len() as f64
    }

    /// Sequential reference SpMV.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "spmv: x length != cols");
        let (bh, bw) = (self.config.block_h, self.config.block_w);
        let mut y = vec![T::ZERO; self.rows];
        for t in 0..self.n_tiles() {
            let base_r = self.tile_rows[t] as usize;
            let base_c = self.tile_cols[t] as usize;
            let vals = &self.tile_values[t * bh * bw..(t + 1) * bh * bw];
            for i in 0..bh {
                let r = base_r + i;
                if r >= self.rows {
                    break;
                }
                let mut sum = T::ZERO;
                for j in 0..bw {
                    let c = base_c + j;
                    if c < self.cols {
                        sum += vals[i * bw + j] * x[c];
                    }
                }
                y[r] += sum;
            }
        }
        y
    }
}

impl<T: Scalar> SpFormat for BccooMatrix<T> {
    fn format_name(&self) -> &'static str {
        "BCCOO"
    }
    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn storage_bytes(&self) -> usize {
        self.tile_rows.len() * 8 + self.row_flags.len() * 8 + self.tile_values.len() * T::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn banded(rows: usize) -> CsrMatrix<f64> {
        let mut t = TripletMatrix::new(rows, rows);
        for r in 0..rows {
            for d in 0..4usize {
                let c = (r + d * 3) % rows;
                t.push(r, c, (r * 4 + d) as f64 * 0.5 + 1.0).unwrap();
            }
        }
        t.to_csr()
    }

    #[test]
    fn search_space_exceeds_three_hundred() {
        let space = BccooConfig::search_space();
        assert!(space.len() > 300, "only {} configs", space.len());
        // all distinct
        let set: std::collections::HashSet<_> = space.iter().collect();
        assert_eq!(set.len(), space.len());
    }

    #[test]
    fn spmv_matches_csr_for_various_tiles() {
        let m = banded(257);
        let x: Vec<f64> = (0..257).map(|i| 1.0 + (i % 11) as f64 * 0.125).collect();
        let y_ref = m.spmv(&x);
        for cfg in [
            BccooConfig::default(),
            BccooConfig {
                block_h: 2,
                block_w: 2,
                ..Default::default()
            },
            BccooConfig {
                block_h: 4,
                block_w: 8,
                ..Default::default()
            },
        ] {
            let (b, _) = BccooMatrix::from_csr(&m, cfg, usize::MAX).unwrap();
            let y = b.spmv(&x);
            for (a, bb) in y.iter().zip(y_ref.iter()) {
                assert!((a - bb).abs() < 1e-9, "cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn first_tile_always_starts_a_stripe() {
        let m = banded(64);
        let (b, _) = BccooMatrix::from_csr(&m, BccooConfig::default(), usize::MAX).unwrap();
        assert!(b.starts_stripe(0));
    }

    #[test]
    fn stripe_flags_match_tile_rows() {
        let m = banded(128);
        let cfg = BccooConfig {
            block_h: 2,
            block_w: 4,
            ..Default::default()
        };
        let (b, _) = BccooMatrix::from_csr(&m, cfg, usize::MAX).unwrap();
        for i in 1..b.n_tiles() {
            let expect = b.tile_rows()[i] != b.tile_rows()[i - 1];
            assert_eq!(b.starts_stripe(i), expect, "tile {i}");
        }
    }

    #[test]
    fn fill_ratio_is_one_for_1x1_tiles() {
        let m = banded(64);
        let cfg = BccooConfig {
            block_h: 1,
            block_w: 1,
            ..Default::default()
        };
        let (b, _) = BccooMatrix::from_csr(&m, cfg, usize::MAX).unwrap();
        assert!((b.fill_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(b.n_tiles(), m.nnz());
    }

    #[test]
    fn conversion_records_sort_cost() {
        let m = banded(512);
        let (_, cost) = BccooMatrix::from_csr(&m, BccooConfig::default(), usize::MAX).unwrap();
        assert_eq!(cost.sorted_elements, m.nnz() as u64);
    }

    #[test]
    fn edge_tiles_clip_at_matrix_boundary() {
        // rows=5 not divisible by block_h=4: last stripe clips
        let mut t = TripletMatrix::<f64>::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0).unwrap();
        }
        let m = t.to_csr();
        let cfg = BccooConfig {
            block_h: 4,
            block_w: 4,
            ..Default::default()
        };
        let (b, _) = BccooMatrix::from_csr(&m, cfg, usize::MAX).unwrap();
        let y = b.spmv(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
