//! Compressed Sparse Row — the canonical format everything converts from.
//!
//! ACSR's whole premise (paper §I) is that CSR is what applications already
//! hold: PETSc/Hypre use it, graphs arrive as CSR adjacency structures, and
//! dynamic-graph pipelines cannot afford to re-encode it. This module is
//! therefore the hub of the crate: the builder targets it and every other
//! format converts *from* it, reporting its preprocessing cost.

use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::stats::RowLengthStats;
use crate::SpFormat;

/// CSR sparse matrix: row offsets + column indices + values.
///
/// Invariants (checked by [`CsrMatrix::from_raw_parts`] and preserved by
/// all methods):
/// * `row_offsets.len() == rows + 1`, `row_offsets[0] == 0`,
///   `row_offsets` non-decreasing, last entry `== nnz`;
/// * `col_indices.len() == values.len() == nnz`;
/// * every column index `< cols`;
/// * column indices strictly increasing within each row (sorted, no dups).
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix<T> {
    rows: usize,
    cols: usize,
    row_offsets: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Build from raw arrays, validating every invariant listed on the type.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_offsets: Vec<u32>,
        col_indices: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if row_offsets.len() != rows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "row_offsets has {} entries, expected rows+1 = {}",
                row_offsets.len(),
                rows + 1
            )));
        }
        if row_offsets[0] != 0 {
            return Err(SparseError::InvalidStructure(
                "row_offsets[0] must be 0".into(),
            ));
        }
        if col_indices.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "col_indices ({}) and values ({}) length mismatch",
                col_indices.len(),
                values.len()
            )));
        }
        if *row_offsets.last().unwrap() as usize != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "last row offset {} != nnz {}",
                row_offsets.last().unwrap(),
                values.len()
            )));
        }
        for r in 0..rows {
            if row_offsets[r] > row_offsets[r + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "row_offsets decreasing at row {r}"
                )));
            }
            let lo = row_offsets[r] as usize;
            let hi = row_offsets[r + 1] as usize;
            for k in lo..hi {
                if col_indices[k] as usize >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: col_indices[k] as usize,
                        rows,
                        cols,
                    });
                }
                if k > lo && col_indices[k] <= col_indices[k - 1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {r} column indices not strictly increasing at position {k}"
                    )));
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
        })
    }

    /// Empty `rows x cols` matrix (all zeros).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_offsets: vec![0; rows + 1],
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_offsets: (0..=n as u32).collect(),
            col_indices: (0..n as u32).collect(),
            values: vec![T::ONE; n],
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row offset array (`rows + 1` entries).
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// Column index array (`nnz` entries, sorted within each row).
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Value array (`nnz` entries).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Number of non-zeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_offsets[r + 1] - self.row_offsets[r]) as usize
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[T]) {
        let lo = self.row_offsets[r] as usize;
        let hi = self.row_offsets[r + 1] as usize;
        (&self.col_indices[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(r, c)`, or zero if not stored. Binary search within row.
    pub fn get(&self, r: usize, c: usize) -> T {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(k) => vals[k],
            Err(_) => T::ZERO,
        }
    }

    /// Sequential reference SpMV: `y = A * x`.
    ///
    /// This is the correctness oracle for every kernel in the workspace.
    pub fn spmv_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.cols, "spmv: x length != cols");
        assert_eq!(y.len(), self.rows, "spmv: y length != rows");
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut sum = T::ZERO;
            for (c, v) in cols.iter().zip(vals.iter()) {
                sum += *v * x[*c as usize];
            }
            *yr = sum;
        }
    }

    /// Allocating convenience wrapper over [`Self::spmv_into`].
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; self.rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Transpose (`O(nnz)` counting transpose; result rows sorted).
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut counts = vec![0u32; self.cols + 1];
        for &c in &self.col_indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_offsets = counts.clone();
        let mut col_indices = vec![0u32; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals.iter()) {
                let dst = cursor[*c as usize] as usize;
                col_indices[dst] = r as u32;
                values[dst] = *v;
                cursor[*c as usize] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Row-normalize in place: each non-empty row scaled to sum to 1
    /// (PageRank's row-stochastic adjacency, paper Alg. 5).
    pub fn row_normalize(&mut self) {
        for r in 0..self.rows {
            let lo = self.row_offsets[r] as usize;
            let hi = self.row_offsets[r + 1] as usize;
            let mut sum = T::ZERO;
            for v in &self.values[lo..hi] {
                sum += *v;
            }
            if sum != T::ZERO {
                for v in &mut self.values[lo..hi] {
                    *v /= sum;
                }
            }
        }
    }

    /// Column-normalize: each non-empty column scaled to sum to 1
    /// (RWR's column-stochastic `W`, paper Eq. 8). Returns a new matrix.
    pub fn column_normalize(&self) -> CsrMatrix<T> {
        let mut col_sums = vec![T::ZERO; self.cols];
        for (k, &c) in self.col_indices.iter().enumerate() {
            col_sums[c as usize] += self.values[k];
        }
        let mut out = self.clone();
        for (k, &c) in self.col_indices.iter().enumerate() {
            let s = col_sums[c as usize];
            if s != T::ZERO {
                out.values[k] /= s;
            }
        }
        out
    }

    /// Per-row non-zero statistics (μ, σ, max — the Table I columns).
    pub fn row_stats(&self) -> RowLengthStats {
        RowLengthStats::from_lengths(
            self.rows,
            self.cols,
            (0..self.rows).map(|r| self.row_nnz(r)),
        )
    }

    /// Iterate `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals.iter())
                .map(move |(c, v)| (r, *c as usize, *v))
        })
    }

    /// Build the 2n x 2n HITS coupling matrix `[[0, Aᵀ], [A, 0]]`
    /// (paper Eq. 7) so authority and hub updates become one SpMV.
    pub fn hits_coupling(&self) -> CsrMatrix<T> {
        assert_eq!(
            self.rows, self.cols,
            "hits_coupling requires a square adjacency matrix"
        );
        let n = self.rows;
        let at = self.transpose();
        let nnz = self.nnz() + at.nnz();
        let mut row_offsets = Vec::with_capacity(2 * n + 1);
        let mut col_indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_offsets.push(0u32);
        // Top block rows: [0 | Aᵀ] — Aᵀ columns shifted by n.
        for r in 0..n {
            let (cols, vals) = at.row(r);
            for (c, v) in cols.iter().zip(vals.iter()) {
                col_indices.push(c + n as u32);
                values.push(*v);
            }
            row_offsets.push(col_indices.len() as u32);
        }
        // Bottom block rows: [A | 0].
        for r in 0..n {
            let (cols, vals) = self.row(r);
            col_indices.extend_from_slice(cols);
            values.extend_from_slice(vals);
            row_offsets.push(col_indices.len() as u32);
        }
        CsrMatrix {
            rows: 2 * n,
            cols: 2 * n,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Densify (tests and tiny examples only).
    pub fn to_dense(&self) -> Vec<Vec<T>> {
        let mut d = vec![vec![T::ZERO; self.cols]; self.rows];
        for (r, c, v) in self.iter() {
            d[r][c] = v;
        }
        d
    }
}

impl<T: Scalar> SpFormat for CsrMatrix<T> {
    fn format_name(&self) -> &'static str {
        "CSR"
    }
    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn storage_bytes(&self) -> usize {
        self.row_offsets.len() * 4 + self.col_indices.len() * 4 + self.values.len() * T::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn example() -> CsrMatrix<f64> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0).unwrap();
        t.push(0, 2, 2.0).unwrap();
        t.push(2, 0, 3.0).unwrap();
        t.push(2, 1, 4.0).unwrap();
        t.to_csr()
    }

    #[test]
    fn from_raw_parts_validates_offsets() {
        let bad = CsrMatrix::<f64>::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(bad.is_err());
        let bad = CsrMatrix::<f64>::from_raw_parts(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(bad.is_err());
    }

    #[test]
    fn from_raw_parts_rejects_unsorted_rows() {
        let bad = CsrMatrix::<f64>::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(bad.is_err());
        let dup = CsrMatrix::<f64>::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
        assert!(dup.is_err());
    }

    #[test]
    fn from_raw_parts_rejects_col_out_of_range() {
        let bad = CsrMatrix::<f64>::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(bad, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn spmv_matches_dense_computation() {
        let m = example();
        let y = m.spmv(&[1.0, 10.0, 100.0]);
        assert_eq!(y, vec![201.0, 0.0, 43.0]);
    }

    #[test]
    fn get_returns_stored_and_zero() {
        let m = example();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
    }

    #[test]
    fn transpose_round_trips() {
        let m = example();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_swaps_entries() {
        let m = example();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.shape(), (3, 3));
    }

    #[test]
    fn identity_spmv_is_identity() {
        let i = CsrMatrix::<f32>::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.spmv(&x), x);
    }

    #[test]
    fn row_normalize_makes_rows_stochastic() {
        let mut m = example();
        m.row_normalize();
        let (_, vals0) = m.row(0);
        let s: f64 = vals0.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(m.row_nnz(1), 0); // empty row untouched
    }

    #[test]
    fn column_normalize_makes_cols_stochastic() {
        let m = example().column_normalize();
        // column 0 had entries 1.0 (row 0) and 3.0 (row 2)
        assert!((m.get(0, 0) - 0.25).abs() < 1e-12);
        assert!((m.get(2, 0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hits_coupling_has_block_structure() {
        let m = example();
        let h = m.hits_coupling();
        assert_eq!(h.shape(), (6, 6));
        assert_eq!(h.nnz(), 2 * m.nnz());
        // top-left and bottom-right blocks empty
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(h.get(r, c), 0.0);
                assert_eq!(h.get(r + 3, c + 3), 0.0);
            }
        }
        // top-right is Aᵀ, bottom-left is A
        assert_eq!(h.get(0, 3 + 2), 3.0); // Aᵀ[0][2] = A[2][0]
        assert_eq!(h.get(3 + 2, 1), 4.0); // A[2][1]
    }

    #[test]
    fn row_stats_match_structure() {
        let m = example();
        let s = m.row_stats();
        assert_eq!(s.nnz, 4);
        assert_eq!(s.max_row, 2);
        assert!((s.mean - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn storage_bytes_counts_all_arrays() {
        let m = example();
        assert_eq!(m.storage_bytes(), 4 * 4 + 4 * 4 + 4 * 8);
    }

    #[test]
    fn zeros_and_empty_spmv() {
        let m = CsrMatrix::<f64>::zeros(3, 2);
        assert_eq!(m.spmv(&[1.0, 2.0]), vec![0.0; 3]);
    }
}
