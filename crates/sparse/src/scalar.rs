//! Numeric element abstraction.
//!
//! The paper evaluates both single- and double-precision SpMV (Fig. 5, 8);
//! everything downstream is generic over [`Scalar`] so each experiment can
//! run in either precision.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type for sparse matrices and vectors.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Sum
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of one element in device memory, in bytes.
    const BYTES: usize;
    /// Precision name used in experiment tables ("f32" / "f64").
    const NAME: &'static str;

    /// Lossy conversion from `f64` (generator output, damping factors, ...).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion for error measurement and reporting.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root (used by Euclidean convergence tests).
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` when the value is finite (not NaN/±inf).
    fn is_finite(self) -> bool;

    /// Convenience conversion from a usize count (e.g. `1/n` initial ranks).
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
}

macro_rules! impl_scalar {
    ($t:ty, $name:literal) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const BYTES: usize = std::mem::size_of::<$t>();
            const NAME: &'static str = $name;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_scalar!(f32, "f32");
impl_scalar!(f64, "f64");

/// Relative L2 distance between two vectors, `‖a-b‖₂ / max(‖b‖₂, ε)`.
///
/// Used throughout the test suite to compare kernel outputs against the
/// sequential reference while tolerating float reassociation.
pub fn rel_l2_distance<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "rel_l2_distance: length mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x.to_f64() - y.to_f64();
        num += d * d;
        den += y.to_f64() * y.to_f64();
    }
    (num / den.max(1e-300)).sqrt()
}

/// Euclidean (L2) distance between two vectors — the convergence measure
/// the paper uses for PageRank/HITS/RWR (§VI, ε = 1e-6).
pub fn l2_distance<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "l2_distance: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x.to_f64() - y.to_f64();
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_identities() {
        assert_eq!(f32::ZERO + 1.5f32, 1.5);
        assert_eq!(f64::ONE * 2.5f64, 2.5);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f64 as Scalar>::BYTES, 8);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f64::from_f64(3.25).to_f64(), 3.25);
        assert_eq!(f32::from_usize(7).to_f64(), 7.0);
    }

    #[test]
    fn mul_add_is_fused_product_sum() {
        let r = 2.0f64.mul_add(3.0, 4.0);
        assert_eq!(r, 10.0);
    }

    #[test]
    fn l2_distance_of_identical_vectors_is_zero() {
        let v = vec![1.0f64, -2.0, 3.0];
        assert_eq!(l2_distance(&v, &v), 0.0);
    }

    #[test]
    fn l2_distance_matches_hand_computation() {
        let a = vec![1.0f32, 0.0];
        let b = vec![0.0f32, 0.0];
        assert!((l2_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rel_l2_tolerates_scale() {
        let a = vec![1e10f64, 2e10];
        let b = vec![1e10f64 * (1.0 + 1e-9), 2e10];
        assert!(rel_l2_distance(&a, &b) < 1e-8);
    }
}
