//! Row-length statistics and histograms.
//!
//! These are the quantities of the paper's Table I (NNZ, rows, μ, σ, max)
//! and Figure 3 (the power-law row-length histogram whose long tail
//! motivates ACSR's dynamic-parallelism path).

use serde::{Deserialize, Serialize};

/// Summary of a matrix's per-row non-zero distribution.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RowLengthStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Total non-zeros.
    pub nnz: usize,
    /// Mean non-zeros per row (μ).
    pub mean: f64,
    /// Standard deviation of non-zeros per row (σ).
    pub std_dev: f64,
    /// Maximum non-zeros in any row.
    pub max_row: usize,
    /// Minimum non-zeros in any row.
    pub min_row: usize,
    /// Number of completely empty rows.
    pub empty_rows: usize,
}

impl RowLengthStats {
    /// Compute from an iterator of row lengths.
    pub fn from_lengths(
        rows: usize,
        cols: usize,
        lengths: impl Iterator<Item = usize>,
    ) -> RowLengthStats {
        let mut nnz = 0usize;
        let mut max_row = 0usize;
        let mut min_row = usize::MAX;
        let mut empty_rows = 0usize;
        let mut count = 0usize;
        // Welford's online algorithm: the textbook E[x²] − μ² form
        // cancels catastrophically once Σx² grows past ~2^53 (lengths
        // around 1e8 already get there in a handful of rows), whereas
        // Welford accumulates centered deviations and stays accurate.
        let mut run_mean = 0f64;
        let mut m2 = 0f64;
        for len in lengths {
            nnz += len;
            max_row = max_row.max(len);
            min_row = min_row.min(len);
            if len == 0 {
                empty_rows += 1;
            }
            count += 1;
            let x = len as f64;
            let d = x - run_mean;
            run_mean += d / count as f64;
            m2 += d * (x - run_mean);
        }
        assert_eq!(count, rows, "row length iterator does not match row count");
        let mean = if rows > 0 {
            nnz as f64 / rows as f64
        } else {
            0.0
        };
        let var = if rows > 0 {
            (m2 / rows as f64).max(0.0)
        } else {
            0.0
        };
        RowLengthStats {
            rows,
            cols,
            nnz,
            mean,
            std_dev: var.sqrt(),
            max_row,
            min_row: if rows == 0 { 0 } else { min_row },
            empty_rows,
        }
    }

    /// The paper's power-law indicator: σ and max both well above μ.
    /// (AMZ and DBL in Table I fail this test; the rest pass.)
    pub fn looks_power_law(&self) -> bool {
        self.std_dev > self.mean && (self.max_row as f64) > 8.0 * self.mean.max(1.0)
    }
}

/// Log2-binned row-length histogram (Figure 3). Bin `i` counts rows whose
/// non-zero count lies in the ACSR bin range: bin 0 holds empty rows, bin
/// `i >= 1` holds lengths in `[2^(i-1)+1 .. 2^i]` — except bin 1 which holds
/// lengths 1..2, matching the paper's binning (§III-A).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegreeHistogram {
    /// `counts[i]` = number of rows in bin `i`.
    pub counts: Vec<usize>,
    /// Total rows histogrammed.
    pub total_rows: usize,
}

/// ACSR bin index for a row of length `len` (paper §III-A):
/// bin 1 ⇔ len ∈ {1, 2}, bin 2 ⇔ {3, 4}, bin 3 ⇔ {5..8}, …,
/// bin i ⇔ [2^(i-1)+1 .. 2^i]. Empty rows map to bin 0.
#[inline]
pub fn bin_index(len: usize) -> usize {
    match len {
        0 => 0,
        1 | 2 => 1,
        _ => (usize::BITS - (len - 1).leading_zeros()) as usize,
    }
}

/// Inclusive row-length range `(lo, hi)` covered by bin `i`.
#[inline]
pub fn bin_range(i: usize) -> (usize, usize) {
    match i {
        0 => (0, 0),
        1 => (1, 2),
        _ => ((1 << (i - 1)) + 1, 1 << i),
    }
}

impl DegreeHistogram {
    /// Histogram an iterator of row lengths into ACSR bins.
    pub fn from_lengths(lengths: impl Iterator<Item = usize>) -> DegreeHistogram {
        let mut counts: Vec<usize> = Vec::new();
        let mut total_rows = 0usize;
        for len in lengths {
            let b = bin_index(len);
            if b >= counts.len() {
                counts.resize(b + 1, 0);
            }
            counts[b] += 1;
            total_rows += 1;
        }
        DegreeHistogram { counts, total_rows }
    }

    /// Fraction of rows in each bin (the y-axis of Figure 3).
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total_rows == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total_rows as f64)
            .collect()
    }

    /// Largest non-empty bin index (`n` in Algorithm 1).
    pub fn max_bin(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_index_matches_paper_ranges() {
        assert_eq!(bin_index(0), 0);
        assert_eq!(bin_index(1), 1);
        assert_eq!(bin_index(2), 1);
        assert_eq!(bin_index(3), 2);
        assert_eq!(bin_index(4), 2);
        assert_eq!(bin_index(5), 3);
        assert_eq!(bin_index(8), 3);
        assert_eq!(bin_index(9), 4);
        assert_eq!(bin_index(16), 4);
        assert_eq!(bin_index(17), 5);
        assert_eq!(bin_index(33), 6);
        assert_eq!(bin_index(64), 6);
        assert_eq!(bin_index(65), 7);
    }

    #[test]
    fn bin_range_is_inverse_of_bin_index() {
        for i in 1..20 {
            let (lo, hi) = bin_range(i);
            assert_eq!(bin_index(lo), i, "lo of bin {i}");
            assert_eq!(bin_index(hi), i, "hi of bin {i}");
            if i > 1 {
                assert_eq!(bin_index(lo - 1), i - 1);
            }
        }
    }

    #[test]
    fn stats_of_uniform_lengths_have_zero_sigma() {
        let s = RowLengthStats::from_lengths(4, 10, [3usize, 3, 3, 3].into_iter());
        assert_eq!(s.nnz, 12);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.max_row, 3);
        assert_eq!(s.min_row, 3);
        assert!(!s.looks_power_law());
    }

    #[test]
    fn variance_survives_huge_row_lengths() {
        // Regression: 1000 rows alternating 1e8 and 1e8+1 non-zeros.
        // E[x²] − μ² computes Σx² ≈ 1e19 (units of ~2048 ulps), so the
        // true variance of 0.25 vanished into cancellation noise; Welford
        // recovers it to full precision.
        let lengths = (0..1000usize).map(|i| 100_000_000 + (i % 2));
        let s = RowLengthStats::from_lengths(1000, 1, lengths);
        assert!(
            (s.std_dev - 0.5).abs() < 1e-9,
            "std_dev = {} (expected 0.5)",
            s.std_dev
        );
        assert_eq!(s.mean, 100_000_000.5);

        // constant huge rows: σ must be exactly 0
        let s = RowLengthStats::from_lengths(100, 1, std::iter::repeat_n(100_000_000usize, 100));
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn stats_detect_skew() {
        // one huge row among many tiny ones — power-law-like
        let lengths = std::iter::once(1000usize).chain(std::iter::repeat_n(1, 999));
        let s = RowLengthStats::from_lengths(1000, 2000, lengths);
        assert!(s.looks_power_law());
        assert_eq!(s.max_row, 1000);
    }

    #[test]
    fn histogram_counts_rows_per_bin() {
        let h = DegreeHistogram::from_lengths([0usize, 1, 2, 3, 5, 8, 9, 100].into_iter());
        assert_eq!(h.total_rows, 8);
        assert_eq!(h.counts[0], 1); // len 0
        assert_eq!(h.counts[1], 2); // len 1, 2
        assert_eq!(h.counts[2], 1); // len 3
        assert_eq!(h.counts[3], 2); // len 5, 8
        assert_eq!(h.counts[4], 1); // len 9
        assert_eq!(h.counts[7], 1); // len 100 (65..128)
        assert_eq!(h.max_bin(), 7);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let h = DegreeHistogram::from_lengths((0..1000).map(|i| i % 37));
        let total: f64 = h.frequencies().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_behaves() {
        let h = DegreeHistogram::from_lengths(std::iter::empty());
        assert_eq!(h.total_rows, 0);
        assert!(h.frequencies().is_empty());
        assert_eq!(h.max_bin(), 0);
    }
}
