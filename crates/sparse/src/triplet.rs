//! Triplet (coordinate-list) builder — the ingestion format.
//!
//! Generators and Matrix Market readers accumulate `(row, col, value)`
//! entries here; [`TripletMatrix::to_csr`] produces the canonical CSR
//! matrix everything else converts from.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;

/// Unsorted coordinate-triplet accumulator.
///
/// Duplicate `(row, col)` entries are *summed* during [`Self::to_csr`],
/// matching the usual Matrix Market assembly convention.
#[derive(Clone, Debug)]
pub struct TripletMatrix<T> {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, T)>,
}

impl<T: Scalar> TripletMatrix<T> {
    /// New empty builder for a `rows x cols` matrix.
    ///
    /// Indices are stored as `u32`; shapes above `u32::MAX` are rejected
    /// (far beyond anything this reproduction instantiates).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "TripletMatrix shape exceeds u32 index space"
        );
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Builder with pre-reserved entry capacity.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        let mut t = Self::new(rows, cols);
        t.entries.reserve(cap);
        t
    }

    /// Logical shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of accumulated entries (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append one entry; errors if outside the declared shape.
    pub fn push(&mut self, row: usize, col: usize, value: T) -> Result<(), SparseError> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Append without bounds checking against the shape (debug-asserted).
    /// Generators that produce indices by construction use this hot path.
    #[inline]
    pub fn push_unchecked(&mut self, row: u32, col: u32, value: T) {
        debug_assert!((row as usize) < self.rows && (col as usize) < self.cols);
        self.entries.push((row, col, value));
    }

    /// Raw entry access (tests, shufflers).
    pub fn entries(&self) -> &[(u32, u32, T)] {
        &self.entries
    }

    /// Convert to CSR: sort row-major, merge duplicates by summation.
    pub fn to_csr(mut self) -> CsrMatrix<T> {
        // Sort by (row, col). Unstable sort is fine: duplicate coordinates
        // are merged by *addition*, which is order-insensitive up to float
        // rounding.
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        // Merge duplicates in place.
        let mut merged: Vec<(u32, u32, T)> = Vec::with_capacity(self.entries.len());
        for (r, c, v) in self.entries {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let nnz = merged.len();
        let mut row_offsets = vec![0u32; self.rows + 1];
        for &(r, _, _) in &merged {
            row_offsets[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_offsets[i + 1] += row_offsets[i];
        }
        let mut col_indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for (_, c, v) in merged {
            col_indices.push(c);
            values.push(v);
        }
        CsrMatrix::from_raw_parts(self.rows, self.cols, row_offsets, col_indices, values)
            .expect("triplet assembly produced invalid CSR (internal bug)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut t = TripletMatrix::<f64>::new(2, 2);
        assert!(t.push(2, 0, 1.0).is_err());
        assert!(t.push(0, 2, 1.0).is_err());
        assert!(t.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn to_csr_sorts_and_offsets_correctly() {
        let mut t = TripletMatrix::<f64>::new(3, 4);
        t.push(2, 1, 5.0).unwrap();
        t.push(0, 3, 1.0).unwrap();
        t.push(0, 0, 2.0).unwrap();
        t.push(1, 2, 3.0).unwrap();
        let m = t.to_csr();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_offsets(), &[0, 2, 3, 4]);
        assert_eq!(m.col_indices(), &[0, 3, 2, 1]);
        assert_eq!(m.values(), &[2.0, 1.0, 3.0, 5.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::<f32>::new(1, 1);
        t.push(0, 0, 1.0).unwrap();
        t.push(0, 0, 2.5).unwrap();
        let m = t.to_csr();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.values(), &[3.5]);
    }

    #[test]
    fn empty_builder_yields_empty_csr() {
        let t = TripletMatrix::<f64>::new(5, 5);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row_offsets(), &[0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn empty_rows_interleave_correctly() {
        let mut t = TripletMatrix::<f64>::new(4, 4);
        t.push(0, 0, 1.0).unwrap();
        t.push(3, 3, 2.0).unwrap();
        let m = t.to_csr();
        assert_eq!(m.row_offsets(), &[0, 1, 1, 1, 2]);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 0);
    }
}
