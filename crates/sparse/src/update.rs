//! Dynamic-graph update batches (paper §VII).
//!
//! A matrix update is "defined by specifying the rows to be updated, and
//! for each row, which columns are to be added or deleted"; both lists are
//! sorted and CSR-encoded. This module holds that wire format plus a
//! sequential reference application used as the oracle for the
//! device-side update kernel in the `acsr` crate.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::triplet::TripletMatrix;

/// A batch of row updates: per touched row, sorted column delete and
/// insert lists (CSR-style offsets into shared column/value arrays).
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateBatch<T> {
    /// Rows being updated, strictly increasing.
    pub rows: Vec<u32>,
    /// `rows.len() + 1` offsets into `delete_cols`.
    pub delete_offsets: Vec<u32>,
    /// Sorted columns to remove, grouped by row.
    pub delete_cols: Vec<u32>,
    /// `rows.len() + 1` offsets into `insert_cols` / `insert_vals`.
    pub insert_offsets: Vec<u32>,
    /// Sorted columns to add, grouped by row.
    pub insert_cols: Vec<u32>,
    /// Values for the inserted columns.
    pub insert_vals: Vec<T>,
}

impl<T: Scalar> UpdateBatch<T> {
    /// Empty batch.
    pub fn empty() -> Self {
        UpdateBatch {
            rows: Vec::new(),
            delete_offsets: vec![0],
            delete_cols: Vec::new(),
            insert_offsets: vec![0],
            insert_cols: Vec::new(),
            insert_vals: Vec::new(),
        }
    }

    /// Number of rows touched.
    pub fn touched_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total deletions across all rows.
    pub fn total_deletes(&self) -> usize {
        self.delete_cols.len()
    }

    /// Total insertions across all rows.
    pub fn total_inserts(&self) -> usize {
        self.insert_cols.len()
    }

    /// Bytes this batch occupies on the wire (what ACSR ships to the
    /// device instead of the whole matrix — the Fig. 7 advantage).
    pub fn wire_bytes(&self) -> usize {
        self.rows.len() * 4
            + self.delete_offsets.len() * 4
            + self.delete_cols.len() * 4
            + self.insert_offsets.len() * 4
            + self.insert_cols.len() * 4
            + self.insert_vals.len() * T::BYTES
    }

    /// Delete/insert slices for batch position `i`.
    pub fn row_ops(&self, i: usize) -> (&[u32], &[u32], &[T]) {
        let dl = self.delete_offsets[i] as usize;
        let dh = self.delete_offsets[i + 1] as usize;
        let il = self.insert_offsets[i] as usize;
        let ih = self.insert_offsets[i + 1] as usize;
        (
            &self.delete_cols[dl..dh],
            &self.insert_cols[il..ih],
            &self.insert_vals[il..ih],
        )
    }

    /// Validate structural invariants (sorted rows, offset monotonicity,
    /// per-row sorted column lists).
    pub fn validate(&self) -> Result<(), SparseError> {
        let n = self.rows.len();
        if !self.rows.windows(2).all(|w| w[0] < w[1]) {
            return Err(SparseError::InvalidStructure(
                "update rows not strictly increasing".into(),
            ));
        }
        for (name, offs, data_len) in [
            ("delete", &self.delete_offsets, self.delete_cols.len()),
            ("insert", &self.insert_offsets, self.insert_cols.len()),
        ] {
            if offs.len() != n + 1 || offs[0] != 0 || *offs.last().unwrap() as usize != data_len {
                return Err(SparseError::InvalidStructure(format!(
                    "{name} offsets inconsistent"
                )));
            }
            if !offs.windows(2).all(|w| w[0] <= w[1]) {
                return Err(SparseError::InvalidStructure(format!(
                    "{name} offsets decreasing"
                )));
            }
        }
        if self.insert_vals.len() != self.insert_cols.len() {
            return Err(SparseError::InvalidStructure(
                "insert values/cols length mismatch".into(),
            ));
        }
        for i in 0..n {
            let (del, ins, _) = self.row_ops(i);
            if !del.windows(2).all(|w| w[0] < w[1]) || !ins.windows(2).all(|w| w[0] < w[1]) {
                return Err(SparseError::InvalidStructure(format!(
                    "row {} update lists not sorted",
                    self.rows[i]
                )));
            }
        }
        Ok(())
    }

    /// [`Self::validate`] plus shape bounds against a target matrix:
    /// every touched row must exist and every delete/insert column must
    /// be in range. Without this check an out-of-range insert would slip
    /// through `apply_to_csr`'s unchecked pushes and corrupt the CSR
    /// (columns ≥ `cols`), and a batch row ≥ `rows` would be silently
    /// dropped — both violations the device update kernel can never
    /// repair.
    pub fn validate_for(&self, rows: usize, cols: usize) -> Result<(), SparseError> {
        self.validate()?;
        for (i, &r) in self.rows.iter().enumerate() {
            if r as usize >= rows {
                return Err(SparseError::IndexOutOfBounds {
                    row: r as usize,
                    col: 0,
                    rows,
                    cols,
                });
            }
            let (del, ins, _) = self.row_ops(i);
            for &c in del.iter().chain(ins) {
                if c as usize >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r as usize,
                        col: c as usize,
                        rows,
                        cols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Sequential reference: apply this batch to `m`, returning the updated
    /// matrix. Deletes are applied before inserts, per the paper's kernel
    /// ("first deletes columns of the delete list..., then extends the row
    /// by adding columns from the insert list"). Deleting an absent column
    /// is a no-op; inserting an existing column overwrites its value.
    ///
    /// Panics if the batch is malformed or out of shape for `m` — the
    /// unchecked triplet pushes below are only sound under
    /// [`Self::validate_for`].
    pub fn apply_to_csr(&self, m: &CsrMatrix<T>) -> CsrMatrix<T> {
        self.validate_for(m.rows(), m.cols())
            .expect("update batch must be valid for the target matrix");
        let mut t =
            TripletMatrix::with_capacity(m.rows(), m.cols(), m.nnz() + self.total_inserts());
        let mut batch_pos = 0usize;
        for r in 0..m.rows() {
            let (cols, vals) = m.row(r);
            if batch_pos < self.rows.len() && self.rows[batch_pos] as usize == r {
                let (del, ins, ivals) = self.row_ops(batch_pos);
                batch_pos += 1;
                for (c, v) in cols.iter().zip(vals.iter()) {
                    if del.binary_search(c).is_err() && ins.binary_search(c).is_err() {
                        t.push_unchecked(r as u32, *c, *v);
                    }
                }
                for (c, v) in ins.iter().zip(ivals.iter()) {
                    t.push_unchecked(r as u32, *c, *v);
                }
            } else {
                for (c, v) in cols.iter().zip(vals.iter()) {
                    t.push_unchecked(r as u32, *c, *v);
                }
            }
        }
        t.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CsrMatrix<f64> {
        let mut t = TripletMatrix::new(3, 5);
        t.push(0, 0, 1.0).unwrap();
        t.push(0, 2, 2.0).unwrap();
        t.push(1, 1, 3.0).unwrap();
        t.push(2, 4, 4.0).unwrap();
        t.to_csr()
    }

    fn batch() -> UpdateBatch<f64> {
        UpdateBatch {
            rows: vec![0, 2],
            delete_offsets: vec![0, 1, 1],
            delete_cols: vec![2],
            insert_offsets: vec![0, 1, 3],
            insert_cols: vec![3, 0, 1],
            insert_vals: vec![9.0, 7.0, 8.0],
        }
    }

    #[test]
    fn validate_accepts_well_formed_batch() {
        batch().validate().unwrap();
        UpdateBatch::<f64>::empty().validate().unwrap();
    }

    #[test]
    fn validate_rejects_unsorted_rows() {
        let mut b = batch();
        b.rows = vec![2, 0];
        assert!(b.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_offsets() {
        let mut b = batch();
        b.delete_offsets = vec![0, 2, 1];
        assert!(b.validate().is_err());
    }

    #[test]
    fn apply_deletes_and_inserts() {
        let m = base();
        let updated = batch().apply_to_csr(&m);
        // row 0: delete col 2, insert col 3=9.0 → cols {0:1.0, 3:9.0}
        assert_eq!(updated.get(0, 2), 0.0);
        assert_eq!(updated.get(0, 3), 9.0);
        assert_eq!(updated.get(0, 0), 1.0);
        // row 1 untouched
        assert_eq!(updated.get(1, 1), 3.0);
        // row 2: inserts cols 0 and 1, keeps col 4
        assert_eq!(updated.get(2, 0), 7.0);
        assert_eq!(updated.get(2, 1), 8.0);
        assert_eq!(updated.get(2, 4), 4.0);
        assert_eq!(updated.nnz(), 6);
    }

    #[test]
    fn deleting_absent_column_is_noop() {
        let m = base();
        let b = UpdateBatch::<f64> {
            rows: vec![1],
            delete_offsets: vec![0, 1],
            delete_cols: vec![3], // row 1 has no col 3
            insert_offsets: vec![0, 0],
            insert_cols: vec![],
            insert_vals: vec![],
        };
        assert_eq!(b.apply_to_csr(&m), m);
    }

    #[test]
    fn inserting_existing_column_overwrites() {
        let m = base();
        let b = UpdateBatch::<f64> {
            rows: vec![1],
            delete_offsets: vec![0, 0],
            delete_cols: vec![],
            insert_offsets: vec![0, 1],
            insert_cols: vec![1],
            insert_vals: vec![99.0],
        };
        let u = b.apply_to_csr(&m);
        assert_eq!(u.get(1, 1), 99.0);
        assert_eq!(u.nnz(), m.nnz());
    }

    #[test]
    fn wire_bytes_scales_with_content() {
        let b = batch();
        let small = UpdateBatch::<f64>::empty();
        assert!(b.wire_bytes() > small.wire_bytes());
    }

    /// The CSR structural invariants of `error.rs`: strictly increasing
    /// in-range columns per row, consistent entry count.
    fn assert_csr_invariants(m: &CsrMatrix<f64>) {
        let mut live = 0usize;
        for r in 0..m.rows() {
            let (cols, vals) = m.row(r);
            assert_eq!(cols.len(), vals.len());
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {r} unsorted");
            assert!(
                cols.iter().all(|&c| (c as usize) < m.cols()),
                "row {r} col out of range"
            );
            live += cols.len();
        }
        assert_eq!(live, m.nnz());
    }

    #[test]
    fn duplicate_edge_insert_keeps_invariants() {
        // inserting a column the row already has must overwrite, not
        // duplicate, the entry
        let m = base();
        let b = UpdateBatch::<f64> {
            rows: vec![0],
            delete_offsets: vec![0, 0],
            delete_cols: vec![],
            insert_offsets: vec![0, 2],
            insert_cols: vec![0, 2], // both already present in row 0
            insert_vals: vec![10.0, 20.0],
        };
        let u = b.apply_to_csr(&m);
        assert_csr_invariants(&u);
        assert_eq!(u.nnz(), m.nnz());
        assert_eq!(u.get(0, 0), 10.0);
        assert_eq!(u.get(0, 2), 20.0);
    }

    #[test]
    fn nonexistent_delete_keeps_invariants() {
        let m = base();
        let b = UpdateBatch::<f64> {
            rows: vec![0, 2],
            delete_offsets: vec![0, 2, 3],
            delete_cols: vec![1, 3, 0], // none of these edges exist
            insert_offsets: vec![0, 0, 0],
            insert_cols: vec![],
            insert_vals: vec![],
        };
        let u = b.apply_to_csr(&m);
        assert_csr_invariants(&u);
        assert_eq!(u, m);
    }

    #[test]
    fn row_emptying_delta_keeps_invariants() {
        let m = base();
        let b = UpdateBatch::<f64> {
            rows: vec![0],
            delete_offsets: vec![0, 2],
            delete_cols: vec![0, 2], // delete everything in row 0
            insert_offsets: vec![0, 0],
            insert_cols: vec![],
            insert_vals: vec![],
        };
        let u = b.apply_to_csr(&m);
        assert_csr_invariants(&u);
        assert_eq!(u.row_nnz(0), 0);
        assert_eq!(u.nnz(), m.nnz() - 2);
        // a later batch can refill the emptied row
        let refill = UpdateBatch::<f64> {
            rows: vec![0],
            delete_offsets: vec![0, 0],
            delete_cols: vec![],
            insert_offsets: vec![0, 1],
            insert_cols: vec![4],
            insert_vals: vec![5.0],
        };
        let v = refill.apply_to_csr(&u);
        assert_csr_invariants(&v);
        assert_eq!(v.get(0, 4), 5.0);
    }

    #[test]
    fn validate_for_rejects_out_of_shape_batches() {
        // row index beyond the matrix: previously silently dropped by
        // apply_to_csr
        let b = UpdateBatch::<f64> {
            rows: vec![7],
            delete_offsets: vec![0, 0],
            delete_cols: vec![],
            insert_offsets: vec![0, 1],
            insert_cols: vec![1],
            insert_vals: vec![1.0],
        };
        assert!(b.validate().is_ok(), "shape-free validation cannot see it");
        assert!(matches!(
            b.validate_for(3, 5),
            Err(SparseError::IndexOutOfBounds { row: 7, .. })
        ));
        // column index beyond the matrix: previously corrupted the CSR
        // through push_unchecked
        let b = UpdateBatch::<f64> {
            rows: vec![1],
            delete_offsets: vec![0, 0],
            delete_cols: vec![],
            insert_offsets: vec![0, 1],
            insert_cols: vec![99],
            insert_vals: vec![1.0],
        };
        assert!(matches!(
            b.validate_for(3, 5),
            Err(SparseError::IndexOutOfBounds { col: 99, .. })
        ));
        // in-shape batch passes
        batch().validate_for(3, 5).unwrap();
    }

    #[test]
    #[should_panic(expected = "valid for the target matrix")]
    fn apply_to_csr_rejects_out_of_shape_batches() {
        let m = base();
        let b = UpdateBatch::<f64> {
            rows: vec![0],
            delete_offsets: vec![0, 0],
            delete_cols: vec![],
            insert_offsets: vec![0, 1],
            insert_cols: vec![99],
            insert_vals: vec![1.0],
        };
        let _ = b.apply_to_csr(&m);
    }
}
