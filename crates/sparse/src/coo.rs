//! Coordinate (COO) format.
//!
//! Each non-zero stores its full `(row, col, value)` coordinates. SpMV over
//! COO parallelizes over *non-zeros* rather than rows, which removes load
//! imbalance but requires a reduction (atomics or segmented scan) to
//! combine partial products into `y` — the overhead the paper's §II
//! describes. COO is also the tail part of [`crate::hyb::HybMatrix`].

use crate::cost::{timed, PreprocessCost};
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use crate::SpFormat;

/// COO matrix with entries sorted row-major (row, then column).
#[derive(Clone, Debug, PartialEq)]
pub struct CooMatrix<T> {
    rows: usize,
    cols: usize,
    row_indices: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Convert from CSR, recording preprocessing cost (one streaming pass:
    /// expand row offsets into explicit row indices, copy columns/values).
    pub fn from_csr(csr: &CsrMatrix<T>) -> (Self, PreprocessCost) {
        timed(|cost| {
            let nnz = csr.nnz();
            let mut row_indices = Vec::with_capacity(nnz);
            for r in 0..csr.rows() {
                row_indices.extend(std::iter::repeat_n(r as u32, csr.row_nnz(r)));
            }
            cost.bytes_read += (csr.rows() as u64 + 1) * 4 + nnz as u64 * (4 + T::BYTES as u64);
            cost.bytes_written += nnz as u64 * (8 + T::BYTES as u64);
            CooMatrix {
                rows: csr.rows(),
                cols: csr.cols(),
                row_indices,
                col_indices: csr.col_indices().to_vec(),
                values: csr.values().to_vec(),
            }
        })
    }

    /// Build directly from sorted parallel arrays (used by HYB assembly).
    /// Entries must be row-major sorted; this is debug-asserted.
    pub(crate) fn from_sorted_parts(
        rows: usize,
        cols: usize,
        row_indices: Vec<u32>,
        col_indices: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(row_indices.len(), col_indices.len());
        debug_assert_eq!(row_indices.len(), values.len());
        debug_assert!(row_indices.windows(2).all(|w| w[0] <= w[1]));
        CooMatrix {
            rows,
            cols,
            row_indices,
            col_indices,
            values,
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row index of each entry.
    pub fn row_indices(&self) -> &[u32] {
        &self.row_indices
    }

    /// Column index of each entry.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Entry values.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Sequential reference SpMV accumulating into `y` (does **not** zero
    /// `y` first — callers combining ELL+COO rely on accumulation).
    pub fn spmv_accumulate(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.cols, "spmv: x length != cols");
        assert_eq!(y.len(), self.rows, "spmv: y length != rows");
        for k in 0..self.values.len() {
            let r = self.row_indices[k] as usize;
            let c = self.col_indices[k] as usize;
            y[r] += self.values[k] * x[c];
        }
    }

    /// Standalone SpMV (`y` zeroed first).
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; self.rows];
        self.spmv_accumulate(x, &mut y);
        y
    }

    /// Convert back to CSR (used by round-trip tests).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut offsets = vec![0u32; self.rows + 1];
        for &r in &self.row_indices {
            offsets[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            offsets[i + 1] += offsets[i];
        }
        CsrMatrix::from_raw_parts(
            self.rows,
            self.cols,
            offsets,
            self.col_indices.clone(),
            self.values.clone(),
        )
        .expect("sorted COO must form valid CSR")
    }
}

impl<T: Scalar> SpFormat for CooMatrix<T> {
    fn format_name(&self) -> &'static str {
        "COO"
    }
    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn storage_bytes(&self) -> usize {
        self.values.len() * (8 + T::BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn example() -> CsrMatrix<f64> {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0).unwrap();
        t.push(0, 2, 2.0).unwrap();
        t.push(2, 0, 3.0).unwrap();
        t.push(2, 1, 4.0).unwrap();
        t.to_csr()
    }

    #[test]
    fn from_csr_expands_row_indices() {
        let (coo, cost) = CooMatrix::from_csr(&example());
        assert_eq!(coo.row_indices(), &[0, 0, 2, 2]);
        assert_eq!(coo.col_indices(), &[0, 2, 0, 1]);
        assert!(cost.bytes_written > 0);
    }

    #[test]
    fn spmv_matches_csr() {
        let m = example();
        let (coo, _) = CooMatrix::from_csr(&m);
        let x = vec![1.0, 10.0, 100.0];
        assert_eq!(coo.spmv(&x), m.spmv(&x));
    }

    #[test]
    fn spmv_accumulate_adds_to_existing() {
        let (coo, _) = CooMatrix::from_csr(&example());
        let mut y = vec![1.0; 3];
        coo.spmv_accumulate(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![4.0, 1.0, 8.0]);
    }

    #[test]
    fn round_trip_to_csr() {
        let m = example();
        let (coo, _) = CooMatrix::from_csr(&m);
        assert_eq!(coo.to_csr(), m);
    }

    #[test]
    fn storage_is_larger_than_csr_for_multi_entry_rows() {
        // COO stores a row index per entry; CSR amortizes rows+1 offsets.
        let m = example();
        let (coo, _) = CooMatrix::from_csr(&m);
        use crate::SpFormat;
        assert!(coo.storage_bytes() > 0);
        assert_eq!(coo.nnz(), m.nnz());
    }
}
