//! # sparse-formats — sparse matrix representations and conversions
//!
//! Every sparse-matrix storage format discussed by the ACSR paper
//! (Ashari et al., SC'14), built from scratch:
//!
//! | Format | Module | Role in the paper |
//! |---|---|---|
//! | Triplets (builder) | [`triplet`] | ingestion |
//! | CSR | [`csr`] | the baseline format ACSR layers on |
//! | COO | [`coo`] | segmented-reduction baseline; HYB tail |
//! | ELL | [`ell`] | padded baseline; HYB head |
//! | HYB (ELL+COO) | [`hyb`] | the strongest library baseline (§II) |
//! | BRC | [`brc`] | blocked row-column comparator \[1\] |
//! | BCCOO | [`bccoo`] | blocked compressed COO comparator \[27\], with autotuning |
//! | TCOO | [`tcoo`] | tiled COO comparator \[28\], with tile-count search |
//! | DIA | [`dia`] | structured-matrix format (related work §IX) |
//!
//! Each conversion out of CSR returns a [`cost::PreprocessCost`] describing
//! the work it performed (bytes moved, elements sorted, tuning trials), so
//! the reproduction harness can model preprocessing time consistently with
//! the simulated SpMV time — the central quantity of the paper's Figure 4
//! and Tables III/IV.
//!
//! Numeric types are abstracted by the [`scalar::Scalar`] trait (`f32` and
//! `f64`, the two precisions evaluated in the paper).

pub mod bccoo;
pub mod brc;
pub mod coo;
pub mod cost;
pub mod csr;
pub mod dia;
pub mod ell;
pub mod error;
pub mod hyb;
pub mod mmio;
pub mod scalar;
pub mod stats;
pub mod tcoo;
pub mod triplet;
pub mod update;

pub use bccoo::{BccooConfig, BccooMatrix};
pub use brc::BrcMatrix;
pub use coo::CooMatrix;
pub use cost::{HostModel, PreprocessCost};
pub use csr::CsrMatrix;
pub use dia::DiaMatrix;
pub use ell::EllMatrix;
pub use error::SparseError;
pub use hyb::HybMatrix;
pub use scalar::Scalar;
pub use stats::{DegreeHistogram, RowLengthStats};
pub use tcoo::TcooMatrix;
pub use triplet::TripletMatrix;
pub use update::UpdateBatch;

/// Common introspection surface shared by all storage formats, used by the
/// reproduction harness to build its per-format tables.
pub trait SpFormat {
    /// Short name used in tables ("CSR", "HYB", ...).
    fn format_name(&self) -> &'static str;
    /// `(rows, cols)` of the logical matrix.
    fn shape(&self) -> (usize, usize);
    /// Number of stored non-zero entries (excluding padding).
    fn nnz(&self) -> usize;
    /// Bytes of device memory the representation occupies, including any
    /// padding — the space-overhead column of the paper's §V discussion.
    fn storage_bytes(&self) -> usize;
}
