//! BRC — Blocked Row-Column format (Ashari et al. \[1\], ICS'14).
//!
//! BRC blocks in *two* dimensions. Rows are first split column-wise into
//! chunks of at most [`BRC_MAX_WIDTH`] non-zeros (so no single warp ever
//! serializes behind a power-law monster row); the chunks are then
//! *sorted by length* and grouped into blocks of [`BRC_BLOCK_ROWS`]
//! chunks, each padded only to its own widest member. Sorting makes the
//! padding tiny (the paper reports ≈1% space overhead for BRC); the
//! price is the global sort and full data restructuring — preprocessing
//! the paper's Figure 4 charges at ~87 SpMVs.
//!
//! Because a row may span several chunks (in different blocks), BRC SpMV
//! *accumulates* into a zeroed `y`.

use crate::cost::{timed, PreprocessCost};
use crate::csr::CsrMatrix;
use crate::ell::ELL_PAD;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::SpFormat;

/// Chunks per BRC block (one warp cooperates on a block).
pub const BRC_BLOCK_ROWS: usize = 32;

/// Maximum non-zeros per row chunk (the column-blocking dimension).
pub const BRC_MAX_WIDTH: usize = 64;

/// One block of the BRC representation.
#[derive(Clone, Debug, PartialEq)]
pub struct BrcBlock {
    /// First chunk (in sorted order) this block covers.
    pub row_start: usize,
    /// Number of chunks in this block (≤ [`BRC_BLOCK_ROWS`]).
    pub height: usize,
    /// Width all chunks in the block are padded to (≤ [`BRC_MAX_WIDTH`]).
    pub width: usize,
    /// Offset of this block's slots in the shared col/val arrays.
    pub data_start: usize,
}

/// BRC matrix: length-sorted row chunks in per-block padded column-major
/// storage.
#[derive(Clone, Debug, PartialEq)]
pub struct BrcMatrix<T> {
    rows: usize,
    cols: usize,
    nnz: usize,
    /// `chunk_rows[sorted_pos] = original_row` of that chunk.
    chunk_rows: Vec<u32>,
    blocks: Vec<BrcBlock>,
    /// Concatenated per-block column-major slots (`ELL_PAD` padding).
    col_indices: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> BrcMatrix<T> {
    /// Convert from CSR: chunk rows column-wise, sort chunks by length
    /// (descending), block, pad.
    pub fn from_csr(
        csr: &CsrMatrix<T>,
        max_bytes: usize,
    ) -> Result<(Self, PreprocessCost), SparseError> {
        let rows = csr.rows();
        let (out, mut cost) = timed(|cost| {
            // Enumerate (row, chunk offset, chunk len).
            let mut chunks: Vec<(u32, u32, u32)> = Vec::new();
            for r in 0..rows {
                let len = csr.row_nnz(r);
                let mut off = 0usize;
                while off < len {
                    let clen = (len - off).min(BRC_MAX_WIDTH);
                    chunks.push((r as u32, off as u32, clen as u32));
                    off += clen;
                }
                if len == 0 {
                    // empty rows need no chunk; y is zero-filled by the
                    // kernel's memset pass
                }
            }
            chunks.sort_by_key(|&(_, _, l)| std::cmp::Reverse(l));
            cost.charge_sort(chunks.len() as u64, 12);

            let mut blocks = Vec::with_capacity(chunks.len().div_ceil(BRC_BLOCK_ROWS));
            let mut total_slots = 0usize;
            let mut pos = 0usize;
            while pos < chunks.len() {
                let height = BRC_BLOCK_ROWS.min(chunks.len() - pos);
                let width = (0..height)
                    .map(|i| chunks[pos + i].2 as usize)
                    .max()
                    .unwrap_or(0);
                blocks.push(BrcBlock {
                    row_start: pos,
                    height,
                    width,
                    data_start: total_slots,
                });
                total_slots += height * width;
                pos += height;
            }
            (chunks, blocks, total_slots)
        });
        let (chunks, blocks, total_slots) = out;
        let bytes = total_slots * (4 + T::BYTES);
        if bytes > max_bytes {
            return Err(SparseError::CapacityExceeded {
                format: "BRC",
                detail: format!("blocked storage {bytes} B exceeds budget {max_bytes} B"),
            });
        }
        let (filled, fill_cost) = timed(|c| {
            let mut col_indices = vec![ELL_PAD; total_slots];
            let mut values = vec![T::ZERO; total_slots];
            let mut chunk_rows = Vec::with_capacity(chunks.len());
            for b in &blocks {
                for i in 0..b.height {
                    let (r, off, clen) = chunks[b.row_start + i];
                    let (rcols, rvals) = csr.row(r as usize);
                    for slot in 0..clen as usize {
                        let idx = b.data_start + slot * b.height + i;
                        col_indices[idx] = rcols[off as usize + slot];
                        values[idx] = rvals[off as usize + slot];
                    }
                }
            }
            for &(r, _, _) in &chunks {
                chunk_rows.push(r);
            }
            c.bytes_read += csr.nnz() as u64 * (4 + T::BYTES as u64);
            c.bytes_written += total_slots as u64 * (4 + T::BYTES as u64);
            (col_indices, values, chunk_rows)
        });
        cost.merge(&fill_cost);
        let (col_indices, values, chunk_rows) = filled;
        Ok((
            BrcMatrix {
                rows,
                cols: csr.cols(),
                nnz: csr.nnz(),
                chunk_rows,
                blocks,
                col_indices,
                values,
            },
            cost,
        ))
    }

    /// Global row of each sorted chunk.
    pub fn chunk_rows(&self) -> &[u32] {
        &self.chunk_rows
    }

    /// Chunk blocks.
    pub fn blocks(&self) -> &[BrcBlock] {
        &self.blocks
    }

    /// Concatenated padded column indices.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Concatenated padded values.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Fraction of slots that are padding.
    pub fn padding_fraction(&self) -> f64 {
        if self.col_indices.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz as f64 / self.col_indices.len() as f64
    }

    /// Sequential reference SpMV (accumulates chunk partials).
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "spmv: x length != cols");
        let mut y = vec![T::ZERO; self.rows];
        for b in &self.blocks {
            for i in 0..b.height {
                let mut sum = T::ZERO;
                for slot in 0..b.width {
                    let idx = b.data_start + slot * b.height + i;
                    let c = self.col_indices[idx];
                    if c != ELL_PAD {
                        sum += self.values[idx] * x[c as usize];
                    }
                }
                y[self.chunk_rows[b.row_start + i] as usize] += sum;
            }
        }
        y
    }
}

impl<T: Scalar> SpFormat for BrcMatrix<T> {
    fn format_name(&self) -> &'static str {
        "BRC"
    }
    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn storage_bytes(&self) -> usize {
        self.chunk_rows.len() * 4
            + self.blocks.len() * std::mem::size_of::<BrcBlock>()
            + self.col_indices.len() * 4
            + self.values.len() * T::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn skewed(rows: usize) -> CsrMatrix<f64> {
        let mut t = TripletMatrix::new(rows, rows);
        for r in 0..rows {
            let len = if r % 64 == 0 { 200 } else { 1 + r % 3 };
            for j in 0..len.min(rows) {
                t.push(r, (r + j * 17) % rows, (r + j) as f64 + 0.5)
                    .unwrap();
            }
        }
        t.to_csr()
    }

    #[test]
    fn spmv_matches_csr() {
        let m = skewed(1000);
        let (brc, _) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
        let x: Vec<f64> = (0..1000).map(|i| 1.0 + (i % 7) as f64).collect();
        let y_ref = m.spmv(&x);
        let y = brc.spmv(&x);
        for (a, b) in y.iter().zip(y_ref.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn wide_rows_are_split_into_bounded_chunks() {
        let m = skewed(2048);
        let (brc, _) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
        for b in brc.blocks() {
            assert!(b.width <= BRC_MAX_WIDTH, "block width {}", b.width);
        }
        // the 200-nnz rows must appear as multiple chunks
        let n_chunks_row0 = brc.chunk_rows().iter().filter(|&&r| r == 0).count();
        assert_eq!(n_chunks_row0, 200usize.div_ceil(BRC_MAX_WIDTH));
    }

    #[test]
    fn padding_is_small_on_skewed_matrix() {
        let m = skewed(4096);
        let (brc, _) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
        assert!(
            brc.padding_fraction() < 0.15,
            "padding {}",
            brc.padding_fraction()
        );
    }

    #[test]
    fn blocks_sorted_by_decreasing_width() {
        let m = skewed(2048);
        let (brc, _) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
        let widths: Vec<usize> = brc.blocks().iter().map(|b| b.width).collect();
        assert!(widths.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn every_nnz_is_represented_exactly_once() {
        let m = skewed(513);
        let (brc, _) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
        let real: usize = brc.col_indices().iter().filter(|&&c| c != ELL_PAD).count();
        assert_eq!(real, m.nnz());
    }

    #[test]
    fn conversion_charges_a_sort() {
        let m = skewed(512);
        let (_, cost) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
        assert!(cost.sorted_elements >= 512);
    }

    #[test]
    fn memory_budget_enforced() {
        let m = skewed(2048);
        assert!(BrcMatrix::from_csr(&m, 64).is_err());
    }
}
