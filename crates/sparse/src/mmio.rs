//! Matrix Market I/O.
//!
//! The paper's suite comes from the University of Florida Sparse Matrix
//! Collection \[22\], which distributes Matrix Market files. This reader
//! accepts the `coordinate` variants the collection uses (`real`,
//! `integer`, `pattern`; `general` or `symmetric`), so real UFL matrices
//! can be dropped into any experiment where network access permits;
//! otherwise the `graphgen` analogs stand in.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::triplet::TripletMatrix;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Read a Matrix Market `coordinate` file into CSR.
pub fn read_matrix_market<T: Scalar, R: Read>(reader: R) -> Result<CsrMatrix<T>, SparseError> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;

    // Header line.
    let header = loop {
        match lines.next() {
            Some(l) => {
                line_no += 1;
                let l = l?;
                if !l.trim().is_empty() {
                    break l;
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: line_no,
                    detail: "empty file".into(),
                })
            }
        }
    };
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse {
            line: line_no,
            detail: format!("bad header: {header}"),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: line_no,
            detail: format!("unsupported storage '{}' (only coordinate)", tokens[2]),
        });
    }
    let field = match tokens[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                detail: format!("unsupported field '{other}'"),
            })
        }
    };
    let symmetry = match tokens[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                detail: format!("unsupported symmetry '{other}'"),
            })
        }
    };

    // Size line (skipping comments).
    let size_line = loop {
        match lines.next() {
            Some(l) => {
                line_no += 1;
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break l;
            }
            None => {
                return Err(SparseError::Parse {
                    line: line_no,
                    detail: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| SparseError::Parse {
            line: line_no,
            detail: format!("bad size line: {e}"),
        })?;
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: line_no,
            detail: "size line must have rows cols nnz".into(),
        });
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);

    let cap = if symmetry == Symmetry::Symmetric {
        2 * nnz
    } else {
        nnz
    };
    let mut t = TripletMatrix::with_capacity(rows, cols, cap);
    let mut seen = 0usize;
    for l in lines {
        line_no += 1;
        let l = l?;
        let trimmed = l.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse_idx = |s: Option<&str>, what: &str| -> Result<usize, SparseError> {
            s.ok_or_else(|| SparseError::Parse {
                line: line_no,
                detail: format!("missing {what}"),
            })?
            .parse::<usize>()
            .map_err(|e| SparseError::Parse {
                line: line_no,
                detail: format!("bad {what}: {e}"),
            })
        };
        let r = parse_idx(it.next(), "row index")?;
        let c = parse_idx(it.next(), "col index")?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse {
                line: line_no,
                detail: "matrix market indices are 1-based".into(),
            });
        }
        let v = match field {
            Field::Pattern => T::ONE,
            Field::Real | Field::Integer => {
                let tok = it.next().ok_or_else(|| SparseError::Parse {
                    line: line_no,
                    detail: "missing value".into(),
                })?;
                T::from_f64(tok.parse::<f64>().map_err(|e| SparseError::Parse {
                    line: line_no,
                    detail: format!("bad value: {e}"),
                })?)
            }
        };
        t.push(r - 1, c - 1, v)?;
        if symmetry == Symmetry::Symmetric && r != c {
            t.push(c - 1, r - 1, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: line_no,
            detail: format!("expected {nnz} entries, found {seen}"),
        });
    }
    Ok(t.to_csr())
}

/// Read a Matrix Market file from disk.
pub fn read_matrix_market_file<T: Scalar>(
    path: impl AsRef<Path>,
) -> Result<CsrMatrix<T>, SparseError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(f)
}

/// Write `m` as `coordinate real general` Matrix Market.
pub fn write_matrix_market<T: Scalar, W: Write>(
    m: &CsrMatrix<T>,
    writer: W,
) -> Result<(), SparseError> {
    let mut w = std::io::BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by sparse-formats (ACSR reproduction)")?;
    writeln!(w, "{} {} {}", m.rows(), m.cols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {}", r + 1, c + 1, v.to_f64())?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_mm_text() {
        let mut t = TripletMatrix::<f64>::new(3, 4);
        t.push(0, 1, 1.5).unwrap();
        t.push(2, 3, -2.0).unwrap();
        t.push(1, 0, 0.25).unwrap();
        let m = t.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let m2: CsrMatrix<f64> = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let m: CsrMatrix<f32> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.values(), &[1.0, 1.0]);
    }

    #[test]
    fn symmetric_matrices_mirror_off_diagonals() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let m: CsrMatrix<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3); // (1,0), (0,1), (2,2)
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(2, 2), 1.0);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n% another\n1 2 3.5\n";
        let m: CsrMatrix<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), 3.5);
    }

    #[test]
    fn wrong_entry_count_is_an_error() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let r: Result<CsrMatrix<f64>, _> = read_matrix_market(text.as_bytes());
        assert!(r.is_err());
    }

    #[test]
    fn zero_based_indices_are_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        let r: Result<CsrMatrix<f64>, _> = read_matrix_market(text.as_bytes());
        assert!(r.is_err());
    }

    #[test]
    fn unsupported_formats_are_rejected() {
        for bad in [
            "%%MatrixMarket matrix array real general\n",
            "%%MatrixMarket matrix coordinate complex general\n",
            "%%MatrixMarket matrix coordinate real hermitian\n",
            "not a header\n",
        ] {
            let r: Result<CsrMatrix<f64>, _> = read_matrix_market(bad.as_bytes());
            assert!(r.is_err(), "{bad}");
        }
    }
}
