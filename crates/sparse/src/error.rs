//! Error type shared by all format constructors and I/O routines.

use std::fmt;

/// Errors raised by format construction, conversion, and Matrix Market I/O.
#[derive(Debug)]
pub enum SparseError {
    /// An entry's row or column index lies outside the declared shape.
    IndexOutOfBounds {
        row: usize,
        col: usize,
        rows: usize,
        cols: usize,
    },
    /// CSR structural invariant violated (offsets not monotone, lengths
    /// inconsistent, ...). The string names the violated invariant.
    InvalidStructure(String),
    /// The target format cannot represent this matrix within the requested
    /// resource bound — e.g. ELL width explosion or DIA diagonal count.
    /// Corresponds to the ∅ cells of the paper's Tables III/IV.
    CapacityExceeded {
        format: &'static str,
        detail: String,
    },
    /// Matrix Market parse failure at `line`.
    Parse { line: usize, detail: String },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(f, "entry ({row}, {col}) outside matrix shape {rows}x{cols}"),
            SparseError::InvalidStructure(s) => write!(f, "invalid sparse structure: {s}"),
            SparseError::CapacityExceeded { format, detail } => {
                write!(f, "{format} cannot represent this matrix: {detail}")
            }
            SparseError::Parse { line, detail } => {
                write!(f, "matrix market parse error at line {line}: {detail}")
            }
            SparseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 9,
            col: 3,
            rows: 4,
            cols: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("(9, 3)") && msg.contains("4x4"));

        let e = SparseError::CapacityExceeded {
            format: "ELL",
            detail: "width 10000 over budget".into(),
        };
        assert!(e.to_string().contains("ELL"));
    }

    #[test]
    fn io_error_round_trips_through_source() {
        use std::error::Error;
        let e: SparseError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
