//! HYB — the hybrid ELL + COO format of Bell & Garland \[5\].
//!
//! Rows are stored in a width-`k` ELL part; entries beyond `k` per row
//! spill into a COO tail. `k` is chosen by the CUSP heuristic the paper
//! cites (§II): the largest width such that "enough" rows (at least
//! `max(4096, rows/3)`) still have that many entries — balancing ELL's
//! coalescing against padding waste.
//!
//! HYB is the strongest library baseline for power-law matrices in the
//! paper's evaluation, and also the format whose conversion cost
//! (≈21 SpMVs on average, Fig. 4) motivates ACSR for dynamic graphs.

use crate::coo::CooMatrix;
use crate::cost::{timed, PreprocessCost};
use crate::csr::CsrMatrix;
use crate::ell::EllMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::SpFormat;

/// Number of rows that must still be "full" at width `k` for ELL storage
/// to pay off (CUSP's `breakeven_threshold`).
pub const HYB_BREAKEVEN_ROWS: usize = 4096;
/// CUSP's `relative_speed` of ELL vs COO: ELL is worth padding as long as
/// at least `rows / HYB_RELATIVE_SPEED` rows reach the candidate width.
pub const HYB_RELATIVE_SPEED: usize = 3;

/// Hybrid ELL+COO matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct HybMatrix<T> {
    ell: EllMatrix<T>,
    coo: CooMatrix<T>,
    k: usize,
}

impl<T: Scalar> HybMatrix<T> {
    /// Heuristic ELL width for `csr` (paper §II / CUSP):
    /// the largest `k` such that at least `max(4096, rows/3)` rows have
    /// `>= k` non-zeros; `k = 0` (pure COO) when even width 1 fails.
    pub fn heuristic_k(csr: &CsrMatrix<T>) -> usize {
        let rows = csr.rows();
        if rows == 0 {
            return 0;
        }
        // No clamp to `rows`: with fewer than `HYB_BREAKEVEN_ROWS` rows the
        // ELL part can never pay for itself and the matrix stays pure COO.
        let threshold = HYB_BREAKEVEN_ROWS.max(rows / HYB_RELATIVE_SPEED);
        // histogram of row lengths
        let max_len = (0..rows).map(|r| csr.row_nnz(r)).max().unwrap_or(0);
        let mut hist = vec![0usize; max_len + 2];
        for r in 0..rows {
            hist[csr.row_nnz(r)] += 1;
        }
        // rows_with_at_least[k] via suffix sum
        let mut at_least = 0usize;
        let mut best = 0usize;
        for k in (1..=max_len).rev() {
            at_least += hist[k];
            // at this point at_least = #rows with nnz >= k
            if at_least >= threshold {
                best = k;
                break;
            }
        }
        best
    }

    /// Convert from CSR using the heuristic width.
    pub fn from_csr(
        csr: &CsrMatrix<T>,
        max_bytes: usize,
    ) -> Result<(Self, PreprocessCost), SparseError> {
        let k = Self::heuristic_k(csr);
        Self::from_csr_with_k(csr, k, max_bytes)
    }

    /// Convert from CSR with an explicit ELL width `k`.
    pub fn from_csr_with_k(
        csr: &CsrMatrix<T>,
        k: usize,
        max_bytes: usize,
    ) -> Result<(Self, PreprocessCost), SparseError> {
        // Cost of scanning row lengths for the heuristic.
        let ((ell, tail), mut cost) = EllMatrix::from_csr_truncated(csr, k, max_bytes)?;
        let (coo, tail_cost) = timed(|c| {
            let n = tail.len();
            let mut row_indices = Vec::with_capacity(n);
            let mut col_indices = Vec::with_capacity(n);
            let mut values = Vec::with_capacity(n);
            for (r, cc, v) in tail {
                row_indices.push(r);
                col_indices.push(cc);
                values.push(v);
            }
            c.bytes_read += n as u64 * (8 + T::BYTES as u64);
            c.bytes_written += n as u64 * (8 + T::BYTES as u64);
            CooMatrix::from_sorted_parts(csr.rows(), csr.cols(), row_indices, col_indices, values)
        });
        cost.merge(&tail_cost);
        // heuristic scan pass over row offsets
        cost.bytes_read += (csr.rows() as u64 + 1) * 4;
        Ok((HybMatrix { ell, coo, k }, cost))
    }

    /// The ELL width `k` in use.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The padded ELL head.
    pub fn ell(&self) -> &EllMatrix<T> {
        &self.ell
    }

    /// The COO tail.
    pub fn coo(&self) -> &CooMatrix<T> {
        &self.coo
    }

    /// Fraction of ELL slots that are padding.
    pub fn padding_fraction(&self) -> f64 {
        self.ell.padding_fraction()
    }

    /// Sequential reference SpMV.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        let (rows, _) = self.shape();
        let mut y = vec![T::ZERO; rows];
        self.ell.spmv_accumulate(x, &mut y);
        self.coo.spmv_accumulate(x, &mut y);
        y
    }
}

impl<T: Scalar> SpFormat for HybMatrix<T> {
    fn format_name(&self) -> &'static str {
        "HYB"
    }
    fn shape(&self) -> (usize, usize) {
        self.ell.shape()
    }
    fn nnz(&self) -> usize {
        self.ell.nnz() + self.coo.nnz()
    }
    fn storage_bytes(&self) -> usize {
        self.ell.storage_bytes() + self.coo.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    /// Skewed matrix: many rows with 1-2 entries, a few wide rows.
    fn skewed(rows: usize, wide_every: usize, wide_len: usize) -> CsrMatrix<f64> {
        let cols = rows.max(wide_len);
        let mut t = TripletMatrix::new(rows, cols);
        for r in 0..rows {
            if r % wide_every == 0 {
                for c in 0..wide_len {
                    t.push(r, c, 1.0 + (r + c) as f64).unwrap();
                }
            } else {
                t.push(r, r % cols, 2.0).unwrap();
                t.push(r, (r * 7 + 1) % cols, 3.0).unwrap();
            }
        }
        t.to_csr()
    }

    #[test]
    fn heuristic_k_ignores_rare_wide_rows() {
        // 10_000 rows of length 2, every 100th row has 50 entries
        let m = skewed(10_000, 100, 50);
        let k = HybMatrix::heuristic_k(&m);
        // only 100 rows reach width 3+, far below max(4096, 3333)
        assert_eq!(k, 2);
    }

    #[test]
    fn heuristic_k_empty_matrix_is_zero() {
        let m = TripletMatrix::<f64>::new(0, 0).to_csr();
        assert_eq!(HybMatrix::heuristic_k(&m), 0);
        // conversion of the degenerate matrix also succeeds as pure COO
        let (hyb, _) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        assert_eq!(hyb.k(), 0);
        assert_eq!(hyb.nnz(), 0);
    }

    #[test]
    fn heuristic_k_all_equal_rows_takes_the_full_width() {
        // 6000 rows of exactly 3 entries: every row reaches width 3
        // (6000 >= max(4096, 2000)), so ELL absorbs everything and the
        // COO tail is empty.
        let rows = 6000;
        let mut t = TripletMatrix::<f64>::new(rows, rows);
        for r in 0..rows {
            for j in 0..3 {
                t.push(r, (r + j * 17) % rows, 1.0 + j as f64).unwrap();
            }
        }
        let m = t.to_csr();
        assert_eq!(HybMatrix::heuristic_k(&m), 3);
        let (hyb, _) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        assert_eq!(hyb.k(), 3);
        assert_eq!(hyb.coo().nnz(), 0, "no spill for equal rows");
        assert_eq!(hyb.ell().nnz(), m.nnz());
    }

    #[test]
    fn heuristic_k_single_dense_row_stays_pure_coo() {
        // One 600-entry row in an otherwise empty 5000-row matrix: no
        // width is reached by enough rows, so k = 0 and every entry
        // lands in the COO tail.
        let rows = 5000;
        let mut t = TripletMatrix::<f64>::new(rows, rows);
        for c in 0..600 {
            t.push(42, c, 1.0 + c as f64).unwrap();
        }
        let m = t.to_csr();
        assert_eq!(HybMatrix::heuristic_k(&m), 0);
        let (hyb, _) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        assert_eq!(hyb.k(), 0);
        assert_eq!(hyb.ell().nnz(), 0);
        assert_eq!(hyb.coo().nnz(), m.nnz());
    }

    #[test]
    fn heuristic_k_zero_for_tiny_matrices() {
        // fewer than 4096 rows total means no width qualifies
        let mut t = TripletMatrix::<f64>::new(10, 10);
        for i in 0..10 {
            t.push(i, i, 1.0).unwrap();
        }
        let m = t.to_csr();
        assert_eq!(HybMatrix::heuristic_k(&m), 0);
    }

    #[test]
    fn spmv_matches_csr_on_skewed_matrix() {
        let m = skewed(5000, 37, 64);
        let (hyb, _) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        let x: Vec<f64> = (0..m.cols())
            .map(|i| (i % 13) as f64 * 0.25 + 1.0)
            .collect();
        let y_ref = m.spmv(&x);
        let y = hyb.spmv(&x);
        for (a, b) in y.iter().zip(y_ref.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn nnz_is_preserved_across_split() {
        let m = skewed(6000, 50, 40);
        let (hyb, _) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        assert_eq!(hyb.nnz(), m.nnz());
        assert!(hyb.coo().nnz() > 0, "wide rows must spill to COO");
    }

    #[test]
    fn explicit_k_zero_is_pure_coo() {
        let m = skewed(5000, 100, 10);
        let (hyb, _) = HybMatrix::from_csr_with_k(&m, 0, usize::MAX).unwrap();
        assert_eq!(hyb.ell().nnz(), 0);
        assert_eq!(hyb.coo().nnz(), m.nnz());
        let x = vec![1.0; m.cols()];
        assert_eq!(hyb.spmv(&x), m.spmv(&x));
    }

    #[test]
    fn conversion_cost_is_nonzero() {
        let m = skewed(5000, 100, 10);
        let (_, cost) = HybMatrix::from_csr(&m, usize::MAX).unwrap();
        assert!(cost.bytes_written > 0);
        assert!(cost.wall.as_nanos() > 0);
    }

    #[test]
    fn memory_budget_propagates() {
        let m = skewed(5000, 10, 200);
        let r = HybMatrix::from_csr_with_k(&m, 200, 1024);
        assert!(r.is_err());
    }
}
