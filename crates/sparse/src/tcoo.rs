//! TCOO — Tiled COO (Yang et al. \[28\], "Fast SpMV on GPUs: implications
//! for graph mining", VLDB'11).
//!
//! The matrix is partitioned into vertical **column tiles** so each tile's
//! slice of `x` fits in the texture cache; within a tile, entries are COO
//! sorted row-major. SpMV processes one tile at a time, giving temporal
//! locality on `x` at the cost of re-walking `y`. The tile count is an
//! input parameter the original work finds by **exhaustive search** —
//! which this reproduction's tuner (in `spmv-kernels`) performs as well,
//! charging its trials to preprocessing, as the paper does (§V: "we
//! performed an exhaustive search to find the best number of tiles").

use crate::cost::{timed, PreprocessCost};
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::SpFormat;

/// One column tile: a row-major-sorted COO slice over a column range.
#[derive(Clone, Debug, PartialEq)]
pub struct TcooTile {
    /// First column covered by this tile (inclusive).
    pub col_start: u32,
    /// One past the last column covered (exclusive).
    pub col_end: u32,
    /// Offset of this tile's entries in the shared arrays.
    pub entry_start: usize,
    /// Number of entries in this tile.
    pub entry_count: usize,
}

/// Tiled-COO matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct TcooMatrix<T> {
    rows: usize,
    cols: usize,
    tiles: Vec<TcooTile>,
    row_indices: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> TcooMatrix<T> {
    /// Convert from CSR into `n_tiles` equal-width column tiles.
    pub fn from_csr(
        csr: &CsrMatrix<T>,
        n_tiles: usize,
        max_bytes: usize,
    ) -> Result<(Self, PreprocessCost), SparseError> {
        if n_tiles == 0 {
            return Err(SparseError::InvalidStructure(
                "TCOO requires at least one tile".into(),
            ));
        }
        let nnz = csr.nnz();
        let bytes = nnz * (8 + T::BYTES) + n_tiles * std::mem::size_of::<TcooTile>();
        if bytes > max_bytes {
            return Err(SparseError::CapacityExceeded {
                format: "TCOO",
                detail: format!("tiled storage {bytes} B exceeds budget {max_bytes} B"),
            });
        }
        let (out, cost) = timed(|cost| {
            let cols = csr.cols().max(1);
            let tile_width = cols.div_ceil(n_tiles);
            // Bucket entries by tile (counting pass + placement pass),
            // preserving row-major order within each tile because the CSR
            // scan is already row-major.
            let mut counts = vec![0usize; n_tiles];
            for &c in csr.col_indices() {
                counts[(c as usize) / tile_width] += 1;
            }
            let mut starts = vec![0usize; n_tiles + 1];
            for t in 0..n_tiles {
                starts[t + 1] = starts[t] + counts[t];
            }
            let mut row_indices = vec![0u32; nnz];
            let mut col_indices = vec![0u32; nnz];
            let mut values = vec![T::ZERO; nnz];
            let mut cursor = starts.clone();
            for (r, c, v) in csr.iter() {
                let t = c / tile_width;
                let dst = cursor[t];
                cursor[t] += 1;
                row_indices[dst] = r as u32;
                col_indices[dst] = c as u32;
                values[dst] = v;
            }
            let tiles: Vec<TcooTile> = (0..n_tiles)
                .map(|t| TcooTile {
                    col_start: (t * tile_width) as u32,
                    col_end: (((t + 1) * tile_width).min(cols)) as u32,
                    entry_start: starts[t],
                    entry_count: counts[t],
                })
                .collect();
            // two passes over the data + one write of the restructured copy
            cost.bytes_read += 2 * nnz as u64 * (8 + T::BYTES as u64);
            cost.bytes_written += nnz as u64 * (8 + T::BYTES as u64);
            TcooMatrix {
                rows: csr.rows(),
                cols: csr.cols(),
                tiles,
                row_indices,
                col_indices,
                values,
            }
        });
        Ok((out, cost))
    }

    /// Candidate tile counts for the exhaustive search, sized so a tile's
    /// `x` slice spans roughly 1/8x to 8x of a `cache_bytes` texture cache.
    pub fn tile_search_space(cols: usize, cache_bytes: usize) -> Vec<usize> {
        let x_bytes = cols * T::BYTES;
        let ideal = x_bytes.div_ceil(cache_bytes.max(1)).max(1);
        let mut v: Vec<usize> = Vec::new();
        let mut t = (ideal / 8).max(1);
        while t <= ideal * 8 && t <= cols.max(1) {
            v.push(t);
            t *= 2;
        }
        if v.is_empty() {
            v.push(1);
        }
        v
    }

    /// The column tiles.
    pub fn tiles(&self) -> &[TcooTile] {
        &self.tiles
    }

    /// Row index per entry (tile-bucketed).
    pub fn row_indices(&self) -> &[u32] {
        &self.row_indices
    }

    /// Column index per entry (tile-bucketed).
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Values (tile-bucketed).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Sequential reference SpMV.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "spmv: x length != cols");
        let mut y = vec![T::ZERO; self.rows];
        for tile in &self.tiles {
            let lo = tile.entry_start;
            let hi = lo + tile.entry_count;
            for k in lo..hi {
                let r = self.row_indices[k] as usize;
                let c = self.col_indices[k] as usize;
                debug_assert!(c >= tile.col_start as usize && c < tile.col_end as usize);
                y[r] += self.values[k] * x[c];
            }
        }
        y
    }
}

impl<T: Scalar> SpFormat for TcooMatrix<T> {
    fn format_name(&self) -> &'static str {
        "TCOO"
    }
    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn storage_bytes(&self) -> usize {
        self.values.len() * (8 + T::BYTES) + self.tiles.len() * std::mem::size_of::<TcooTile>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn scattered(rows: usize) -> CsrMatrix<f64> {
        let mut t = TripletMatrix::new(rows, rows);
        for r in 0..rows {
            for j in 0..5usize {
                let c = (r * 31 + j * 97) % rows;
                let _ = t.push(r, c, (r + j) as f64 + 0.25);
            }
        }
        t.to_csr()
    }

    #[test]
    fn spmv_matches_csr_for_various_tile_counts() {
        let m = scattered(500);
        let x: Vec<f64> = (0..500).map(|i| (i % 17) as f64 + 1.0).collect();
        let y_ref = m.spmv(&x);
        for n_tiles in [1, 2, 7, 32, 500] {
            let (tc, _) = TcooMatrix::from_csr(&m, n_tiles, usize::MAX).unwrap();
            let y = tc.spmv(&x);
            for (a, b) in y.iter().zip(y_ref.iter()) {
                assert!((a - b).abs() < 1e-9, "tiles={n_tiles}");
            }
        }
    }

    #[test]
    fn tiles_partition_all_entries() {
        let m = scattered(300);
        let (tc, _) = TcooMatrix::from_csr(&m, 8, usize::MAX).unwrap();
        let total: usize = tc.tiles().iter().map(|t| t.entry_count).sum();
        assert_eq!(total, m.nnz());
        // entries respect their tile's column range
        for tile in tc.tiles() {
            for k in tile.entry_start..tile.entry_start + tile.entry_count {
                let c = tc.col_indices()[k];
                assert!(c >= tile.col_start && c < tile.col_end);
            }
        }
    }

    #[test]
    fn entries_stay_row_sorted_within_tile() {
        let m = scattered(300);
        let (tc, _) = TcooMatrix::from_csr(&m, 4, usize::MAX).unwrap();
        for tile in tc.tiles() {
            let rows = &tc.row_indices()[tile.entry_start..tile.entry_start + tile.entry_count];
            assert!(rows.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn zero_tiles_is_an_error() {
        let m = scattered(10);
        assert!(TcooMatrix::from_csr(&m, 0, usize::MAX).is_err());
    }

    #[test]
    fn search_space_is_nonempty_and_bounded() {
        let space = TcooMatrix::<f64>::tile_search_space(1 << 20, 48 * 1024);
        assert!(!space.is_empty());
        assert!(space.len() < 32);
        assert!(space.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn memory_budget_enforced() {
        let m = scattered(1000);
        assert!(TcooMatrix::from_csr(&m, 4, 100).is_err());
    }
}
