//! DIA — diagonal format (related work, paper §IX).
//!
//! Stores one padded column per occupied diagonal. Superb for banded
//! structured matrices (Bell & Garland show DIA wins there), catastrophic
//! for power-law graphs — included so the format-shootout example can
//! demonstrate *why* the paper's suite needs unstructured formats.

use crate::cost::{timed, PreprocessCost};
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::SpFormat;

/// DIA matrix: diagonal offsets plus `rows x n_diags` padded data.
#[derive(Clone, Debug, PartialEq)]
pub struct DiaMatrix<T> {
    rows: usize,
    cols: usize,
    nnz: usize,
    /// Diagonal offsets (`col - row`), sorted ascending.
    offsets: Vec<i64>,
    /// Column-major by diagonal: `data[d * rows + r]` is the entry of
    /// diagonal `d` in row `r` (zero where the diagonal leaves the matrix
    /// or the entry is absent).
    data: Vec<T>,
}

impl<T: Scalar> DiaMatrix<T> {
    /// Convert from CSR; fails when the number of occupied diagonals
    /// exceeds `max_diags` (the padding-explosion guard).
    pub fn from_csr(
        csr: &CsrMatrix<T>,
        max_diags: usize,
    ) -> Result<(Self, PreprocessCost), SparseError> {
        // Collect occupied diagonals first so we can fail cheaply.
        let mut present: std::collections::BTreeSet<i64> = std::collections::BTreeSet::new();
        for (r, c, _) in csr.iter() {
            present.insert(c as i64 - r as i64);
            if present.len() > max_diags {
                return Err(SparseError::CapacityExceeded {
                    format: "DIA",
                    detail: format!("more than {max_diags} occupied diagonals"),
                });
            }
        }
        let (out, cost) = timed(|cost| {
            let offsets: Vec<i64> = present.iter().copied().collect();
            let index_of: std::collections::HashMap<i64, usize> =
                offsets.iter().enumerate().map(|(i, &d)| (d, i)).collect();
            let mut data = vec![T::ZERO; offsets.len() * csr.rows()];
            for (r, c, v) in csr.iter() {
                let d = index_of[&(c as i64 - r as i64)];
                data[d * csr.rows() + r] = v;
            }
            cost.bytes_read += 2 * csr.nnz() as u64 * (4 + T::BYTES as u64);
            cost.bytes_written += data.len() as u64 * T::BYTES as u64;
            DiaMatrix {
                rows: csr.rows(),
                cols: csr.cols(),
                nnz: csr.nnz(),
                offsets,
                data,
            }
        });
        Ok((out, cost))
    }

    /// Occupied diagonal offsets.
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Number of occupied diagonals.
    pub fn n_diags(&self) -> usize {
        self.offsets.len()
    }

    /// Sequential reference SpMV.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "spmv: x length != cols");
        let mut y = vec![T::ZERO; self.rows];
        for (d, &off) in self.offsets.iter().enumerate() {
            for (r, yr) in y.iter_mut().enumerate() {
                let c = r as i64 + off;
                if c >= 0 && (c as usize) < self.cols {
                    *yr += self.data[d * self.rows + r] * x[c as usize];
                }
            }
        }
        y
    }
}

impl<T: Scalar> SpFormat for DiaMatrix<T> {
    fn format_name(&self) -> &'static str {
        "DIA"
    }
    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn storage_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.data.len() * T::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn tridiagonal(n: usize) -> CsrMatrix<f64> {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0).unwrap();
            if i > 0 {
                t.push(i, i - 1, -1.0).unwrap();
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0).unwrap();
            }
        }
        t.to_csr()
    }

    #[test]
    fn tridiagonal_has_three_diagonals() {
        let m = tridiagonal(100);
        let (dia, _) = DiaMatrix::from_csr(&m, 10).unwrap();
        assert_eq!(dia.n_diags(), 3);
        assert_eq!(dia.offsets(), &[-1, 0, 1]);
    }

    #[test]
    fn spmv_matches_csr() {
        let m = tridiagonal(64);
        let (dia, _) = DiaMatrix::from_csr(&m, 10).unwrap();
        let x: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
        let y_ref = m.spmv(&x);
        let y = dia.spmv(&x);
        for (a, b) in y.iter().zip(y_ref.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn scattered_matrix_exceeds_diag_budget() {
        let mut t = TripletMatrix::<f64>::new(100, 100);
        for i in 0..100 {
            t.push(i, (i * 37) % 100, 1.0).unwrap();
        }
        let m = t.to_csr();
        assert!(DiaMatrix::from_csr(&m, 8).is_err());
    }

    #[test]
    fn rectangular_diagonals_clip() {
        let mut t = TripletMatrix::<f64>::new(2, 5);
        t.push(0, 4, 7.0).unwrap();
        t.push(1, 0, 3.0).unwrap();
        let m = t.to_csr();
        let (dia, _) = DiaMatrix::from_csr(&m, 10).unwrap();
        let y = dia.spmv(&[1.0, 0.0, 0.0, 0.0, 2.0]);
        assert_eq!(y, vec![14.0, 3.0]);
    }
}
