//! Preprocessing cost accounting.
//!
//! The paper's headline argument (Fig. 4, Tables III/IV) is about the
//! *preprocessing* price of alternative formats relative to one SpMV. To
//! compare those costs consistently with the simulator's modeled SpMV
//! times, every conversion records the work it performed in hardware-
//! independent units; [`HostModel`] converts those units into modeled host
//! seconds. Conversions additionally record measured wall time so the
//! Criterion benches can report real numbers for the CPU backend.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Work performed by a format conversion / preprocessing step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PreprocessCost {
    /// Bytes read from host memory while scanning source structures.
    pub bytes_read: u64,
    /// Bytes written building the target structure (incl. padding).
    pub bytes_written: u64,
    /// Elements that passed through a comparison sort (each charged
    /// `log2(n)` comparisons by the model).
    pub sorted_elements: u64,
    /// Elements of the largest single sort (for the `log n` factor).
    pub largest_sort: u64,
    /// Number of auto-tuning trials executed (BCCOO configuration search,
    /// TCOO tile search). The *device* time those trials consumed is
    /// tracked separately by the tuner as modeled seconds.
    pub autotune_trials: u32,
    /// Modeled device seconds consumed by auto-tuning trial SpMVs.
    pub autotune_device_seconds: f64,
    /// Measured wall-clock time of the conversion code itself.
    #[serde(skip)]
    pub wall: Duration,
}

impl PreprocessCost {
    /// Accumulate another step's cost into this one.
    pub fn merge(&mut self, other: &PreprocessCost) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.sorted_elements += other.sorted_elements;
        self.largest_sort = self.largest_sort.max(other.largest_sort);
        self.autotune_trials += other.autotune_trials;
        self.autotune_device_seconds += other.autotune_device_seconds;
        self.wall += other.wall;
    }

    /// Record a comparison sort over `n` elements of `elem_bytes` each
    /// (reads + writes for the sort's data movement are charged too).
    pub fn charge_sort(&mut self, n: u64, elem_bytes: u64) {
        self.sorted_elements += n;
        self.largest_sort = self.largest_sort.max(n);
        self.bytes_read += n * elem_bytes;
        self.bytes_written += n * elem_bytes;
    }

    /// This cost projected to a `scale`-times-larger matrix: streamed
    /// bytes, sorted elements and tuning-trial device time grow
    /// linearly (the `log n` sort factor grows via `largest_sort`);
    /// the trial *count* and measured wall time stay fixed. Used by the
    /// bench suite and the adaptive selector to reason about full-size
    /// matrices from downscaled analogs.
    pub fn scaled(&self, scale: u64) -> PreprocessCost {
        PreprocessCost {
            bytes_read: self.bytes_read * scale,
            bytes_written: self.bytes_written * scale,
            sorted_elements: self.sorted_elements * scale,
            largest_sort: self.largest_sort * scale,
            autotune_trials: self.autotune_trials,
            autotune_device_seconds: self.autotune_device_seconds * scale as f64,
            wall: self.wall,
        }
    }

    /// Modeled host-side seconds under `host`.
    pub fn modeled_host_seconds(&self, host: &HostModel) -> f64 {
        let stream = (self.bytes_read + self.bytes_written) as f64 / host.mem_bandwidth_bytes_s;
        let cmp = if self.sorted_elements > 0 {
            let logn = (self.largest_sort.max(2) as f64).log2();
            self.sorted_elements as f64 * logn / host.sort_comparisons_per_s
        } else {
            0.0
        };
        stream + cmp + self.autotune_device_seconds
    }
}

/// First-order host (CPU + memory) performance model used to turn
/// [`PreprocessCost`] work units into seconds.
///
/// Defaults approximate the Intel Core i7 hosts of the paper's testbed
/// (Table II): ~20 GB/s streaming bandwidth and ~100M sort comparisons/s.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HostModel {
    /// Sustained host memory streaming bandwidth, bytes/second.
    pub mem_bandwidth_bytes_s: f64,
    /// Comparison-sort throughput, comparisons/second.
    pub sort_comparisons_per_s: f64,
    /// PCIe 2.0/3.0 host→device copy bandwidth, bytes/second.
    pub pcie_bandwidth_bytes_s: f64,
    /// Fixed latency per host→device copy, seconds.
    pub pcie_latency_s: f64,
}

impl Default for HostModel {
    fn default() -> Self {
        HostModel {
            mem_bandwidth_bytes_s: 20e9,
            sort_comparisons_per_s: 100e6,
            pcie_bandwidth_bytes_s: 6e9,
            pcie_latency_s: 10e-6,
        }
    }
}

impl HostModel {
    /// Modeled time to copy `bytes` from host to device (or back).
    pub fn copy_seconds(&self, bytes: u64) -> f64 {
        self.pcie_latency_s + bytes as f64 / self.pcie_bandwidth_bytes_s
    }
}

/// Measure the wall time of `f`, storing it into the returned cost of the
/// closure. Helper for conversion implementations.
pub fn timed<T>(f: impl FnOnce(&mut PreprocessCost) -> T) -> (T, PreprocessCost) {
    let mut cost = PreprocessCost::default();
    let start = std::time::Instant::now();
    let out = f(&mut cost);
    cost.wall = start.elapsed();
    (out, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = PreprocessCost {
            bytes_read: 10,
            bytes_written: 20,
            sorted_elements: 5,
            largest_sort: 5,
            autotune_trials: 1,
            autotune_device_seconds: 0.5,
            wall: Duration::from_millis(1),
        };
        let b = PreprocessCost {
            bytes_read: 1,
            bytes_written: 2,
            sorted_elements: 100,
            largest_sort: 100,
            autotune_trials: 2,
            autotune_device_seconds: 0.25,
            wall: Duration::from_millis(3),
        };
        a.merge(&b);
        assert_eq!(a.bytes_read, 11);
        assert_eq!(a.bytes_written, 22);
        assert_eq!(a.sorted_elements, 105);
        assert_eq!(a.largest_sort, 100);
        assert_eq!(a.autotune_trials, 3);
        assert_eq!(a.autotune_device_seconds, 0.75);
        assert_eq!(a.wall, Duration::from_millis(4));
    }

    #[test]
    fn modeled_time_grows_with_work() {
        let host = HostModel::default();
        let small = PreprocessCost {
            bytes_read: 1 << 20,
            ..Default::default()
        };
        let mut big = small;
        big.charge_sort(1 << 20, 8);
        assert!(big.modeled_host_seconds(&host) > small.modeled_host_seconds(&host));
    }

    #[test]
    fn zero_cost_is_zero_seconds() {
        let host = HostModel::default();
        assert_eq!(PreprocessCost::default().modeled_host_seconds(&host), 0.0);
    }

    #[test]
    fn copy_time_includes_latency() {
        let host = HostModel::default();
        assert!(host.copy_seconds(0) >= host.pcie_latency_s);
        assert!(host.copy_seconds(1 << 30) > host.copy_seconds(1 << 20));
    }

    #[test]
    fn timed_captures_wall_clock() {
        let (v, cost) = timed(|c| {
            c.bytes_read = 7;
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert_eq!(cost.bytes_read, 7);
        assert!(cost.wall >= Duration::from_millis(1));
    }
}
