//! Property-based tests: every storage format must compute exactly the
//! same SpMV as the CSR reference on *arbitrary* matrices, and every
//! conversion must preserve the stored entries.

use proptest::prelude::*;
use sparse_formats::SpFormat;
use sparse_formats::{
    BccooConfig, BccooMatrix, BrcMatrix, CooMatrix, CsrMatrix, EllMatrix, HybMatrix, TcooMatrix,
    TripletMatrix, UpdateBatch,
};

/// Strategy: an arbitrary small sparse matrix (duplicates allowed — the
/// builder must merge them).
fn arb_matrix() -> impl Strategy<Value = CsrMatrix<f64>> {
    (1usize..40, 1usize..40).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -8.0f64..8.0);
        proptest::collection::vec(entry, 0..300).prop_map(move |entries| {
            let mut t = TripletMatrix::new(rows, cols);
            for (r, c, v) in entries {
                t.push(r, c, v).unwrap();
            }
            t.to_csr()
        })
    })
}

fn arb_x(cols: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-4.0f64..4.0, cols..=cols)
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.iter()
        .zip(b.iter())
        .all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn coo_spmv_matches_csr((m, seed) in arb_matrix().prop_flat_map(|m| {
        let cols = m.cols();
        (Just(m), arb_x(cols))
    })) {
        let (m, x) = (m, seed);
        let (coo, _) = CooMatrix::from_csr(&m);
        prop_assert!(close(&coo.spmv(&x), &m.spmv(&x)));
        prop_assert_eq!(coo.to_csr(), m);
    }

    #[test]
    fn ell_spmv_matches_csr((m, x) in arb_matrix().prop_flat_map(|m| {
        let cols = m.cols();
        (Just(m), arb_x(cols))
    })) {
        let (ell, _) = EllMatrix::from_csr(&m, usize::MAX).unwrap();
        prop_assert!(close(&ell.spmv(&x), &m.spmv(&x)));
    }

    #[test]
    fn hyb_spmv_matches_csr_any_k((m, x, k) in arb_matrix().prop_flat_map(|m| {
        let cols = m.cols();
        (Just(m), arb_x(cols), 0usize..12)
    })) {
        let (hyb, _) = HybMatrix::from_csr_with_k(&m, k, usize::MAX).unwrap();
        prop_assert_eq!(hyb.ell().nnz() + hyb.coo().nnz(), m.nnz());
        prop_assert!(close(&hyb.spmv(&x), &m.spmv(&x)));
    }

    #[test]
    fn brc_spmv_matches_csr((m, x) in arb_matrix().prop_flat_map(|m| {
        let cols = m.cols();
        (Just(m), arb_x(cols))
    })) {
        let (brc, _) = BrcMatrix::from_csr(&m, usize::MAX).unwrap();
        prop_assert!(close(&brc.spmv(&x), &m.spmv(&x)));
    }

    #[test]
    fn bccoo_spmv_matches_csr_any_tile((m, x, bh, bw) in arb_matrix().prop_flat_map(|m| {
        let cols = m.cols();
        (Just(m), arb_x(cols), prop::sample::select(vec![1usize, 2, 4, 8]),
         prop::sample::select(vec![1usize, 2, 4, 8]))
    })) {
        let cfg = BccooConfig { block_h: bh, block_w: bw, ..Default::default() };
        let (b, _) = BccooMatrix::from_csr(&m, cfg, usize::MAX).unwrap();
        prop_assert_eq!(b.nnz(), m.nnz());
        prop_assert!(close(&b.spmv(&x), &m.spmv(&x)));
    }

    #[test]
    fn tcoo_spmv_matches_csr_any_tiling((m, x, tiles) in arb_matrix().prop_flat_map(|m| {
        let cols = m.cols();
        (Just(m), arb_x(cols), 1usize..20)
    })) {
        let (tc, _) = TcooMatrix::from_csr(&m, tiles, usize::MAX).unwrap();
        prop_assert!(close(&tc.spmv(&x), &m.spmv(&x)));
    }

    #[test]
    fn transpose_is_an_involution(m in arb_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        // and preserves nnz + swaps shape
        let t = m.transpose();
        prop_assert_eq!(t.nnz(), m.nnz());
        prop_assert_eq!(t.shape(), (m.cols(), m.rows()));
    }

    #[test]
    fn transpose_spmv_duality((m, x, y) in arb_matrix().prop_flat_map(|m| {
        let (rows, cols) = m.shape();
        (Just(m), arb_x(cols), arb_x(rows))
    })) {
        // <A x, y> == <x, Aᵀ y>
        let ax = m.spmv(&x);
        let aty = m.transpose().spmv(&y);
        let lhs: f64 = ax.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(aty.iter()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-7 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    #[test]
    fn matrix_market_round_trips(m in arb_matrix()) {
        let mut buf = Vec::new();
        sparse_formats::mmio::write_matrix_market(&m, &mut buf).unwrap();
        let m2: CsrMatrix<f64> = sparse_formats::mmio::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(m, m2);
    }

    #[test]
    fn row_normalize_makes_nonempty_rows_sum_to_one(m in arb_matrix()) {
        let mut n = m.clone();
        n.row_normalize();
        for r in 0..n.rows() {
            let (_, vals) = n.row(r);
            let s: f64 = vals.iter().sum();
            // rows whose sum was ~0 are left alone; others must be ~1
            let (_, orig) = m.row(r);
            let orig_sum: f64 = orig.iter().sum();
            if orig_sum.abs() > 1e-9 {
                prop_assert!((s - 1.0).abs() < 1e-6, "row {} sums to {}", r, s);
            }
        }
    }

    #[test]
    fn spmv_is_linear((m, x1, x2) in arb_matrix().prop_flat_map(|m| {
        let cols = m.cols();
        (Just(m), arb_x(cols), arb_x(cols))
    })) {
        // A(x1 + 2*x2) == A x1 + 2 A x2
        let combined: Vec<f64> = x1.iter().zip(x2.iter()).map(|(a, b)| a + 2.0 * b).collect();
        let lhs = m.spmv(&combined);
        let a1 = m.spmv(&x1);
        let a2 = m.spmv(&x2);
        let rhs: Vec<f64> = a1.iter().zip(a2.iter()).map(|(a, b)| a + 2.0 * b).collect();
        prop_assert!(close(&lhs, &rhs));
    }
}

/// Strategy for an update batch valid against `m`.
fn arb_batch(m: &CsrMatrix<f64>) -> impl Strategy<Value = UpdateBatch<f64>> {
    let rows = m.rows();
    let cols = m.cols();
    let m = m.clone();
    proptest::collection::btree_set(0..rows as u32, 0..rows.min(8)).prop_flat_map(move |touched| {
        let touched: Vec<u32> = touched.into_iter().collect();
        let per_row: Vec<_> = touched
            .iter()
            .map(|&r| {
                let (rcols, _) = m.row(r as usize);
                let rcols = rcols.to_vec();
                let deletes = proptest::sample::subsequence(rcols.clone(), 0..=rcols.len());
                let inserts = proptest::collection::btree_set(0..cols as u32, 0..4);
                (deletes, inserts)
            })
            .collect();
        let rcols_by_row: Vec<Vec<u32>> = touched
            .iter()
            .map(|&r| m.row(r as usize).0.to_vec())
            .collect();
        (Just(touched), per_row).prop_map(move |(touched, per_row)| {
            let mut b = UpdateBatch::<f64>::empty();
            for (i, (dels, ins)) in per_row.into_iter().enumerate() {
                b.rows.push(touched[i]);
                let mut dels = dels;
                dels.sort_unstable();
                b.delete_cols.extend_from_slice(&dels);
                b.delete_offsets.push(b.delete_cols.len() as u32);
                for c in ins {
                    // inserts must not collide with existing columns
                    if rcols_by_row[i].binary_search(&c).is_err() {
                        b.insert_cols.push(c);
                        b.insert_vals.push(1.0 + c as f64 * 0.25);
                    }
                }
                b.insert_offsets.push(b.insert_cols.len() as u32);
            }
            b
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn update_batches_validate_and_apply((m, batch) in arb_matrix().prop_flat_map(|m| {
        let b = arb_batch(&m);
        (Just(m), b)
    })) {
        batch.validate().unwrap();
        let updated = batch.apply_to_csr(&m);
        // nnz accounting: original - deletions + insertions
        let expect = m.nnz() - batch.total_deletes() + batch.total_inserts();
        prop_assert_eq!(updated.nnz(), expect);
        // untouched rows identical
        let touched: std::collections::HashSet<u32> = batch.rows.iter().copied().collect();
        for r in 0..m.rows() {
            if !touched.contains(&(r as u32)) {
                prop_assert_eq!(m.row(r), updated.row(r), "row {} changed", r);
            }
        }
    }
}
