//! Property tests for the streaming maintenance engine (the ISSUE's
//! correctness bar): for ANY matrix, ANY batch sequence, ANY
//! `ACSR_SIM_THREADS` worker width, and ANY way of splitting a batch
//! into sub-batches, the maintained engine must be **bit-identical** —
//! metadata, live elements, binning, SpMV values/counters/modeled time —
//! to a from-scratch [`StreamEngine::build`] of the same logical matrix.
//!
//! Width coverage follows the simulator's determinism envelope (see
//! `acsr/tests/proptest_multi.rs`): `StaticLongTail` is bit-stable at
//! every worker width, so the maintained-vs-fresh comparison runs at
//! widths 1, 2 and 4.

use acsr::AcsrConfig;
use acsr_stream::StreamEngine;
use gpu_sim::{presets, set_sim_threads, Device, DeviceBuffer};
use graphgen::{generate_power_law, generate_update_batch, PowerLawConfig, UpdateConfig};
use proptest::prelude::*;
use sparse_formats::{CsrMatrix, UpdateBatch};
use spmv_kernels::GpuSpmv;
use std::sync::Mutex;

/// `set_sim_threads` is process-global; hold this across width changes.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn arb_matrix() -> impl Strategy<Value = CsrMatrix<f64>> {
    (20usize..140, 4u64..2000, any::<bool>()).prop_map(|(rows, seed, wide)| {
        generate_power_law(&PowerLawConfig {
            rows,
            cols: rows,
            mean_degree: 5.0,
            max_degree: if wide { rows } else { rows / 3 + 2 },
            col_skew: 0.4,
            seed,
            ..Default::default()
        })
    })
}

/// Apply `batches` in order to a maintained engine; return it plus the
/// host-side reference state.
fn maintain(
    dev: &Device,
    m: &CsrMatrix<f64>,
    batches: &[UpdateBatch<f64>],
    cfg: AcsrConfig,
) -> (StreamEngine<f64>, CsrMatrix<f64>) {
    let mut eng = StreamEngine::build(dev, m, cfg);
    let mut host = m.clone();
    for b in batches {
        host = b.apply_to_csr(&host);
        eng.apply_batch(dev, b);
    }
    (eng, host)
}

/// Maintained ≡ fresh, down to SpMV bits and the modeled report.
fn assert_identical(dev: &Device, a: &StreamEngine<f64>, b: &StreamEngine<f64>) {
    let (ma, mb) = (a.acsr().matrix(), b.acsr().matrix());
    assert_eq!(
        ma.row_start.as_slice(),
        mb.row_start.as_slice(),
        "row_start"
    );
    assert_eq!(ma.row_len.as_slice(), mb.row_len.as_slice(), "row_len");
    assert_eq!(ma.row_cap.as_slice(), mb.row_cap.as_slice(), "row_cap");
    assert_eq!(a.to_csr(), b.to_csr(), "live elements");
    assert_eq!(a.acsr().binning(), b.acsr().binning(), "binning");

    let x: Vec<f64> = (0..ma.cols())
        .map(|i| 0.25 + (i % 13) as f64 * 0.375)
        .collect();
    let xd = dev.alloc(x);
    let ya: DeviceBuffer<f64> = dev.alloc(vec![-7.0; ma.rows()]);
    let yb: DeviceBuffer<f64> = dev.alloc(vec![-9.0; mb.rows()]);
    let ra = a.spmv(dev, &xd, &ya);
    let rb = b.spmv(dev, &xd, &yb);
    for (r, (va, vb)) in ya.as_slice().iter().zip(yb.as_slice()).enumerate() {
        assert_eq!(va.to_bits(), vb.to_bits(), "y[{r}]");
    }
    assert_eq!(ra.counters, rb.counters, "SpMV counters");
    assert_eq!(ra.time_s.to_bits(), rb.time_s.to_bits(), "SpMV time");
}

/// Split one batch into a deletes-only batch followed by an inserts-only
/// batch (delete→insert is exactly the merge's two passes, so the final
/// logical state is the same).
fn split_ops(b: &UpdateBatch<f64>) -> [UpdateBatch<f64>; 2] {
    let n = b.rows.len() as u32;
    [
        UpdateBatch {
            rows: b.rows.clone(),
            delete_offsets: b.delete_offsets.clone(),
            delete_cols: b.delete_cols.clone(),
            insert_offsets: vec![0; n as usize + 1],
            insert_cols: Vec::new(),
            insert_vals: Vec::new(),
        },
        UpdateBatch {
            rows: b.rows.clone(),
            delete_offsets: vec![0; n as usize + 1],
            delete_cols: Vec::new(),
            insert_offsets: b.insert_offsets.clone(),
            insert_cols: b.insert_cols.clone(),
            insert_vals: b.insert_vals.clone(),
        },
    ]
}

/// Split one batch by row: the first `k` touched rows, then the rest.
fn split_rows(b: &UpdateBatch<f64>, k: usize) -> [UpdateBatch<f64>; 2] {
    let cut = |rows: std::ops::Range<usize>| {
        let dlo = b.delete_offsets[rows.start] as usize;
        let dhi = b.delete_offsets[rows.end] as usize;
        let ilo = b.insert_offsets[rows.start] as usize;
        let ihi = b.insert_offsets[rows.end] as usize;
        UpdateBatch {
            rows: b.rows[rows.clone()].to_vec(),
            delete_offsets: b.delete_offsets[rows.start..=rows.end]
                .iter()
                .map(|&o| o - dlo as u32)
                .collect(),
            delete_cols: b.delete_cols[dlo..dhi].to_vec(),
            insert_offsets: b.insert_offsets[rows.start..=rows.end]
                .iter()
                .map(|&o| o - ilo as u32)
                .collect(),
            insert_cols: b.insert_cols[ilo..ihi].to_vec(),
            insert_vals: b.insert_vals[ilo..ihi].to_vec(),
        }
    };
    [cut(0..k), cut(k..b.rows.len())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Maintained vs fresh, across a multi-batch churn sequence and every
    /// deterministic worker width.
    #[test]
    fn maintained_engine_is_bit_identical_across_widths(
        m in arb_matrix(),
        n_batches in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let _g = WIDTH_LOCK.lock().unwrap();
        let cfg = AcsrConfig::static_long_tail();
        for width in [1usize, 2, 4] {
            set_sim_threads(width);
            let dev = Device::new(presets::gtx_titan());
            let mut host = m.clone();
            let mut batches = Vec::new();
            for k in 0..n_batches {
                let b = generate_update_batch(&host, &UpdateConfig {
                    row_fraction: 0.3,
                    seed: seed.wrapping_add(k as u64),
                    ..Default::default()
                });
                host = b.apply_to_csr(&host);
                batches.push(b);
            }
            let (eng, reached) = maintain(&dev, &m, &batches, cfg);
            prop_assert_eq!(&reached, &host);
            let fresh = StreamEngine::build(&dev, &host, cfg);
            assert_identical(&dev, &eng, &fresh);
        }
        set_sim_threads(0);
    }

    /// Applying a batch whole, as deletes-then-inserts, or split by row
    /// partition must all converge to the same bit-identical engine.
    #[test]
    fn batch_splits_converge_to_the_same_state(
        m in arb_matrix(),
        seed in 0u64..10_000,
        frac in 1usize..7,
    ) {
        let _g = WIDTH_LOCK.lock().unwrap();
        set_sim_threads(1);
        let cfg = AcsrConfig::static_long_tail();
        let dev = Device::new(presets::gtx_titan());
        let b = generate_update_batch(&m, &UpdateConfig {
            row_fraction: 0.4,
            seed,
            ..Default::default()
        });
        prop_assume!(!b.rows.is_empty());
        let (whole, host) = maintain(&dev, &m, std::slice::from_ref(&b), cfg);

        let (by_ops, host_ops) = maintain(&dev, &m, &split_ops(&b), cfg);
        prop_assert_eq!(&host_ops, &host, "delete-then-insert split state");
        assert_identical(&dev, &by_ops, &whole);

        let k = b.rows.len() * frac / 7;
        let (by_rows, host_rows) = maintain(&dev, &m, &split_rows(&b, k), cfg);
        prop_assert_eq!(&host_rows, &host, "row-partition split state");
        assert_identical(&dev, &by_rows, &whole);
        set_sim_threads(0);
    }

    /// Delete-everything-then-reinsert: the maintained engine must come
    /// back bit-identical to a fresh build of the reinserted matrix even
    /// through total structural turnover.
    #[test]
    fn full_turnover_converges(m in arb_matrix(), seed in 0u64..10_000) {
        let _g = WIDTH_LOCK.lock().unwrap();
        set_sim_threads(1);
        let cfg = AcsrConfig::static_long_tail();
        let dev = Device::new(presets::gtx_titan());
        let rows: Vec<u32> = (0..m.rows() as u32).filter(|&r| m.row_nnz(r as usize) > 0).collect();
        prop_assume!(!rows.is_empty());
        let mut delete_offsets = vec![0u32];
        let mut delete_cols = Vec::new();
        for &r in &rows {
            delete_cols.extend_from_slice(m.row(r as usize).0);
            delete_offsets.push(delete_cols.len() as u32);
        }
        let wipe = UpdateBatch::<f64> {
            rows: rows.clone(),
            delete_offsets,
            delete_cols,
            insert_offsets: vec![0; rows.len() + 1],
            insert_cols: Vec::new(),
            insert_vals: Vec::new(),
        };
        let mut eng = StreamEngine::build(&dev, &m, cfg);
        eng.apply_batch(&dev, &wipe);
        prop_assert_eq!(eng.to_csr().nnz(), 0);

        // refill with a perturbed copy (every value rescaled, one extra
        // diagonal entry per formerly-empty touched row)
        let mut insert_offsets = vec![0u32];
        let mut insert_cols = Vec::new();
        let mut insert_vals = Vec::new();
        for &r in &rows {
            let (cols, vals) = m.row(r as usize);
            insert_cols.extend_from_slice(cols);
            insert_vals.extend(vals.iter().map(|v| v * 1.5 + seed as f64));
            insert_offsets.push(insert_cols.len() as u32);
        }
        let refill = UpdateBatch::<f64> {
            rows,
            delete_offsets: vec![0; wipe.rows.len() + 1],
            delete_cols: Vec::new(),
            insert_offsets,
            insert_cols,
            insert_vals,
        };
        let host = refill.apply_to_csr(&eng.to_csr());
        eng.apply_batch(&dev, &refill);
        prop_assert_eq!(&eng.to_csr(), &host);
        let fresh = StreamEngine::build(&dev, &host, cfg);
        assert_identical(&dev, &eng, &fresh);
        set_sim_threads(0);
    }
}
