//! The streaming engine's correctness bar: after any batch sequence the
//! maintained engine must be **bit-identical** to a from-scratch
//! [`StreamEngine::build`] of the same logical matrix — metadata, live
//! elements, binning, and every subsequent SpMV's values, counters and
//! modeled time.

use acsr::AcsrConfig;
use acsr_stream::{MaintainReason, StreamEngine};
use gpu_sim::{presets, Device, DeviceBuffer};
use graphgen::{
    generate_edge_stream, generate_rmat, generate_update_batch, ChurnConfig, RmatConfig,
    UpdateConfig,
};
use sparse_formats::CsrMatrix;
use spmv_kernels::GpuSpmv;

fn rmat(scale: u32, seed: u64) -> CsrMatrix<f64> {
    generate_rmat(&RmatConfig {
        scale,
        edge_factor: 8,
        seed,
        ..Default::default()
    })
}

fn xvec(cols: usize) -> Vec<f64> {
    (0..cols).map(|i| 0.5 + (i % 11) as f64 * 0.125).collect()
}

/// Assert maintained ≡ fresh: geometry, elements, binning, and one SpMV's
/// bits + modeled report.
fn assert_bit_identical(dev: &Device, maintained: &StreamEngine<f64>, fresh: &StreamEngine<f64>) {
    let (a, b) = (maintained.acsr().matrix(), fresh.acsr().matrix());
    assert_eq!(a.row_start.as_slice(), b.row_start.as_slice(), "row_start");
    assert_eq!(a.row_len.as_slice(), b.row_len.as_slice(), "row_len");
    assert_eq!(a.row_cap.as_slice(), b.row_cap.as_slice(), "row_cap");
    assert_eq!(a.nnz(), b.nnz(), "nnz");
    assert_eq!(maintained.to_csr(), fresh.to_csr(), "live elements");
    assert_eq!(
        maintained.acsr().binning(),
        fresh.acsr().binning(),
        "binning"
    );
    assert_eq!(maintained.occupancy(), fresh.occupancy(), "occupancy");
    assert_eq!(maintained.layout(), fresh.layout(), "layout");

    let x = xvec(a.cols());
    let xd = dev.alloc(x);
    let ya: DeviceBuffer<f64> = dev.alloc(vec![-3.0; a.rows()]);
    let yb: DeviceBuffer<f64> = dev.alloc(vec![-5.0; b.rows()]);
    let ra = maintained.spmv(dev, &xd, &ya);
    let rb = fresh.spmv(dev, &xd, &yb);
    for (r, (va, vb)) in ya.as_slice().iter().zip(yb.as_slice()).enumerate() {
        assert_eq!(va.to_bits(), vb.to_bits(), "y[{r}]");
    }
    assert_eq!(ra.counters, rb.counters, "SpMV counters");
    assert_eq!(
        ra.time_s.to_bits(),
        rb.time_s.to_bits(),
        "SpMV modeled time: {} vs {}",
        ra.time_s,
        rb.time_s
    );
    assert_eq!(ra.launches, rb.launches, "SpMV launches");
}

#[test]
fn build_round_trips_the_matrix() {
    let m = rmat(10, 7);
    let dev = Device::new(presets::gtx_titan());
    let eng = StreamEngine::build(&dev, &m, AcsrConfig::static_long_tail());
    assert_eq!(eng.to_csr(), m);
    eng.acsr().matrix().validate().unwrap();
    // every non-empty row's capacity is its bin's slot width
    for r in 0..m.rows() {
        let cap = eng.acsr().matrix().row_cap.as_slice()[r] as usize;
        let len = m.row_nnz(r);
        if len > 0 {
            assert!(cap >= len && cap < 2 * len.next_power_of_two().max(2) + 1);
        } else {
            assert_eq!(cap, 0);
        }
    }
}

#[test]
fn one_batch_matches_host_reference_and_fresh_build() {
    let m = rmat(10, 21);
    let dev = Device::new(presets::gtx_titan());
    let cfg = AcsrConfig::static_long_tail();
    let mut eng = StreamEngine::build(&dev, &m, cfg);
    let batch = generate_update_batch(&m, &UpdateConfig::default());
    let want = batch.apply_to_csr(&m);
    let report = eng.apply_batch(&dev, &batch);
    assert_eq!(eng.to_csr(), want);
    assert_eq!(report.nnz_after, want.nnz());
    assert_eq!(report.touched_rows, batch.rows.len());
    assert_eq!(eng.epoch(), 1);
    let fresh = StreamEngine::build(&dev, &want, cfg);
    assert_bit_identical(&dev, &eng, &fresh);
}

#[test]
fn sustained_rmat_stream_stays_identical_every_batch() {
    let m = rmat(9, 31);
    let dev = Device::new(presets::gtx_titan());
    let cfg = AcsrConfig::static_long_tail();
    let mut eng = StreamEngine::build(&dev, &m, cfg);
    let stream = generate_edge_stream(
        &m,
        &ChurnConfig {
            updates_per_sec: 40_000.0,
            batch_interval_s: 0.005,
            horizon_s: 0.05,
            ..Default::default()
        },
    );
    assert!(stream.len() >= 8, "need a sustained stream");
    let mut host = m.clone();
    for (k, tb) in stream.iter().enumerate() {
        host = tb.batch.apply_to_csr(&host);
        eng.apply_batch(&dev, &tb.batch);
        assert_eq!(eng.to_csr(), host, "batch {k}");
        let fresh = StreamEngine::build(&dev, &host, cfg);
        assert_bit_identical(&dev, &eng, &fresh);
    }
    assert_eq!(eng.epoch(), stream.len() as u64);
    assert_eq!(eng.ledger().totals().batches, stream.len() as u64);
}

#[test]
fn insert_flood_grows_buffers_and_stays_identical() {
    // small matrix + heavy inserts: the canonical layout must outgrow the
    // element buffers and take the BufferGrow path
    let m = rmat(7, 5);
    let dev = Device::new(presets::gtx_titan());
    let cfg = AcsrConfig::static_long_tail();
    let mut eng = StreamEngine::build(&dev, &m, cfg);
    let mut host = m.clone();
    let mut grew = false;
    for round in 0..6u64 {
        let stream = generate_edge_stream(
            &host,
            &ChurnConfig {
                updates_per_sec: 60_000.0,
                batch_interval_s: 0.01,
                horizon_s: 0.03,
                insert_fraction: 0.95,
                seed: 900 + round,
                ..Default::default()
            },
        );
        for tb in &stream {
            host = tb.batch.apply_to_csr(&host);
            let r = eng.apply_batch(&dev, &tb.batch);
            grew |= r.buffer_grown;
        }
    }
    assert!(grew, "insert flood must trigger buffer growth");
    assert!(eng
        .ledger()
        .entries()
        .iter()
        .flat_map(|e| &e.events)
        .any(|ev| ev.reason == MaintainReason::BufferGrow));
    let fresh = StreamEngine::build(&dev, &host, cfg);
    assert_bit_identical(&dev, &eng, &fresh);
}

#[test]
fn steady_churn_is_mostly_in_place() {
    let m = rmat(10, 77);
    let dev = Device::new(presets::gtx_titan());
    let mut eng = StreamEngine::build(&dev, &m, AcsrConfig::static_long_tail());
    let stream = generate_edge_stream(
        &m,
        &ChurnConfig {
            updates_per_sec: 30_000.0,
            batch_interval_s: 0.004,
            horizon_s: 0.04,
            ..Default::default()
        },
    );
    for tb in &stream {
        eng.apply_batch(&dev, &tb.batch);
    }
    let t = eng.ledger().totals();
    // balanced insert/delete churn: the slot layout absorbs most touched
    // rows in place; migrations (bin-class changes) are the minority
    assert!(
        t.in_place_rows > t.migrated_rows,
        "in-place {} vs migrated {}",
        t.in_place_rows,
        t.migrated_rows
    );
    assert_eq!(t.buffer_grows, 0, "steady churn must not regrow buffers");
}

#[test]
fn incremental_batch_is_much_cheaper_than_rebuild() {
    let m = rmat(14, 13);
    let dev = Device::new(presets::gtx_titan());
    let cfg = AcsrConfig::static_long_tail();
    let mut eng = StreamEngine::build(&dev, &m, cfg);
    let stream = generate_edge_stream(
        &m,
        &ChurnConfig {
            updates_per_sec: 100_000.0,
            batch_interval_s: 0.01,
            horizon_s: 0.01,
            ..Default::default()
        },
    );
    let report = eng.apply_batch(&dev, &stream[0].batch);
    // the rebuild alternative ships the whole device matrix over PCIe
    let rebuild_s = dev.htod_seconds(eng.acsr().matrix().device_bytes());
    assert!(
        report.total_seconds * 10.0 < rebuild_s,
        "incremental {:.3e}s vs rebuild {:.3e}s",
        report.total_seconds,
        rebuild_s
    );
}

#[test]
fn empty_batch_is_a_cheap_no_op() {
    let m = rmat(8, 3);
    let dev = Device::new(presets::gtx_titan());
    let cfg = AcsrConfig::static_long_tail();
    let mut eng = StreamEngine::build(&dev, &m, cfg);
    let report = eng.apply_batch(&dev, &sparse_formats::UpdateBatch::empty());
    assert_eq!(report.touched_rows, 0);
    assert_eq!(report.migrated_rows, 0);
    assert_eq!(report.nnz_after, m.nnz());
    assert_eq!(eng.to_csr(), m);
    let fresh = StreamEngine::build(&dev, &m, cfg);
    assert_bit_identical(&dev, &eng, &fresh);
}

#[test]
fn row_emptying_and_refilling_batches_stay_identical() {
    let m = rmat(8, 17);
    let dev = Device::new(presets::gtx_titan());
    let cfg = AcsrConfig::static_long_tail();
    let mut eng = StreamEngine::build(&dev, &m, cfg);
    // empty the densest row entirely, then refill it sparsely
    let r = (0..m.rows()).max_by_key(|&r| m.row_nnz(r)).unwrap() as u32;
    let (rcols, _) = m.row(r as usize);
    let wipe = sparse_formats::UpdateBatch::<f64> {
        rows: vec![r],
        delete_offsets: vec![0, rcols.len() as u32],
        delete_cols: rcols.to_vec(),
        insert_offsets: vec![0, 0],
        insert_cols: vec![],
        insert_vals: vec![],
    };
    let host1 = wipe.apply_to_csr(&m);
    eng.apply_batch(&dev, &wipe);
    assert_eq!(eng.to_csr(), host1);
    assert_bit_identical(&dev, &eng, &StreamEngine::build(&dev, &host1, cfg));

    let refill = sparse_formats::UpdateBatch::<f64> {
        rows: vec![r],
        delete_offsets: vec![0, 0],
        delete_cols: vec![],
        insert_offsets: vec![0, 2],
        insert_cols: vec![1, 5],
        insert_vals: vec![2.5, -1.25],
    };
    let host2 = refill.apply_to_csr(&host1);
    eng.apply_batch(&dev, &refill);
    assert_eq!(eng.to_csr(), host2);
    assert_bit_identical(&dev, &eng, &StreamEngine::build(&dev, &host2, cfg));
}
