//! [`acsr_serve::ChurnSource`] adapter: a maintained [`StreamEngine`]
//! plus a pre-generated edge-stream timetable (e.g.
//! [`graphgen::generate_edge_stream`]). Each due batch is applied in
//! place and its modeled maintenance cost is charged to the serving
//! clock, so `acsr_serve::serve_with_churn` measures query latency under
//! real update contention.

use crate::engine::{BatchReport, StreamEngine};
use acsr_serve::ChurnSource;
use gpu_sim::Device;
use graphgen::TimedBatch;
use sparse_formats::Scalar;
use spmv_kernels::GpuSpmvMulti;

/// A streamed ACSR operator with a churn timetable.
pub struct ChurnedStream<T> {
    engine: StreamEngine<T>,
    stream: Vec<TimedBatch<T>>,
    cursor: usize,
    /// Per-batch maintenance reports, in application order.
    pub reports: Vec<BatchReport>,
}

impl<T: Scalar> ChurnedStream<T> {
    /// Wrap a maintained engine and its (arrival-time-ordered) batch
    /// stream.
    pub fn new(engine: StreamEngine<T>, stream: Vec<TimedBatch<T>>) -> Self {
        debug_assert!(stream.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        ChurnedStream {
            engine,
            stream,
            cursor: 0,
            reports: Vec::new(),
        }
    }

    /// The maintained engine (e.g. for post-run bit-identity checks).
    pub fn engine(&self) -> &StreamEngine<T> {
        &self.engine
    }

    /// Batches applied so far.
    pub fn applied(&self) -> usize {
        self.cursor
    }

    /// Give the engine back (consume the adapter).
    pub fn into_engine(self) -> StreamEngine<T> {
        self.engine
    }
}

impl<T: Scalar> ChurnSource<T> for ChurnedStream<T> {
    fn operator(&self) -> &dyn GpuSpmvMulti<T> {
        &self.engine
    }

    fn next_event_s(&self) -> Option<f64> {
        self.stream.get(self.cursor).map(|b| b.at_s)
    }

    fn apply_next(&mut self, dev: &Device) -> f64 {
        let batch = self.stream[self.cursor].batch.clone();
        self.cursor += 1;
        let report = self.engine.apply_batch(dev, &batch);
        let spent = report.total_seconds;
        self.reports.push(report);
        spent
    }
}
