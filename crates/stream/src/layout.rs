//! Canonical bin-arena layout for the streaming ACSR.
//!
//! The stream engine needs a device layout that is a **pure function of
//! the logical matrix**: after any sequence of update batches the
//! maintained matrix must be bit-identical (metadata, live elements, and
//! hence SpMV timing) to one built from scratch off the same host CSR.
//! Row-order slack layouts (`AcsrMatrix::from_csr`) cannot offer that —
//! slack erodes as rows grow, so the layout depends on history.
//!
//! Instead the element buffers are partitioned into one *arena per bin*,
//! in ascending bin order. Every row of bin `b` occupies a fixed-width
//! slot of `2^b` elements — the bin's maximum row length — so a row can
//! grow in place until it leaves its length class, which is exactly when
//! ACSR has to re-bin it anyway. Rows fill their bin's slots in row-id
//! order (rank). Arena capacities are a step function of the bin's row
//! count (next power of two, doubled, with a small floor), so small
//! membership drift leaves every arena base — and therefore every
//! untouched row — exactly where it was.

use sparse_formats::stats::bin_index;

/// Element width of one slot in bin `b` (the bin's maximum row length;
/// bin 0 holds empty rows and stores nothing).
pub fn slot_width(b: usize) -> usize {
    if b == 0 {
        0
    } else {
        1usize << b
    }
}

/// Slot capacity reserved for an arena holding `n` rows: the next power
/// of two, doubled, floored at 8 — a step function, so an arena's
/// capacity (and every downstream arena base) only changes when the bin's
/// population crosses a power-of-two boundary.
pub fn arena_slots(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        n.next_power_of_two().saturating_mul(2).max(8)
    }
}

/// The arena geometry for a given per-bin row census.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotLayout {
    /// Reserved slots per bin arena.
    slots: Vec<usize>,
    /// Element offset of each bin arena (prefix sums of `slots * width`).
    bases: Vec<usize>,
    /// Total elements spanned by all arenas.
    total: usize,
}

impl SlotLayout {
    /// Geometry for `counts[b]` rows in bin `b`.
    pub fn for_bins(counts: &[usize]) -> SlotLayout {
        let slots: Vec<usize> = counts.iter().map(|&n| arena_slots(n)).collect();
        let mut bases = Vec::with_capacity(slots.len());
        let mut pos = 0usize;
        for (b, &s) in slots.iter().enumerate() {
            bases.push(pos);
            pos += s * slot_width(b);
        }
        SlotLayout {
            slots,
            bases,
            total: pos,
        }
    }

    /// Geometry for a matrix given by its row lengths.
    pub fn for_lengths(lengths: impl Iterator<Item = usize>) -> SlotLayout {
        let mut counts: Vec<usize> = Vec::new();
        for len in lengths {
            let b = bin_index(len);
            if b >= counts.len() {
                counts.resize(b + 1, 0);
            }
            counts[b] += 1;
        }
        SlotLayout::for_bins(&counts)
    }

    /// Number of bins the layout spans.
    pub fn n_bins(&self) -> usize {
        self.slots.len()
    }

    /// Reserved slots of bin `b`'s arena (0 for bins past the end).
    pub fn slots(&self, b: usize) -> usize {
        self.slots.get(b).copied().unwrap_or(0)
    }

    /// Element base of bin `b`'s arena.
    pub fn base(&self, b: usize) -> usize {
        self.bases.get(b).copied().unwrap_or(self.total)
    }

    /// Total elements spanned.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Element offset of slot `slot` in bin `b`'s arena.
    pub fn row_start(&self, b: usize, slot: usize) -> usize {
        debug_assert!(slot < self.slots(b) || slot_width(b) == 0);
        self.base(b) + slot * slot_width(b)
    }
}

/// Assign each row of a bin a slot in its arena: Fibonacci-hash the row
/// id, then linear-probe for a free slot, processing rows in ascending
/// id order. A pure function of `(slots, membership)` — a maintained
/// engine and a fresh build land every row on the same slot — yet
/// *stable*: adding or removing one row perturbs only that row's probe
/// cluster (expected O(1) at the ≤½ load factor [`arena_slots`]
/// guarantees), not every higher-id row the way dense rank-packing
/// would.
///
/// `rows` must be sorted ascending; `slots` must be a power of two with
/// `rows.len() <= slots`. Returns the slot of each row, aligned with the
/// input order.
pub fn assign_slots(slots: usize, rows: &[u32]) -> Vec<u32> {
    assert!(
        slots.is_power_of_two(),
        "arena slots must be a power of two"
    );
    assert!(rows.len() <= slots, "bin over arena capacity");
    debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
    let shift = 64 - slots.trailing_zeros();
    let mask = slots - 1;
    let mut taken = vec![false; slots];
    rows.iter()
        .map(|&r| {
            let mut s = ((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize;
            while taken[s & mask] {
                s += 1;
            }
            taken[s & mask] = true;
            (s & mask) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_width_covers_bin_range() {
        use sparse_formats::stats::bin_range;
        for b in 1..20 {
            let (_, hi) = bin_range(b);
            assert_eq!(slot_width(b), hi, "bin {b}");
        }
        assert_eq!(slot_width(0), 0);
    }

    #[test]
    fn arena_slots_is_a_plateau_function() {
        assert_eq!(arena_slots(0), 0);
        assert_eq!(arena_slots(1), 8);
        assert_eq!(arena_slots(4), 8);
        assert_eq!(arena_slots(5), 16);
        assert_eq!(arena_slots(8), 16);
        assert_eq!(arena_slots(9), 32);
        // stable across a plateau: drift within a power-of-two band does
        // not move any arena base
        for n in 9..16 {
            assert_eq!(arena_slots(n), 32);
        }
    }

    #[test]
    fn layout_is_pure_in_the_census() {
        let a = SlotLayout::for_bins(&[3, 10, 0, 7]);
        let b = SlotLayout::for_bins(&[3, 10, 0, 7]);
        assert_eq!(a, b);
        // bin 0 stores nothing
        assert_eq!(a.base(0), 0);
        assert_eq!(a.base(1), 0);
        // bin 2 is empty: zero slots, base shared with bin 3
        assert_eq!(a.slots(2), 0);
        assert_eq!(a.base(2), a.base(3));
        // bin 1: arena_slots(10) = 32 slots × width 2; bin 3:
        // arena_slots(7) = 16 slots × width 8
        assert_eq!(a.total(), 32 * 2 + 16 * 8);
    }

    #[test]
    fn assigned_slots_are_unique_pure_and_stable() {
        let rows: Vec<u32> = (0..50).map(|i| i * 7 + 3).collect();
        let slots = arena_slots(rows.len());
        let a = assign_slots(slots, &rows);
        let b = assign_slots(slots, &rows);
        assert_eq!(a, b, "pure function of the membership");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), rows.len(), "slots are unique");
        assert!(a.iter().all(|&s| (s as usize) < slots));

        // dropping one row moves only its probe cluster, never the bulk
        let mut fewer = rows.clone();
        fewer.remove(20);
        let c = assign_slots(slots, &fewer);
        let moved = fewer
            .iter()
            .zip(&c)
            .filter(|&(r, &s)| {
                let i = rows.iter().position(|x| x == r).unwrap();
                a[i] != s
            })
            .count();
        assert!(moved <= 5, "removal moved {moved} of {} rows", fewer.len());
    }

    #[test]
    fn row_starts_are_disjoint_and_in_arena() {
        let l = SlotLayout::for_bins(&[0, 5, 3]);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for b in 1..l.n_bins() {
            for rank in 0..l.slots(b) {
                let s = l.row_start(b, rank);
                spans.push((s, s + slot_width(b)));
            }
        }
        spans.sort_unstable();
        assert!(spans.windows(2).all(|w| w[0].1 <= w[1].0));
        assert_eq!(spans.last().unwrap().1, l.total());
    }
}
