//! # acsr-stream — incremental ACSR maintenance for streaming graphs
//!
//! The paper's §VII dynamic-graph story stops at "re-binning is cheap
//! enough to redo per update". This crate pushes that one step further
//! into a *streaming* regime: a live, device-resident ACSR matrix absorbs
//! a sustained stream of batched edge inserts/deletes without ever being
//! rebuilt from scratch.
//!
//! * [`layout`] — the canonical bin-arena layout: a pure function of the
//!   logical matrix, so maintained state can be compared bit-for-bit
//!   against a from-scratch build;
//! * [`kernels`] — plan/merge/copy device kernels (one warp per row,
//!   lane-0 merges exactly like the paper's update kernel);
//! * [`engine`] — [`StreamEngine`]: per-batch plan → incremental re-bin →
//!   in-place merge / staged relocation → metadata patch;
//! * [`ledger`] — the bin-overflow ledger auditing who paid for
//!   maintenance (slack consumption vs. migration vs. capacity shifts vs.
//!   geometric buffer growth);
//! * [`churn`] — the [`acsr_serve`] adapter that interleaves maintenance
//!   with query waves on the virtual clock;
//! * [`telemetry`] — `stream.*` registry counters mirroring the ledger,
//!   reconciled integer-exactly against [`LedgerTotals`].
//!
//! The correctness bar, enforced by this crate's tests: after every
//! batch, metadata, live elements, binning, and each subsequent SpMV's
//! values/counters/modeled timing are **bit-identical** to a fresh
//! [`StreamEngine::build`] of the same logical matrix — at every
//! `ACSR_SIM_THREADS` width.

pub mod churn;
pub mod engine;
pub mod kernels;
pub mod layout;
pub mod ledger;
pub mod telemetry;

pub use churn::ChurnedStream;
pub use engine::{BatchReport, StreamEngine};
pub use layout::{arena_slots, assign_slots, slot_width, SlotLayout};
pub use ledger::{BatchEntry, BinEvent, LedgerTotals, MaintainReason, MaintenanceLedger};
pub use telemetry::reconcile_stream;
