//! Telemetry bridge: `stream.*` counters mirroring the maintenance
//! ledger, integer-exactly.
//!
//! Every counter here is defined as the same fold the ledger's own
//! [`LedgerTotals`] performs over [`BatchEntry`] events — `BufferGrow`
//! counts *events*, everything else counts *rows*, and every event's
//! bytes land in `stream.bytes_rewritten`. [`reconcile_stream`] pins the
//! two bookkeepers to each other: any drift between what the registry
//! accumulated batch-by-batch and what the ledger says in total is a
//! bug, not noise.

use crate::ledger::{BatchEntry, LedgerTotals, MaintainReason};
use acsr_telemetry::{MetricsRegistry, Telemetry};

/// Record one applied batch into the registry. Mirrors
/// [`crate::ledger::MaintenanceLedger::push`] accumulation exactly.
pub(crate) fn record_batch(tel: &Telemetry, entry: &BatchEntry) {
    let m = &tel.metrics;
    m.add("stream.batches", 1);
    for ev in &entry.events {
        m.add("stream.bytes_rewritten", ev.bytes);
        match ev.reason {
            MaintainReason::InPlace => m.add("stream.in_place_rows", ev.rows as u64),
            MaintainReason::Migration => m.add("stream.migrated_rows", ev.rows as u64),
            MaintainReason::CapacityShift => m.add("stream.capacity_shift_rows", ev.rows as u64),
            MaintainReason::BufferGrow => m.add("stream.buffer_grows", 1),
        }
    }
    m.set_gauge("stream.slack_elems", entry.slack_after as f64);
}

/// Check that the registry's `stream.*` counters equal `totals`
/// integer-exactly. `Err` carries the first mismatch.
pub fn reconcile_stream(metrics: &MetricsRegistry, totals: &LedgerTotals) -> Result<(), String> {
    let check = |name: &str, want: u64| -> Result<(), String> {
        let got = metrics.counter(name);
        if got != want {
            return Err(format!("{name}: registry says {got}, ledger says {want}"));
        }
        Ok(())
    };
    check("stream.batches", totals.batches)?;
    check("stream.in_place_rows", totals.in_place_rows)?;
    check("stream.migrated_rows", totals.migrated_rows)?;
    check("stream.capacity_shift_rows", totals.capacity_shift_rows)?;
    check("stream.buffer_grows", totals.buffer_grows)?;
    check("stream.bytes_rewritten", totals.bytes_rewritten)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{BinEvent, MaintenanceLedger};
    use std::sync::Arc;

    #[test]
    fn batch_recording_matches_ledger_totals() {
        let tel = Arc::new(Telemetry::new());
        let mut ledger = MaintenanceLedger::default();
        let entries = [
            BatchEntry {
                epoch: 1,
                events: vec![
                    BinEvent {
                        bin: 2,
                        rows: 5,
                        bytes: 120,
                        reason: MaintainReason::InPlace,
                    },
                    BinEvent {
                        bin: 3,
                        rows: 2,
                        bytes: 64,
                        reason: MaintainReason::Migration,
                    },
                ],
                slack_after: 17,
            },
            BatchEntry {
                epoch: 2,
                events: vec![
                    BinEvent {
                        bin: 4,
                        rows: 9,
                        bytes: 288,
                        reason: MaintainReason::CapacityShift,
                    },
                    BinEvent {
                        bin: 0,
                        rows: 9,
                        bytes: 1024,
                        reason: MaintainReason::BufferGrow,
                    },
                ],
                slack_after: 23,
            },
        ];
        for e in &entries {
            record_batch(&tel, e);
            ledger.push(e.clone());
        }
        reconcile_stream(&tel.metrics, &ledger.totals()).expect("mirrored counters reconcile");
        let snap = tel.metrics.snapshot();
        assert_eq!(
            snap.counter("stream.buffer_grows"),
            Some(1),
            "events, not rows"
        );
        assert_eq!(
            snap.gauge("stream.slack_elems"),
            Some(23.0),
            "last batch wins"
        );
    }

    #[test]
    fn reconcile_reports_first_mismatch() {
        let tel = Telemetry::new();
        tel.metrics.add("stream.batches", 2);
        let totals = LedgerTotals {
            batches: 3,
            ..LedgerTotals::default()
        };
        let err = reconcile_stream(&tel.metrics, &totals).unwrap_err();
        assert!(err.contains("stream.batches"), "got: {err}");
    }
}
