//! The bin-overflow ledger: who paid for maintenance, and why.
//!
//! Each applied batch appends one entry recording, per bin, how many rows
//! moved and how many element bytes were rewritten, tagged with the
//! *reason* the work happened. The ledger is what makes the amortization
//! argument auditable: arena capacity shifts (`CapacityShift`) and buffer
//! growth (`BufferGrow`) are rare, geometric events, while the steady
//! state is in-place slack consumption plus the occasional bin-class
//! `Migration` — exactly the per-bin amortized re-binning the streaming
//! design promises.

/// Why a batch touched rows of a bin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MaintainReason {
    /// Rows merged inside their own slot (slack consumption — no data
    /// movement beyond the row itself).
    InPlace,
    /// Rows whose length class changed: they migrated to another bin's
    /// arena.
    Migration,
    /// Rows relocated only because an arena's capacity plateau shifted
    /// (or a peer joined/left below them), moving their slot.
    CapacityShift,
    /// The element buffers themselves were regrown (full rewrite into a
    /// fresh, geometrically larger allocation).
    BufferGrow,
}

/// Per-bin maintenance work inside one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinEvent {
    /// Destination bin of the rows (their bin *after* the batch).
    pub bin: usize,
    /// Rows involved.
    pub rows: usize,
    /// Element bytes written on their behalf.
    pub bytes: u64,
    /// Why the work happened.
    pub reason: MaintainReason,
}

/// One applied batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchEntry {
    /// Structural epoch *after* the batch.
    pub epoch: u64,
    /// Per-bin events (destination bin ascending, one per reason).
    pub events: Vec<BinEvent>,
    /// Total reserved-but-unused elements after the batch.
    pub slack_after: u64,
}

/// Rolling totals across every batch (cheap stderr summaries).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerTotals {
    pub batches: u64,
    pub in_place_rows: u64,
    pub migrated_rows: u64,
    pub capacity_shift_rows: u64,
    pub buffer_grows: u64,
    pub bytes_rewritten: u64,
}

/// The append-only maintenance ledger.
#[derive(Clone, Debug, Default)]
pub struct MaintenanceLedger {
    entries: Vec<BatchEntry>,
    totals: LedgerTotals,
}

impl MaintenanceLedger {
    /// Record one applied batch.
    pub fn push(&mut self, entry: BatchEntry) {
        self.totals.batches += 1;
        for ev in &entry.events {
            self.totals.bytes_rewritten += ev.bytes;
            match ev.reason {
                MaintainReason::InPlace => self.totals.in_place_rows += ev.rows as u64,
                MaintainReason::Migration => self.totals.migrated_rows += ev.rows as u64,
                MaintainReason::CapacityShift => self.totals.capacity_shift_rows += ev.rows as u64,
                MaintainReason::BufferGrow => self.totals.buffer_grows += 1,
            }
        }
        self.entries.push(entry);
    }

    /// All recorded batches, oldest first.
    pub fn entries(&self) -> &[BatchEntry] {
        &self.entries
    }

    /// Rolling totals.
    pub fn totals(&self) -> LedgerTotals {
        self.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_by_reason() {
        let mut l = MaintenanceLedger::default();
        l.push(BatchEntry {
            epoch: 1,
            events: vec![
                BinEvent {
                    bin: 2,
                    rows: 5,
                    bytes: 100,
                    reason: MaintainReason::InPlace,
                },
                BinEvent {
                    bin: 3,
                    rows: 2,
                    bytes: 64,
                    reason: MaintainReason::Migration,
                },
            ],
            slack_after: 10,
        });
        l.push(BatchEntry {
            epoch: 2,
            events: vec![BinEvent {
                bin: 3,
                rows: 7,
                bytes: 224,
                reason: MaintainReason::CapacityShift,
            }],
            slack_after: 12,
        });
        let t = l.totals();
        assert_eq!(t.batches, 2);
        assert_eq!(t.in_place_rows, 5);
        assert_eq!(t.migrated_rows, 2);
        assert_eq!(t.capacity_shift_rows, 7);
        assert_eq!(t.buffer_grows, 0);
        assert_eq!(t.bytes_rewritten, 388);
        assert_eq!(l.entries().len(), 2);
    }
}
