//! Device kernels for streaming maintenance.
//!
//! Three shapes, all one-warp-per-item:
//!
//! * [`plan_kernel`] — counts each touched row's post-batch length
//!   without reading the row: lanes cooperatively binary-search the
//!   delta's columns against the row's sorted column stream, so a hub
//!   row costs `O((d+i)/32 · log len)` probe rounds, not `O(len)`.
//! * [`merge_rows_kernel`] — the actual sorted merge (delete + compress,
//!   then insert with overwrite-on-equal — identical semantics to
//!   `acsr::update`), reading the source row and writing the merged row
//!   in coalesced `WARP`-wide strides with merge-path-style lane
//!   cooperation. The destination buffer is a parameter so the same
//!   kernel serves in-place updates, staging into scratch, and
//!   rebuild-into-grown-buffer.
//! * [`copy_rows_kernel`] — full-warp strided copy of whole rows between
//!   (buffer, offset) pairs; used to relocate untouched rows and to
//!   scatter staged rows into their final slots.

use gpu_sim::{lane_mask, ConcurrentGroup, DeviceBuffer, WarpCtx, WARP};
use sparse_formats::Scalar;

/// Mask for lane-0-only scalar loads (row descriptors).
const L0: u32 = 1;

/// Wire view of an uploaded [`sparse_formats::UpdateBatch`].
pub struct DeltaBuffers<T> {
    pub rows: DeviceBuffer<u32>,
    pub delete_offsets: DeviceBuffer<u32>,
    pub delete_cols: DeviceBuffer<u32>,
    pub insert_offsets: DeviceBuffer<u32>,
    pub insert_cols: DeviceBuffer<u32>,
    pub insert_vals: DeviceBuffer<T>,
}

/// Gather one lane-0 scalar.
fn ld<T: gpu_sim::DevCopy>(warp: &mut WarpCtx, buf: &DeviceBuffer<T>, i: usize) -> T {
    warp.gather(buf, &[i; WARP], L0)[0]
}

/// Read `buf[base..base + len]` in coalesced `WARP`-wide strides.
fn read_row<T: gpu_sim::DevCopy>(
    warp: &mut WarpCtx,
    buf: &DeviceBuffer<T>,
    base: usize,
    len: usize,
) -> Vec<T> {
    let mut out = Vec::with_capacity(len);
    let mut off = 0usize;
    while off < len {
        let lanes = (len - off).min(WARP);
        let chunk = warp.read_coalesced(buf, base + off, lane_mask(lanes));
        out.extend_from_slice(&chunk[..lanes]);
        off += lanes;
    }
    out
}

/// Write `vals` to `buf[base..]` in coalesced `WARP`-wide strides.
fn write_row<T: gpu_sim::DevCopy>(
    warp: &mut WarpCtx,
    buf: &DeviceBuffer<T>,
    base: usize,
    vals: &[T],
) {
    let mut off = 0usize;
    while off < vals.len() {
        let lanes = (vals.len() - off).min(WARP);
        let mut chunk = [T::default(); WARP];
        chunk[..lanes].copy_from_slice(&vals[off..off + lanes]);
        warp.write_coalesced(buf, base + off, &chunk, lane_mask(lanes));
        off += lanes;
    }
}

/// One lane per key: binary-search sorted `buf[base..base + len]` for up
/// to `WARP` keys at once. Returns a membership flag per key. Each probe
/// round is one gather (every active lane reads its own midpoint) plus
/// one ALU step — `O(log len)` rounds total.
fn warp_bsearch(
    warp: &mut WarpCtx,
    buf: &DeviceBuffer<u32>,
    base: usize,
    len: usize,
    keys: &[u32],
) -> Vec<bool> {
    let k = keys.len();
    debug_assert!(k <= WARP);
    let mut found = vec![false; k];
    if len == 0 || k == 0 {
        return found;
    }
    let mask = lane_mask(k);
    let mut lo = vec![0usize; k];
    let mut hi = vec![len; k];
    while (0..k).any(|l| lo[l] < hi[l]) {
        let mut idx = [base; WARP];
        for l in 0..k {
            if lo[l] < hi[l] {
                idx[l] = base + (lo[l] + hi[l]) / 2;
            }
        }
        let probes = warp.gather(buf, &idx, mask);
        warp.charge_alu(1);
        for l in 0..k {
            if lo[l] >= hi[l] {
                continue;
            }
            let mid = (lo[l] + hi[l]) / 2;
            if probes[l] == keys[l] {
                found[l] = true;
                lo[l] = hi[l];
            } else if probes[l] < keys[l] {
                lo[l] = mid + 1;
            } else {
                hi[l] = mid;
            }
        }
    }
    found
}

/// Load a touched row's descriptor (lane-0 scalars).
struct RowDesc {
    start: usize,
    old_len: usize,
    dlo: usize,
    dhi: usize,
    ilo: usize,
    ihi: usize,
}

fn load_desc<T: Scalar>(
    warp: &mut WarpCtx,
    delta: &DeltaBuffers<T>,
    row_start: &DeviceBuffer<u32>,
    row_len: &DeviceBuffer<u32>,
    pos: usize,
) -> RowDesc {
    let row = ld(warp, &delta.rows, pos) as usize;
    RowDesc {
        start: ld(warp, row_start, row) as usize,
        old_len: ld(warp, row_len, row) as usize,
        dlo: ld(warp, &delta.delete_offsets, pos) as usize,
        dhi: ld(warp, &delta.delete_offsets, pos + 1) as usize,
        ilo: ld(warp, &delta.insert_offsets, pos) as usize,
        ihi: ld(warp, &delta.insert_offsets, pos + 1) as usize,
    }
}

/// Compute every touched row's post-merge length into `new_lens`
/// (indexed by batch position). Pure counting — the row itself is only
/// *probed* (lane-parallel binary search), never streamed:
/// `new_len = old − |D ∩ row| + |I| − |I ∩ (row ∖ D)|`.
#[allow(clippy::too_many_arguments)]
pub fn plan_kernel<T: Scalar>(
    group: &mut ConcurrentGroup,
    delta: &DeltaBuffers<T>,
    row_start: &DeviceBuffer<u32>,
    row_len: &DeviceBuffer<u32>,
    col_indices: &DeviceBuffer<u32>,
    new_lens: &DeviceBuffer<u32>,
) {
    let n = delta.rows.len();
    if n == 0 {
        return;
    }
    let block = 256;
    let grid = n.div_ceil(block / WARP).max(1);
    group.add("stream_plan", grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let pos = warp.global_warp_id();
            if pos >= n {
                return;
            }
            let d = load_desc(warp, delta, row_start, row_len, pos);
            let dels = read_row(warp, &delta.delete_cols, d.dlo, d.dhi - d.dlo);
            let ins = read_row(warp, &delta.insert_cols, d.ilo, d.ihi - d.ilo);

            let mut matched_dels = 0usize;
            for chunk in dels.chunks(WARP) {
                let found = warp_bsearch(warp, col_indices, d.start, d.old_len, chunk);
                warp.charge_alu(1); // warp reduction of the found ballot
                matched_dels += found.iter().filter(|&&f| f).count();
            }
            let mut overwrites = 0usize;
            for chunk in ins.chunks(WARP) {
                let in_row = warp_bsearch(warp, col_indices, d.start, d.old_len, chunk);
                // an insert whose column is also deleted re-adds, not
                // overwrites: check the (tiny, register-resident) D list
                warp.charge_alu(1);
                for (l, &c) in chunk.iter().enumerate() {
                    if in_row[l] && dels.binary_search(&c).is_err() {
                        overwrites += 1;
                    }
                }
            }
            let count = (d.old_len - matched_dels + ins.len() - overwrites) as u32;
            warp.scatter(new_lens, &[pos; WARP], &[count; WARP], L0);
        });
    });
}

/// Merge `positions.len()` touched rows into per-item destinations.
/// `positions[i]` is the batch position of the i-th item and
/// `dst_offsets[i]` the element offset in `dst_cols`/`dst_vals` where its
/// merged row lands. The source row is streamed in coalesced strides and
/// the merged row written the same way; the merge bookkeeping is charged
/// one merge-path partition step (log-cost) per `WARP`-wide output chunk.
#[allow(clippy::too_many_arguments)]
pub fn merge_rows_kernel<T: Scalar>(
    group: &mut ConcurrentGroup,
    name: &str,
    delta: &DeltaBuffers<T>,
    row_start: &DeviceBuffer<u32>,
    row_len: &DeviceBuffer<u32>,
    src_cols: &DeviceBuffer<u32>,
    src_vals: &DeviceBuffer<T>,
    positions: &DeviceBuffer<u32>,
    dst_offsets: &DeviceBuffer<u32>,
    dst_cols: &DeviceBuffer<u32>,
    dst_vals: &DeviceBuffer<T>,
) {
    let n = positions.len();
    if n == 0 {
        return;
    }
    let block = 256;
    let grid = n.div_ceil(block / WARP).max(1);
    group.add(name, grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let i = warp.global_warp_id();
            if i >= n {
                return;
            }
            let pos = ld(warp, positions, i) as usize;
            let dst = ld(warp, dst_offsets, i) as usize;
            let d = load_desc(warp, delta, row_start, row_len, pos);
            let dels = read_row(warp, &delta.delete_cols, d.dlo, d.dhi - d.dlo);
            let ins_c = read_row(warp, &delta.insert_cols, d.ilo, d.ihi - d.ilo);
            let ins_v = read_row(warp, &delta.insert_vals, d.ilo, d.ihi - d.ilo);
            let cols = read_row(warp, src_cols, d.start, d.old_len);
            let vals = read_row(warp, src_vals, d.start, d.old_len);

            // Pass 1: delete + compress.
            let mut surv_c: Vec<u32> = Vec::with_capacity(d.old_len);
            let mut surv_v: Vec<T> = Vec::with_capacity(d.old_len);
            let mut dd = 0usize;
            for (k, &c) in cols.iter().enumerate() {
                while dd < dels.len() && dels[dd] < c {
                    dd += 1;
                }
                if dd < dels.len() && dels[dd] == c {
                    continue;
                }
                surv_c.push(c);
                surv_v.push(vals[k]);
            }
            // Pass 2: sorted insert merge, overwrite on equal columns.
            let mut mrg_c: Vec<u32> = Vec::with_capacity(surv_c.len() + ins_c.len());
            let mut mrg_v: Vec<T> = Vec::with_capacity(surv_c.len() + ins_c.len());
            let (mut a, mut b) = (0usize, 0usize);
            while a < surv_c.len() || b < ins_c.len() {
                if b >= ins_c.len() || (a < surv_c.len() && surv_c[a] < ins_c[b]) {
                    mrg_c.push(surv_c[a]);
                    mrg_v.push(surv_v[a]);
                    a += 1;
                } else if a >= surv_c.len() || surv_c[a] > ins_c[b] {
                    mrg_c.push(ins_c[b]);
                    mrg_v.push(ins_v[b]);
                    b += 1;
                } else {
                    mrg_c.push(ins_c[b]);
                    mrg_v.push(ins_v[b]);
                    a += 1;
                    b += 1;
                }
            }
            // Each WARP-wide output chunk costs one merge-path partition
            // (binary search of the lane's diagonal) for every lane.
            let logn = usize::BITS - (mrg_c.len().max(2) - 1).leading_zeros();
            for _ in 0..mrg_c.len().div_ceil(WARP) {
                warp.charge_alu(logn as u64);
            }
            write_row(warp, dst_cols, dst, &mrg_c);
            write_row(warp, dst_vals, dst, &mrg_v);
        });
    });
}

/// Copy `lens[i]` elements from `src_*[src_offsets[i]..]` to
/// `dst_*[dst_offsets[i]..]`, one warp per row, coalesced `WARP`-wide
/// strides. Source and destination buffers must be distinct (the engine
/// stages moved rows through scratch precisely to guarantee this).
#[allow(clippy::too_many_arguments)]
pub fn copy_rows_kernel<T: Scalar>(
    group: &mut ConcurrentGroup,
    name: &str,
    src_cols: &DeviceBuffer<u32>,
    src_vals: &DeviceBuffer<T>,
    dst_cols: &DeviceBuffer<u32>,
    dst_vals: &DeviceBuffer<T>,
    src_offsets: &DeviceBuffer<u32>,
    dst_offsets: &DeviceBuffer<u32>,
    lens: &DeviceBuffer<u32>,
) {
    let n = lens.len();
    if n == 0 {
        return;
    }
    let block = 256;
    let grid = n.div_ceil(block / WARP).max(1);
    group.add(name, grid, block, &|blk| {
        blk.for_each_warp(&mut |warp| {
            let i = warp.global_warp_id();
            if i >= n {
                return;
            }
            let src = ld(warp, src_offsets, i) as usize;
            let dst = ld(warp, dst_offsets, i) as usize;
            let len = ld(warp, lens, i) as usize;
            let mut off = 0usize;
            while off < len {
                let lanes = (len - off).min(WARP);
                let mask = lane_mask(lanes);
                let cols = warp.read_coalesced(src_cols, src + off, mask);
                warp.write_coalesced(dst_cols, dst + off, &cols, mask);
                let vals = warp.read_coalesced(src_vals, src + off, mask);
                warp.write_coalesced(dst_vals, dst + off, &vals, mask);
                off += lanes;
            }
        });
    });
}
