//! The streaming maintenance engine.
//!
//! [`StreamEngine`] keeps a live, device-resident ACSR matrix in the
//! canonical bin-arena layout of [`crate::layout`] and applies batched
//! edge deltas to it *in place*:
//!
//! 1. the delta is shipped to the device (`wire_bytes`, the Fig. 7
//!    advantage) and a **plan kernel** replays the merge counting-only,
//!    yielding every touched row's post-batch length;
//! 2. a tiny readback lets the host patch the binning incrementally
//!    ([`acsr::Binning::apply_moves`] — cost proportional to moved rows,
//!    not the matrix) and recompute the canonical layout;
//! 3. rows whose slot is unchanged merge **in place**, consuming slack;
//!    rows whose slot moved (bin migration, or an arena capacity shift
//!    underneath them) are staged through scratch and scattered to their
//!    new slots — two phases, so no write ever lands on data another row
//!    still has to read;
//! 4. when the canonical layout outgrows the element buffers, the engine
//!    regrows them geometrically and rewrites everything once
//!    (`BufferGrow` in the ledger) — rare by construction.
//!
//! The invariant that makes this testable: after any batch the engine is
//! **bit-identical** — metadata, live elements, binning, and therefore
//! every SpMV's values, counters and modeled timing — to a
//! [`StreamEngine::build`] from scratch off the same logical matrix.

use crate::kernels::{copy_rows_kernel, merge_rows_kernel, plan_kernel, DeltaBuffers};
use crate::layout::{slot_width, SlotLayout};
use crate::ledger::{BatchEntry, BinEvent, MaintainReason, MaintenanceLedger};
use acsr::{AcsrConfig, AcsrEngine, RowMove};
use acsr_telemetry::Telemetry;
use gpu_sim::{Device, DeviceBuffer, RunReport};
use sparse_formats::stats::bin_index;
use sparse_formats::{CsrMatrix, Scalar, UpdateBatch};
use spmv_kernels::{GpuSpmv, GpuSpmvMulti};
use std::sync::Arc;

/// Growth factor for the element buffers when the canonical layout
/// outgrows them.
const GROWTH: usize = 2;

/// What one [`StreamEngine::apply_batch`] cost and did.
#[derive(Debug)]
pub struct BatchReport {
    /// The plan (count) kernel.
    pub plan: RunReport,
    /// Merge + relocate + scatter kernels.
    pub maintain: RunReport,
    /// Modeled PCIe seconds (delta upload, plan readback, plan arrays,
    /// bin-list re-uploads, metadata patch).
    pub copy_seconds: f64,
    /// End-to-end modeled seconds for the batch.
    pub total_seconds: f64,
    /// Rows the batch touched.
    pub touched_rows: usize,
    /// Touched rows merged inside their own slot (slack consumption).
    pub in_place_rows: usize,
    /// Rows whose length class changed (bin migration).
    pub migrated_rows: usize,
    /// Rows relocated without a bin change (arena capacity shifts).
    pub relocated_rows: usize,
    /// Distinct bins whose membership changed.
    pub dirty_bins: usize,
    /// Whether the element buffers were regrown.
    pub buffer_grown: bool,
    /// Live non-zeros after the batch.
    pub nnz_after: usize,
}

/// Streaming ACSR maintenance engine. Wraps an [`AcsrEngine`] whose
/// matrix it keeps in the canonical bin-arena layout.
pub struct StreamEngine<T> {
    engine: AcsrEngine<T>,
    layout: SlotLayout,
    /// Allocated element-buffer length (may exceed `layout.total()` after
    /// growth; slack past the layout is never read).
    buf_capacity: usize,
    epoch: u64,
    ledger: MaintenanceLedger,
    /// Optional metrics sink; `stream.*` counters mirror the ledger
    /// (see [`crate::telemetry`]). One branch per batch when absent.
    telemetry: Option<Arc<Telemetry>>,
}

impl<T: Scalar> StreamEngine<T> {
    /// Build the canonical device layout for `m` and wrap it in an ACSR
    /// engine. The result is the *normal form* every maintained engine is
    /// compared against.
    pub fn build(dev: &Device, m: &CsrMatrix<T>, cfg: AcsrConfig) -> Self {
        let rows = m.rows();
        let layout = SlotLayout::for_lengths((0..rows).map(|r| m.row_nnz(r)));
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); layout.n_bins()];
        for r in 0..rows {
            bins[bin_index(m.row_nnz(r))].push(r as u32);
        }
        let mut row_start = vec![0u32; rows];
        let mut row_len = vec![0u32; rows];
        let mut row_cap = vec![0u32; rows];
        let mut col_indices = vec![0u32; layout.total()];
        let mut values = vec![T::ZERO; layout.total()];
        for (r, len) in row_len.iter_mut().enumerate() {
            *len = m.row_nnz(r) as u32;
        }
        for (b, members) in bins.iter().enumerate().skip(1) {
            if members.is_empty() {
                continue; // bin 0 (empty rows) stores nothing
            }
            for (&r, &slot) in members
                .iter()
                .zip(&crate::layout::assign_slots(layout.slots(b), members))
            {
                let r = r as usize;
                let len = row_len[r] as usize;
                let s = layout.row_start(b, slot as usize);
                row_start[r] = s as u32;
                row_cap[r] = slot_width(b) as u32;
                let (cols, vals) = m.row(r);
                col_indices[s..s + len].copy_from_slice(cols);
                values[s..s + len].copy_from_slice(vals);
            }
        }
        let mat = acsr::AcsrMatrix::from_parts(
            dev,
            rows,
            m.cols(),
            row_start,
            row_len,
            row_cap,
            col_indices,
            values,
        );
        dev.record_htod("stream_build", mat.device_bytes());
        let engine = AcsrEngine::new(dev, mat, cfg);
        StreamEngine {
            engine,
            buf_capacity: layout.total(),
            layout,
            epoch: 0,
            ledger: MaintenanceLedger::default(),
            telemetry: acsr_telemetry::active(),
        }
    }

    /// Route `stream.*` metrics into `tel` (replacing any sink picked up
    /// from [`acsr_telemetry::active`] at build time).
    pub fn attach_telemetry(&mut self, tel: Arc<Telemetry>) {
        self.telemetry = Some(tel);
    }

    /// Apply one §VII update batch in place.
    pub fn apply_batch(&mut self, dev: &Device, batch: &UpdateBatch<T>) -> BatchReport {
        let rows_n = self.engine.matrix().rows();
        batch
            .validate_for(rows_n, self.engine.matrix().cols())
            .expect("update batch must be valid for the streamed matrix");
        let n = batch.rows.len();
        let mut copy_seconds = dev
            .record_htod("stream_delta", batch.wire_bytes() as u64)
            .time_s;
        let delta = DeltaBuffers {
            rows: dev.alloc(batch.rows.clone()),
            delete_offsets: dev.alloc(batch.delete_offsets.clone()),
            delete_cols: dev.alloc(batch.delete_cols.clone()),
            insert_offsets: dev.alloc(batch.insert_offsets.clone()),
            insert_cols: dev.alloc(batch.insert_cols.clone()),
            insert_vals: dev.alloc(batch.insert_vals.clone()),
        };

        // Host copies of the pre-batch geometry (the plan diffs against
        // these).
        let old_starts: Vec<u32> = self.engine.matrix().row_start.as_slice().to_vec();
        let old_lens: Vec<u32> = self.engine.matrix().row_len.as_slice().to_vec();
        let old_caps: Vec<u32> = self.engine.matrix().row_cap.as_slice().to_vec();

        // --- 1. plan: post-merge length of every touched row ---
        let new_lens_d = dev.alloc_zeroed::<u32>(n.max(1));
        let plan = {
            let mat = self.engine.matrix();
            let mut group = dev.launch_group("stream_plan");
            plan_kernel(
                &mut group,
                &delta,
                &mat.row_start,
                &mat.row_len,
                &mat.col_indices,
                &new_lens_d,
            );
            group.finish()
        };
        copy_seconds += dev.record_dtoh("stream_plan_readback", n as u64 * 4).time_s;
        let touched_new_lens: Vec<u32> = new_lens_d.as_slice()[..n].to_vec();

        // --- 2. incremental re-binning + canonical geometry ---
        let mut moves: Vec<RowMove> = Vec::new();
        for (i, &r) in batch.rows.iter().enumerate() {
            let from = bin_index(old_lens[r as usize] as usize);
            let to = bin_index(touched_new_lens[i] as usize);
            if from != to {
                moves.push(RowMove { row: r, from, to });
            }
        }
        let mut dirty_bins: Vec<usize> = moves.iter().flat_map(|m| [m.from, m.to]).collect();
        dirty_bins.sort_unstable();
        dirty_bins.dedup();
        let uploaded = self.engine.rebin_incremental(dev, &moves);
        if uploaded > 0 {
            copy_seconds += dev.record_htod("stream_binlists", uploaded).time_s;
        }

        let binning = self.engine.binning();
        let counts: Vec<usize> = (0..binning.n_bins())
            .map(|b| binning.bin_rows(b).len())
            .collect();
        let new_layout = SlotLayout::for_bins(&counts);
        let mut new_starts = vec![0u32; rows_n];
        let mut new_caps = vec![0u32; rows_n];
        for b in 1..binning.n_bins() {
            let members = binning.bin_rows(b);
            if members.is_empty() {
                continue;
            }
            for (&r, &slot) in members
                .iter()
                .zip(&crate::layout::assign_slots(new_layout.slots(b), members))
            {
                new_starts[r as usize] = new_layout.row_start(b, slot as usize) as u32;
                new_caps[r as usize] = slot_width(b) as u32;
            }
        }
        let mut new_lens_all = old_lens.clone();
        let mut touched_pos = vec![u32::MAX; rows_n];
        for (i, &r) in batch.rows.iter().enumerate() {
            new_lens_all[r as usize] = touched_new_lens[i];
            touched_pos[r as usize] = i as u32;
        }
        let nnz_after: usize = new_lens_all.iter().map(|&l| l as usize).sum();

        // --- 3. classify and execute the data movement ---
        let grow = new_layout.total() > self.buf_capacity;
        let mut in_place_rows = 0usize;
        let mut in_place_bytes = 0u64;
        let migrated_rows = moves.len();
        let mut relocated_rows = 0usize;
        let mut relocated_bytes = 0u64;

        let maintain = if grow {
            let (report, copied_rows) = self.grow_and_rewrite(
                dev,
                &delta,
                &new_layout,
                &new_starts,
                &new_lens_all,
                &old_starts,
                &old_lens,
                &touched_pos,
            );
            relocated_rows = copied_rows;
            report
        } else {
            // In-place: touched rows that keep their exact slot.
            let mut ip_positions: Vec<u32> = Vec::new();
            let mut ip_dsts: Vec<u32> = Vec::new();
            // Staged movers: (src kind) touched rows merge old→scratch,
            // untouched rows copy old→scratch; both scatter scratch→new.
            let mut st_positions: Vec<u32> = Vec::new();
            let mut st_dsts: Vec<u32> = Vec::new();
            let mut rel_srcs: Vec<u32> = Vec::new();
            let mut rel_dsts: Vec<u32> = Vec::new();
            let mut rel_lens: Vec<u32> = Vec::new();
            let mut sc_srcs: Vec<u32> = Vec::new();
            let mut sc_dsts: Vec<u32> = Vec::new();
            let mut sc_lens: Vec<u32> = Vec::new();
            let mut scratch_top = 0u32;
            for r in 0..rows_n {
                let new_len = new_lens_all[r];
                let moved = new_starts[r] != old_starts[r] || new_caps[r] != old_caps[r];
                if touched_pos[r] != u32::MAX {
                    if !moved {
                        if new_len > 0 {
                            in_place_rows += 1;
                            in_place_bytes += new_len as u64;
                            ip_positions.push(touched_pos[r]);
                            ip_dsts.push(new_starts[r]);
                        }
                    } else if new_len > 0 {
                        if new_caps[r] == old_caps[r] {
                            // same length class, slot shifted under it
                            relocated_rows += 1;
                            relocated_bytes += new_len as u64;
                        }
                        st_positions.push(touched_pos[r]);
                        st_dsts.push(scratch_top);
                        sc_srcs.push(scratch_top);
                        sc_dsts.push(new_starts[r]);
                        sc_lens.push(new_len);
                        scratch_top += new_len;
                    }
                } else if moved && new_len > 0 {
                    relocated_rows += 1;
                    relocated_bytes += new_len as u64;
                    rel_srcs.push(old_starts[r]);
                    rel_dsts.push(scratch_top);
                    rel_lens.push(new_len);
                    sc_srcs.push(scratch_top);
                    sc_dsts.push(new_starts[r]);
                    sc_lens.push(new_len);
                    scratch_top += new_len;
                }
            }
            let plan_bytes = ((ip_positions.len() + ip_dsts.len()) * 4
                + (st_positions.len() + st_dsts.len()) * 4
                + (rel_srcs.len() + rel_dsts.len() + rel_lens.len()) * 4
                + (sc_srcs.len() + sc_dsts.len() + sc_lens.len()) * 4)
                as u64;
            if plan_bytes > 0 {
                copy_seconds += dev.record_htod("stream_plan_arrays", plan_bytes).time_s;
            }

            let scratch_cols = dev.alloc_zeroed::<u32>((scratch_top as usize).max(1));
            let scratch_vals = dev.alloc_zeroed::<T>((scratch_top as usize).max(1));
            let ip_positions = dev.alloc(ip_positions);
            let ip_dsts = dev.alloc(ip_dsts);
            let st_positions = dev.alloc(st_positions);
            let st_dsts = dev.alloc(st_dsts);
            let rel_srcs = dev.alloc(rel_srcs);
            let rel_dsts = dev.alloc(rel_dsts);
            let rel_lens = dev.alloc(rel_lens);
            let sc_srcs = dev.alloc(sc_srcs);
            let sc_dsts = dev.alloc(sc_dsts);
            let sc_lens = dev.alloc(sc_lens);

            let mat = self.engine.matrix();
            // Phase A: every write lands either in the writer's own slot
            // (in-place) or in scratch; every read of the main buffers
            // targets slots owned by their (old-layout) rows — disjoint.
            let mut group = dev.launch_group("stream_maintain");
            merge_rows_kernel(
                &mut group,
                "stream_update",
                &delta,
                &mat.row_start,
                &mat.row_len,
                &mat.col_indices,
                &mat.values,
                &ip_positions,
                &ip_dsts,
                &mat.col_indices,
                &mat.values,
            );
            merge_rows_kernel(
                &mut group,
                "stream_merge_out",
                &delta,
                &mat.row_start,
                &mat.row_len,
                &mat.col_indices,
                &mat.values,
                &st_positions,
                &st_dsts,
                &scratch_cols,
                &scratch_vals,
            );
            copy_rows_kernel(
                &mut group,
                "stream_relocate",
                &mat.col_indices,
                &mat.values,
                &scratch_cols,
                &scratch_vals,
                &rel_srcs,
                &rel_dsts,
                &rel_lens,
            );
            let phase_a = group.finish();
            // Phase B: scatter staged rows to their final slots. Phase A
            // has completed, so no old-slot read can race these writes.
            let mut group = dev.launch_group("stream_scatter");
            copy_rows_kernel(
                &mut group,
                "stream_scatter",
                &scratch_cols,
                &scratch_vals,
                &mat.col_indices,
                &mat.values,
                &sc_srcs,
                &sc_dsts,
                &sc_lens,
            );
            phase_a.then(&group.finish())
        };

        // --- 4. metadata patch (host-computed, charged per dirty row) ---
        let mut dirty_rows = 0u64;
        for r in 0..rows_n {
            if new_starts[r] != old_starts[r]
                || new_lens_all[r] != old_lens[r]
                || new_caps[r] != old_caps[r]
            {
                dirty_rows += 1;
            }
        }
        if dirty_rows > 0 {
            copy_seconds += dev.record_htod("stream_meta", dirty_rows * 12).time_s;
        }
        {
            let mat = self.engine.matrix_mut();
            mat.row_start = dev.alloc(new_starts);
            mat.row_len = dev.alloc(new_lens_all);
            mat.row_cap = dev.alloc(new_caps);
            mat.set_nnz(nnz_after);
            debug_assert_eq!(mat.validate(), Ok(()));
        }

        // --- 5. epoch, occupancy, ledger ---
        self.epoch += 1;
        self.layout = new_layout;
        let elem_bytes = (4 + T::BYTES) as u64;
        let mut events: Vec<BinEvent> = Vec::new();
        if in_place_rows > 0 {
            events.push(BinEvent {
                bin: 0,
                rows: in_place_rows,
                bytes: in_place_bytes * elem_bytes,
                reason: MaintainReason::InPlace,
            });
        }
        self.record_ledger_events(
            &mut events,
            &moves,
            relocated_rows,
            relocated_bytes,
            grow,
            elem_bytes,
        );
        let entry = BatchEntry {
            epoch: self.epoch,
            events,
            slack_after: self.engine.matrix().slack_elements(),
        };
        if let Some(tel) = &self.telemetry {
            crate::telemetry::record_batch(tel, &entry);
        }
        self.ledger.push(entry);

        BatchReport {
            total_seconds: plan.time_s + maintain.time_s + copy_seconds,
            plan,
            maintain,
            copy_seconds,
            touched_rows: n,
            in_place_rows,
            migrated_rows,
            relocated_rows,
            dirty_bins: dirty_bins.len(),
            buffer_grown: grow,
            nnz_after,
        }
    }

    /// Growth path: fresh element buffers at `GROWTH ×` the new layout,
    /// everything rewritten directly (src and dst are different buffers,
    /// so one phase suffices).
    #[allow(clippy::too_many_arguments)]
    fn grow_and_rewrite(
        &mut self,
        dev: &Device,
        delta: &DeltaBuffers<T>,
        new_layout: &SlotLayout,
        new_starts: &[u32],
        new_lens_all: &[u32],
        old_starts: &[u32],
        old_lens: &[u32],
        touched_pos: &[u32],
    ) -> (RunReport, usize) {
        let rows_n = new_starts.len();
        let cap = new_layout.total() * GROWTH;
        let fresh_cols = dev.alloc_zeroed::<u32>(cap.max(1));
        let fresh_vals = dev.alloc_zeroed::<T>(cap.max(1));
        let mut mg_positions: Vec<u32> = Vec::new();
        let mut mg_dsts: Vec<u32> = Vec::new();
        let mut cp_srcs: Vec<u32> = Vec::new();
        let mut cp_dsts: Vec<u32> = Vec::new();
        let mut cp_lens: Vec<u32> = Vec::new();
        for r in 0..rows_n {
            if touched_pos[r] != u32::MAX {
                if new_lens_all[r] > 0 {
                    mg_positions.push(touched_pos[r]);
                    mg_dsts.push(new_starts[r]);
                }
            } else if old_lens[r] > 0 {
                cp_srcs.push(old_starts[r]);
                cp_dsts.push(new_starts[r]);
                cp_lens.push(old_lens[r]);
            }
        }
        let copied_rows = cp_lens.len();
        let mg_positions = dev.alloc(mg_positions);
        let mg_dsts = dev.alloc(mg_dsts);
        let cp_srcs = dev.alloc(cp_srcs);
        let cp_dsts = dev.alloc(cp_dsts);
        let cp_lens = dev.alloc(cp_lens);
        let report = {
            let mat = self.engine.matrix();
            let mut group = dev.launch_group("stream_grow");
            merge_rows_kernel(
                &mut group,
                "stream_grow_merge",
                delta,
                &mat.row_start,
                &mat.row_len,
                &mat.col_indices,
                &mat.values,
                &mg_positions,
                &mg_dsts,
                &fresh_cols,
                &fresh_vals,
            );
            copy_rows_kernel(
                &mut group,
                "stream_grow_copy",
                &mat.col_indices,
                &mat.values,
                &fresh_cols,
                &fresh_vals,
                &cp_srcs,
                &cp_dsts,
                &cp_lens,
            );
            group.finish()
        };
        let mat = self.engine.matrix_mut();
        mat.col_indices = fresh_cols;
        mat.values = fresh_vals;
        self.buf_capacity = cap;
        (report, copied_rows)
    }

    fn record_ledger_events(
        &self,
        events: &mut Vec<BinEvent>,
        moves: &[RowMove],
        relocated_rows: usize,
        relocated_bytes: u64,
        grew: bool,
        elem_bytes: u64,
    ) {
        use std::collections::BTreeMap;
        let mut per_bin: BTreeMap<usize, usize> = BTreeMap::new();
        for mv in moves {
            *per_bin.entry(mv.to).or_default() += 1;
        }
        for (bin, rows) in per_bin {
            events.push(BinEvent {
                bin,
                rows,
                bytes: rows as u64 * slot_width(bin) as u64 * elem_bytes,
                reason: MaintainReason::Migration,
            });
        }
        if relocated_rows > 0 {
            events.push(BinEvent {
                bin: 0,
                rows: relocated_rows,
                bytes: relocated_bytes * elem_bytes,
                reason: MaintainReason::CapacityShift,
            });
        }
        if grew {
            events.push(BinEvent {
                bin: 0,
                rows: 0,
                bytes: self.buf_capacity as u64 * elem_bytes,
                reason: MaintainReason::BufferGrow,
            });
        }
    }

    /// The wrapped ACSR engine.
    pub fn acsr(&self) -> &AcsrEngine<T> {
        &self.engine
    }

    /// Structural epoch: the number of batches applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-bin row counts (the drift-key occupancy vector).
    pub fn occupancy(&self) -> Vec<u32> {
        let b = self.engine.binning();
        (0..b.n_bins())
            .map(|i| b.bin_rows(i).len() as u32)
            .collect()
    }

    /// The canonical arena geometry currently live.
    pub fn layout(&self) -> &SlotLayout {
        &self.layout
    }

    /// The maintenance ledger.
    pub fn ledger(&self) -> &MaintenanceLedger {
        &self.ledger
    }

    /// Extract the live matrix as packed host CSR.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        self.engine.matrix().to_csr()
    }
}

impl<T: Scalar> GpuSpmv<T> for StreamEngine<T> {
    fn name(&self) -> &'static str {
        "ACSR-stream"
    }
    fn rows(&self) -> usize {
        self.engine.matrix().rows()
    }
    fn cols(&self) -> usize {
        self.engine.matrix().cols()
    }
    fn nnz(&self) -> usize {
        self.engine.matrix().nnz()
    }
    fn device_bytes(&self) -> u64 {
        self.engine.device_bytes()
    }
    fn spmv(&self, dev: &Device, x: &DeviceBuffer<T>, y: &DeviceBuffer<T>) -> RunReport {
        self.engine.spmv(dev, x, y)
    }
}

impl<T: Scalar> GpuSpmvMulti<T> for StreamEngine<T> {
    fn spmv_multi(
        &self,
        dev: &Device,
        xs: &[&DeviceBuffer<T>],
        ys: &[&DeviceBuffer<T>],
    ) -> RunReport {
        self.engine.spmv_multi(dev, xs, ys)
    }
}
