//! Profiler accounting properties: for ANY kernel mix, device preset
//! and host worker width, the per-kernel [`ProfileReport`] must
//! reconcile *integer-exactly* with the trace ledger's global counters
//! and launch totals, and the whole report — rows, derived metrics,
//! floats and all — must be bit-identical across
//! `ACSR_SIM_THREADS ∈ {1, 2, 4}` (the profiler, like host
//! parallelism, is pure mechanism).

use gpu_sim::profile::ProfileReport;
use gpu_sim::{lane_mask, presets, set_sim_threads, Device, DeviceConfig, WARP};
use proptest::prelude::*;
use std::sync::Mutex;

/// `set_sim_threads` is process-global; hold this in every test that
/// flips the width (the harness runs `#[test]` fns concurrently).
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn preset(which: u8) -> DeviceConfig {
    match which % 3 {
        0 => presets::gtx_titan(),
        1 => presets::gtx_580(),
        _ => presets::tesla_k10_single(),
    }
}

/// A traced scenario covering every row source: a transfer, a plain
/// (FMA + gather + atomic) launch, a pooled/serial concurrent group,
/// dynamic-parallelism child waves where supported, and a readback.
fn profiled(cfg: DeviceConfig, threads: usize, grid: usize, block_dim: usize) -> ProfileReport {
    set_sim_threads(threads);
    let mut dev = Device::new(cfg);
    let ledger = dev.enable_tracing();
    let n = grid * block_dim;
    let src = dev.alloc((0..n).map(|i| (i % 53) as f64).collect::<Vec<_>>());
    let dst = dev.alloc_zeroed::<f64>(n);
    let acc = dev.alloc_zeroed::<f64>(4);

    dev.record_htod("upload", (n * 8) as u64);

    dev.launch("fma_mix", grid, block_dim, &|blk| {
        let bidx = blk.block_idx();
        blk.for_each_warp(&mut |warp| {
            let base = warp.first_thread();
            if base >= n {
                return;
            }
            let mask = lane_mask(n - base);
            let vals = warp.read_coalesced(&src, base, mask);
            let idx: [usize; WARP] = std::array::from_fn(|l| (base + l * 17 + bidx) % n);
            let xs = warp.gather_tex(&src, &idx, mask);
            let mut out = [0.0f64; WARP];
            for l in 0..WARP {
                if mask >> l & 1 == 1 {
                    out[l] = vals[l].mul_add(xs[l], out[l]);
                }
            }
            warp.charge_fma(mask);
            warp.write_coalesced(&dst, base, &out, mask);
            let ones = [1.0f64; WARP];
            let tgt = [bidx % 4; WARP];
            warp.atomic_rmw(&acc, &tgt, &ones, mask, |a, b| a + b);
        });
    });

    let mut group = dev.launch_group("grp");
    for (i, g) in [grid, grid.div_ceil(2)].into_iter().enumerate() {
        group.add(&format!("s{i}"), g, block_dim, &|blk| {
            blk.for_each_warp(&mut |warp| {
                let base = warp.first_thread() % n;
                let mask = lane_mask(n - base);
                warp.read_coalesced(&src, base, mask);
            });
        });
    }
    group.finish();

    if dev.config().has_dynamic_parallelism() {
        let out = dev.alloc_zeroed::<f64>(n.max(2 * WARP));
        let out_ref = &out;
        dev.launch("dp_parent", grid.min(4), 64, &|blk| {
            blk.for_each_warp(&mut |warp| {
                if warp.warp_in_block() != 0 {
                    return;
                }
                warp.launch_child(2, 32, move |child| {
                    let cb = child.block_idx();
                    child.for_each_warp(&mut |cw| {
                        let vals = [3.0f64; WARP];
                        cw.write_coalesced(out_ref, cb * WARP, &vals, u32::MAX);
                    });
                });
            });
        });
    }

    dev.record_dtoh("readback", (n * 8) as u64);
    set_sim_threads(0);

    let total = ledger.reconcile().expect("ledger must reconcile");
    let configs = [
        presets::gtx_580(),
        presets::tesla_k10_single(),
        presets::gtx_titan(),
    ];
    let report = ProfileReport::from_spans(&ledger.spans(), &configs);
    report.reconcile().expect("profile must reconcile");
    // The profiler's own fold must agree bit-exactly with the ledger's.
    assert_eq!(report.total.counters, total.counters);
    assert_eq!(report.total.launches, total.launches);
    assert_eq!(report.total.time_s.to_bits(), total.time_s.to_bits());
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The whole profile — row set, integer counters, derived f64
    /// metrics — is bit-identical at widths 1, 2 and 4, and reconciles
    /// integer-exactly with the trace ledger at each width.
    #[test]
    fn profile_is_bit_identical_across_widths(
        which in 0u8..3,
        grid in 1usize..20,
        block_pow in 0u32..=2,
    ) {
        let _guard = WIDTH_LOCK.lock().unwrap();
        let block_dim = 32usize << block_pow;
        let seq = profiled(preset(which), 1, grid, block_dim);
        for threads in [2usize, 4] {
            let par = profiled(preset(which), threads, grid, block_dim);
            prop_assert_eq!(&seq, &par, "width {} diverged", threads);
        }
    }

    /// Aggregate group rows never break reconciliation: their counters
    /// are re-sliced into stream rows, and dropping either side is
    /// detected.
    #[test]
    fn counted_rows_partition_the_totals(
        which in 0u8..3,
        grid in 1usize..20,
    ) {
        let _guard = WIDTH_LOCK.lock().unwrap();
        let report = profiled(preset(which), 1, grid, 64);
        let mut counted = gpu_sim::Counters::default();
        for row in report.rows.iter().filter(|r| r.is_counted()) {
            counted.merge(&row.counters);
        }
        prop_assert_eq!(counted, report.total.counters);
        // Every span id is referenced by at most one row.
        let mut seen = std::collections::HashSet::new();
        for row in &report.rows {
            for id in &row.span_ids {
                prop_assert!(seen.insert(*id), "span {} in two rows", id);
            }
        }
    }
}
